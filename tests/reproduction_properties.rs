//! Property-based integration tests across crates: invariants that must hold
//! for any trace, allocator and pattern combination.

use commalloc::prelude::*;
use proptest::prelude::*;

fn arb_allocator() -> impl Strategy<Value = AllocatorKind> {
    proptest::sample::select(AllocatorKind::paper_set().to_vec())
}

fn arb_pattern() -> impl Strategy<Value = CommPattern> {
    proptest::sample::select(CommPattern::paper_patterns().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation and ordering invariants of the end-to-end simulation.
    #[test]
    fn simulation_invariants(
        allocator in arb_allocator(),
        pattern in arb_pattern(),
        jobs in 10usize..40,
        seed in any::<u64>(),
        load in prop_oneof![Just(1.0f64), Just(0.6), Just(0.3)],
    ) {
        let trace = ParagonTraceModel::scaled(jobs).generate(seed).with_load_factor(load);
        let mesh = Mesh2D::square_16x16();
        let config = SimConfig::new(mesh, pattern, allocator).with_seed(seed);
        let result = simulate(&trace, &config);
        let fitting = trace.filter_fitting(mesh.num_nodes());
        prop_assert_eq!(result.records.len(), fitting.len());

        for r in &result.records {
            // Timing sanity.
            prop_assert!(r.start >= r.arrival - 1e-9);
            prop_assert!(r.completion > r.start);
            // A job can never run faster than its message quota allows
            // (nominal rate is one message per second).
            prop_assert!(r.running_time() >= r.messages as f64 - 1e-6);
            // Metric sanity.
            prop_assert!(r.components >= 1 && r.components <= r.size);
            prop_assert!(r.avg_pairwise_distance >= 0.0);
            prop_assert!(r.avg_message_distance <= 2.0 * (mesh.width() + mesh.height()) as f64);
        }
        // Summary consistency.
        let recomputed = commalloc::SimSummary::from_records(&result.records);
        prop_assert_eq!(recomputed, result.summary);
    }

    /// Determinism of the whole pipeline: identical configuration, identical
    /// results.
    #[test]
    fn end_to_end_determinism(
        allocator in arb_allocator(),
        pattern in arb_pattern(),
        seed in any::<u64>(),
    ) {
        let trace = ParagonTraceModel::scaled(25).generate(seed);
        let config = SimConfig::new(Mesh2D::paragon_16x22(), pattern, allocator).with_seed(seed);
        let a = simulate(&trace, &config);
        let b = simulate(&trace, &config);
        prop_assert_eq!(a.records, b.records);
        prop_assert_eq!(a.summary, b.summary);
    }
}
