//! End-to-end tests of the allocation daemon over real TCP: protocol
//! round trips, FCFS admission, 2-D/3-D registration, and a loadgen run
//! (the same driver behind `commalloc loadgen`) asserting zero
//! occupancy-invariant violations.

use commalloc_cli::loadgen::{self, LoadgenConfig};
use commalloc_service::{AllocationService, ClientAllocOutcome, JobStatus, Server, ServiceClient};
use serde::Value;

fn spawn_server() -> (AllocationService, commalloc_service::ServerHandle) {
    let service = AllocationService::new();
    let handle = Server::bind("127.0.0.1:0", service.clone(), 4)
        .expect("bind an ephemeral port")
        .spawn()
        .expect("spawn the server");
    (service, handle)
}

#[test]
fn tcp_protocol_round_trip_with_fcfs_queueing() {
    let (service, handle) = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    client.ping().unwrap();
    client
        .register("m0", "8x8", Some("Hilbert w/BF"), None, None)
        .unwrap();

    // Fill the machine, queue two jobs, verify FCFS drain on release.
    let ClientAllocOutcome::Granted(first) = client.alloc("m0", 1, 60, false).unwrap() else {
        panic!("empty machine must grant");
    };
    assert_eq!(first.len(), 60);
    assert_eq!(
        client.alloc("m0", 2, 10, true).unwrap(),
        ClientAllocOutcome::Queued(1)
    );
    assert_eq!(
        client.alloc("m0", 3, 2, true).unwrap(),
        ClientAllocOutcome::Queued(2)
    );
    // Job 3 would fit the 4 free nodes but must wait behind job 2 (FCFS).
    assert!(matches!(
        client.alloc("m0", 4, 1, false).unwrap(),
        ClientAllocOutcome::Rejected(_)
    ));
    let granted = client.release("m0", 1).unwrap();
    let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![2, 3], "queue must drain in arrival order");
    assert!(matches!(
        client.poll("m0", 2).unwrap(),
        JobStatus::Running(_)
    ));

    // The server-side state is the same object the in-process API sees.
    service.check_invariants("m0").unwrap();
    let snapshot = client.query("m0").unwrap();
    assert_eq!(snapshot.get("busy").and_then(Value::as_u64), Some(12));
    assert_eq!(snapshot.get("live_jobs").and_then(Value::as_u64), Some(2));

    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn three_d_machines_work_over_the_wire() {
    let (service, handle) = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client
        .register("cube", "4x4x4", Some("Hilbert-3d"), Some("BF"), None)
        .unwrap();
    let ClientAllocOutcome::Granted(nodes) = client.alloc("cube", 1, 8, false).unwrap() else {
        panic!("empty cube must grant");
    };
    assert_eq!(nodes.len(), 8);
    let snapshot = client.query("cube").unwrap();
    assert_eq!(snapshot.get("dims").and_then(Value::as_str), Some("4x4x4"));
    service.check_invariants("cube").unwrap();
    assert!(client.release("cube", 1).unwrap().is_empty());
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn loadgen_round_trips_thousands_of_requests_without_violations() {
    let (service, handle) = spawn_server();
    let config = LoadgenConfig {
        addr: handle.addr().to_string(),
        machine: "default".to_string(),
        mesh: "16x16".to_string(),
        scheduler: Some("backfill".to_string()),
        requests: 4_000,
        connections: 3,
        occupancy: 0.8,
        max_size: 24,
        max_walltime: Some(300.0),
        router: None,
        pattern: None,
        framing: commalloc_service::Framing::Binary,
        seed: 7,
        no_drain: false,
        claims_out: None,
        tenant: None,
    };
    let report = loadgen::run(&config).expect("loadgen completes");
    assert!(report.requests >= 4_000, "got {}", report.requests);
    assert_eq!(report.violations, 0, "occupancy invariant must hold");
    assert_eq!(report.final_busy, 0, "drain must empty the machine");
    assert!(report.granted > 0 && report.released > 0);
    service.check_invariants("default").unwrap();
    handle.shutdown().unwrap();
}

#[test]
fn routed_loadgen_across_a_heterogeneous_pool_has_no_violations() {
    let (service, handle) = spawn_server();
    let members = [
        ("m0", "16x16"),
        ("m1", "16x8"),
        ("m2", "8x8"),
        ("m3", "8x4"),
    ];
    {
        let mut client = ServiceClient::connect(handle.addr()).unwrap();
        for (name, mesh) in members {
            client
                .register_in_pool(name, mesh, None, None, Some("easy"), Some("grid"))
                .unwrap();
        }
        assert_eq!(
            client.set_router("grid", "p2c").unwrap(),
            "power-of-two".to_string()
        );
    }
    let config = LoadgenConfig {
        addr: handle.addr().to_string(),
        machine: "@grid".to_string(),
        mesh: String::new(), // ignored in cluster mode
        scheduler: None,
        requests: 4_000,
        connections: 3,
        occupancy: 0.8,
        max_size: 48, // above m3's 32 nodes: exercises eligibility
        max_walltime: Some(300.0),
        router: Some("least-loaded".to_string()),
        pattern: Some(commalloc_workload::CommPattern::AllToAll),
        framing: commalloc_service::Framing::Ndjson,
        seed: 11,
        no_drain: false,
        claims_out: None,
        tenant: None,
    };
    let report = loadgen::run(&config).expect("routed loadgen completes");
    assert!(report.requests >= 4_000, "got {}", report.requests);
    assert_eq!(report.violations, 0, "cluster invariants must hold");
    assert_eq!(report.final_busy, 0, "drain must empty every member");
    assert_eq!(report.machines, 4);
    assert!(report.granted > 0 && report.released > 0);
    for (name, _) in members {
        service.check_invariants(name).unwrap();
    }
    handle.shutdown().unwrap();
}

#[test]
fn batched_ops_round_trip_over_tcp() {
    let (service, handle) = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.register("b0", "8x8", None, None, None).unwrap();
    let responses = client
        .batch(vec![
            commalloc_service::Request::Ping,
            commalloc_service::Request::Alloc {
                machine: "b0".to_string(),
                job: 1,
                size: 10,
                wait: false,
                walltime: None,
                pattern: None,
                tenant: None,
            },
            commalloc_service::Request::Release {
                machine: Some("b0".to_string()),
                job: commalloc_service::JobRef::Bare(1),
            },
            commalloc_service::Request::Release {
                machine: Some("b0".to_string()),
                job: commalloc_service::JobRef::Bare(99), // unknown: answers its slot with an error
            },
        ])
        .unwrap();
    assert_eq!(responses.len(), 4);
    assert_eq!(responses[0], commalloc_service::Response::Pong);
    assert!(matches!(
        responses[1],
        commalloc_service::Response::Granted { job: 1, .. }
    ));
    assert!(matches!(
        responses[2],
        commalloc_service::Response::Released { job: 1, .. }
    ));
    assert!(matches!(
        responses[3],
        commalloc_service::Response::Error { .. }
    ));
    service.check_invariants("b0").unwrap();
    drop(client);
    handle.shutdown().unwrap();
}

#[test]
fn sharded_registry_serves_disjoint_machines_concurrently() {
    let (service, handle) = spawn_server();
    // Eight machines spread across shards, one client thread per machine.
    std::thread::scope(|scope| {
        for m in 0..8u32 {
            let addr = handle.addr();
            scope.spawn(move || {
                let name = format!("m{m}");
                let mut client = ServiceClient::connect(addr).unwrap();
                client.register(&name, "8x8", None, None, None).unwrap();
                for job in 0..200u64 {
                    let ClientAllocOutcome::Granted(nodes) =
                        client.alloc(&name, job, 5, false).unwrap()
                    else {
                        panic!("8x8 machine fits 5 nodes after release");
                    };
                    assert_eq!(nodes.len(), 5);
                    client.release(&name, job).unwrap();
                }
            });
        }
    });
    assert_eq!(service.list().len(), 8);
    for m in 0..8 {
        service.check_invariants(&format!("m{m}")).unwrap();
    }
    handle.shutdown().unwrap();
}

#[test]
fn scheduling_policies_work_over_the_wire() {
    // The CI matrix sets COMMALLOC_SCHEDULER to run this end-to-end test
    // once per policy; unset, it covers all three in one go. The spec is
    // parsed with the canonical parser so every accepted spelling
    // ("FCFS", " easy ", ...) lands in the right branch below.
    let policies: Vec<commalloc::scheduler::SchedulerKind> =
        match std::env::var("COMMALLOC_SCHEDULER") {
            Ok(spec) => vec![commalloc::scheduler::SchedulerKind::parse(&spec)
                .unwrap_or_else(|| panic!("COMMALLOC_SCHEDULER={spec:?} is not a scheduler"))],
            Err(_) => commalloc::scheduler::SchedulerKind::all().to_vec(),
        };
    for policy in policies {
        let policy_spec = policy.name();
        let (service, handle) = spawn_server();
        let mut client = ServiceClient::connect(handle.addr()).unwrap();
        client
            .register("sched", "8x8", None, None, Some(policy_spec))
            .unwrap();
        // Fill the machine, then queue a blocked head plus a small job.
        let ClientAllocOutcome::Granted(_) = client
            .alloc_with_walltime("sched", 1, 60, false, Some(100.0))
            .unwrap()
        else {
            panic!("empty machine must grant");
        };
        assert_eq!(
            client
                .alloc_with_walltime("sched", 2, 40, true, Some(50.0))
                .unwrap(),
            ClientAllocOutcome::Queued(1)
        );
        // Job 3 fits the 4 free nodes; whether it starts now depends on
        // the policy. FCFS blocks it; first-fit backfill admits it; EASY
        // admits it too (it fits the shadow-time extras or finishes
        // first — with walltime 1 it can never delay the head).
        let outcome = client
            .alloc_with_walltime("sched", 3, 2, true, Some(1.0))
            .unwrap();
        match policy {
            commalloc::scheduler::SchedulerKind::Fcfs => {
                assert_eq!(outcome, ClientAllocOutcome::Queued(2), "{policy}")
            }
            _ => assert!(
                matches!(outcome, ClientAllocOutcome::Granted(_)),
                "{policy}: small job should backfill, got {outcome:?}"
            ),
        }
        // Snapshot names the active policy; stats carry the wait summary.
        let snapshot = client.query("sched").unwrap();
        let named = snapshot
            .get("scheduler")
            .and_then(Value::as_str)
            .expect("snapshot names the scheduler")
            .to_string();
        let stats = client.stats("sched").unwrap();
        assert!(
            stats.get("wait").and_then(|w| w.get("count")).is_some(),
            "{policy}: stats must carry the wait summary"
        );
        // Runtime switch to FCFS and back: grants drain accordingly.
        client.set_scheduler("sched", "fcfs").unwrap();
        let snapshot = client.query("sched").unwrap();
        assert_eq!(
            snapshot.get("scheduler").and_then(Value::as_str),
            Some("FCFS"),
            "{policy}: switch must rename the policy (was {named})"
        );
        let granted = client.set_scheduler("sched", "backfill").unwrap();
        if policy == commalloc::scheduler::SchedulerKind::Fcfs {
            // Under FCFS job 3 was still queued; backfill admits it now.
            assert_eq!(granted.len(), 1, "{policy}");
            assert_eq!(granted[0].0, 3);
        } else {
            assert!(granted.is_empty(), "{policy}: nothing left to admit");
        }
        service.check_invariants("sched").unwrap();
        drop(client);
        handle.shutdown().unwrap();
    }
}
