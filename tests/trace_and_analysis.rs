//! Integration tests for the workload side of the public API: synthetic
//! trace statistics, SWF round-tripping, and the analysis helpers — the
//! pieces DESIGN.md's substitution table relies on when it claims the
//! synthetic generator stands in for the real SDSC trace.

use commalloc::prelude::*;
use commalloc_workload::analysis::TraceAnalysis;
use commalloc_workload::swf;

#[test]
fn synthetic_trace_matches_the_papers_published_statistics() {
    // Section 3.1 of the paper: 6087 jobs, mean interarrival 1301 s (CV 3.7),
    // mean size 14.5 (CV 1.5, power-of-two biased), mean runtime 3.04 h
    // (CV 1.13). The generator should land near those moments at full scale.
    let trace = ParagonTraceModel::default().generate(1);
    let s = trace.summary();
    assert_eq!(s.jobs, 6087);
    assert!(
        (s.mean_interarrival - 1301.0).abs() / 1301.0 < 0.15,
        "mean interarrival {} too far from 1301",
        s.mean_interarrival
    );
    assert!(
        (s.mean_size - 14.5).abs() / 14.5 < 0.35,
        "mean size {} too far from 14.5",
        s.mean_size
    );
    assert!(
        (s.mean_runtime - 3.04 * 3600.0).abs() / (3.04 * 3600.0) < 0.25,
        "mean runtime {} too far from 10944",
        s.mean_runtime
    );
    assert!(s.cv_interarrival > 1.5, "arrivals must be bursty");
    assert!(
        s.power_of_two_fraction > 0.5,
        "sizes must favour powers of two"
    );
}

#[test]
fn swf_round_trip_preserves_simulation_results() {
    // Writing a synthetic trace to SWF and reading it back must not change
    // what the simulator computes from it.
    let original = ParagonTraceModel::scaled(80).generate(11);
    let path = std::env::temp_dir().join(format!(
        "commalloc-integration-roundtrip-{}.swf",
        std::process::id()
    ));
    swf::write_file(&original, &path).expect("write SWF");
    let reloaded = swf::parse_file(&path).expect("parse SWF");
    let _ = std::fs::remove_file(&path);

    let config = SimConfig::new(
        Mesh2D::square_16x16(),
        CommPattern::AllToAll,
        AllocatorKind::HilbertBestFit,
    );
    let a = simulate(&original.filter_fitting(256), &config);
    let b = simulate(&reloaded.filter_fitting(256), &config);
    assert_eq!(a.records.len(), b.records.len());
    assert!(
        (a.summary.mean_response_time - b.summary.mean_response_time).abs() < 1e-6,
        "round-tripped trace changed the simulation: {} vs {}",
        a.summary.mean_response_time,
        b.summary.mean_response_time
    );
}

#[test]
fn two_seeds_of_the_model_are_distributionally_close() {
    // The analysis distance between two independent draws of the same model
    // should be much smaller than the distance to a deliberately different
    // workload (uniform job sizes, regular arrivals).
    let a = TraceAnalysis::of(&ParagonTraceModel::scaled(600).generate(1), 10);
    let b = TraceAnalysis::of(&ParagonTraceModel::scaled(600).generate(2), 10);
    let same_model = a.distance(&b);

    let regular = Trace::new(
        (0..600u64)
            .map(|i| commalloc_workload::Job::new(i, i as f64 * 50.0, 200, 50.0))
            .collect(),
    );
    let different = a.distance(&TraceAnalysis::of(&regular, 10));
    assert!(
        same_model < different,
        "same-model distance {same_model} should be below cross-workload distance {different}"
    );
}

#[test]
fn load_factor_preserves_work_and_only_moves_arrivals() {
    let trace = ParagonTraceModel::scaled(200).generate(5);
    let loaded = trace.with_load_factor(0.2);
    assert_eq!(trace.len(), loaded.len());
    let total_work =
        |t: &Trace| -> f64 { t.jobs().iter().map(|j| j.size as f64 * j.runtime).sum() };
    assert!((total_work(&trace) - total_work(&loaded)).abs() < 1e-6);
    let span = |t: &Trace| t.jobs().last().unwrap().arrival;
    assert!(
        (span(&loaded) - 0.2 * span(&trace)).abs() < 1e-6,
        "arrival span must contract by the load factor"
    );
}

#[test]
fn filter_fitting_is_what_the_16x16_experiments_rely_on() {
    // The paper removes the three 320-node jobs when moving from the 16 x 22
    // to the 16 x 16 machine; the equivalent operation on a synthetic trace
    // must drop exactly the jobs that cannot fit and leave the rest intact.
    let trace = ParagonTraceModel::default().generate(7);
    let fitted = trace.filter_fitting(256);
    assert!(fitted.len() <= trace.len());
    assert!(fitted.jobs().iter().all(|j| j.size <= 256));
    let oversized = trace.jobs().iter().filter(|j| j.size > 256).count();
    assert_eq!(trace.len() - fitted.len(), oversized);
}
