//! Cross-crate integration tests for the extension allocators (contiguous,
//! buddy, MBS, hybrid) and the extension metrics, exercised through the
//! public simulation API exactly as a downstream user would.

use commalloc::prelude::*;
use commalloc_alloc::metrics::{dispersion, quality};
use commalloc_alloc::{AllocRequest, MachineState};
use commalloc_mesh::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn small_trace(seed: u64) -> Trace {
    ParagonTraceModel::scaled(40)
        .generate(seed)
        .filter_fitting(256)
}

/// A machine with `busy` random processors occupied (deterministic in seed).
fn fragmented_machine(mesh: Mesh2D, busy: usize, seed: u64) -> MachineState {
    let mut machine = MachineState::new(mesh);
    let mut nodes: Vec<NodeId> = mesh.nodes().collect();
    nodes.shuffle(&mut StdRng::seed_from_u64(seed));
    nodes.truncate(busy);
    machine.occupy(&nodes);
    machine
}

#[test]
fn contiguous_strategies_allocate_every_job_into_one_component() {
    // Whatever they cost in waiting time, the contiguous strategies must
    // never produce a fragmented allocation.
    let trace = small_trace(5);
    for allocator in [
        AllocatorKind::ContiguousFirstFit,
        AllocatorKind::ContiguousBestFit,
        AllocatorKind::Buddy2D,
    ] {
        let config = SimConfig::new(Mesh2D::square_16x16(), CommPattern::AllToAll, allocator);
        let result = simulate(&trace, &config);
        assert_eq!(result.records.len(), trace.len(), "{allocator} lost jobs");
        for record in &result.records {
            assert_eq!(
                record.components, 1,
                "{allocator} fragmented job {}",
                record.job_id
            );
        }
        assert!((result.summary.percent_contiguous - 100.0).abs() < 1e-9);
    }
}

#[test]
fn contiguity_costs_response_time_at_load() {
    // The utilization argument of the paper's Section 2: at a non-trivial
    // load the submesh-only strategy cannot beat Hilbert Best Fit on mean
    // response time, because it holds jobs back waiting for rectangles.
    let trace = ParagonTraceModel::scaled(120)
        .generate(9)
        .filter_fitting(256)
        .with_load_factor(0.6);
    let mesh = Mesh2D::square_16x16();
    let contiguous = simulate(
        &trace,
        &SimConfig::new(
            mesh,
            CommPattern::AllToAll,
            AllocatorKind::ContiguousFirstFit,
        ),
    );
    let hilbert = simulate(
        &trace,
        &SimConfig::new(mesh, CommPattern::AllToAll, AllocatorKind::HilbertBestFit),
    );
    assert!(
        contiguous.summary.mean_wait_time + 1e-9 >= hilbert.summary.mean_wait_time,
        "contiguous-only allocation should not reduce queueing delay ({} vs {})",
        contiguous.summary.mean_wait_time,
        hilbert.summary.mean_wait_time
    );
}

#[test]
fn mbs_never_refuses_what_the_buddy_system_refuses_only_for_alignment() {
    // On a fragmented machine the strict buddy system fails once no aligned
    // block is free, while MBS decomposes the request and succeeds.
    let mesh = Mesh2D::square_16x16();
    let mut refusals_witnessed = 0usize;
    for seed in 0..20u64 {
        let machine = fragmented_machine(mesh, 140, seed);
        let req = AllocRequest::new(seed, 32);
        let buddy = AllocatorKind::Buddy2D.build(mesh).allocate(&req, &machine);
        let mbs = AllocatorKind::Mbs.build(mesh).allocate(&req, &machine);
        assert!(
            mbs.is_some(),
            "MBS must place 32 processors when {} are free",
            machine.num_free()
        );
        if buddy.is_none() {
            refusals_witnessed += 1;
        }
    }
    assert!(
        refusals_witnessed > 0,
        "expected at least one buddy refusal on heavily fragmented machines"
    );
}

#[test]
fn hybrid_static_quality_matches_or_beats_both_parents() {
    let mesh = Mesh2D::square_16x16();
    for seed in 0..15u64 {
        let machine = fragmented_machine(mesh, 100, seed);
        let req = AllocRequest::new(seed, 20);
        let score = |kind: AllocatorKind| {
            let alloc = kind
                .build(mesh)
                .allocate(&req, &machine)
                .expect("non-contiguous allocators always place 20 of 156 free");
            let q = quality(mesh, &alloc.nodes);
            (q.components, q.avg_pairwise_distance)
        };
        let hilbert = score(AllocatorKind::HilbertBestFit);
        let mc = score(AllocatorKind::Mc);
        let hybrid = score(AllocatorKind::Hybrid);
        let best = if hilbert <= mc { hilbert } else { mc };
        assert!(
            hybrid.0 < best.0 || (hybrid.0 == best.0 && hybrid.1 <= best.1 + 1e-9),
            "seed {seed}: hybrid {hybrid:?} worse than best parent {best:?}"
        );
    }
}

#[test]
fn extended_allocators_keep_the_simulation_conservation_invariants() {
    // Processors released equal processors allocated; every record has
    // sensible timestamps; dispersal metrics are internally consistent.
    let trace = small_trace(13);
    let mesh = Mesh2D::square_16x16();
    for allocator in [
        AllocatorKind::Mbs,
        AllocatorKind::Hybrid,
        AllocatorKind::MortonBestFit,
        AllocatorKind::PeanoBestFit,
    ] {
        let result = simulate(
            &trace,
            &SimConfig::new(mesh, CommPattern::Random, allocator),
        );
        assert_eq!(result.records.len(), trace.len());
        for record in &result.records {
            assert!(record.arrival <= record.start);
            assert!(record.start < record.completion);
            assert!(record.components >= 1);
            assert!(record.avg_pairwise_distance >= 0.0);
        }
    }
}

#[test]
fn dispersal_metrics_agree_with_contiguity_for_simulated_allocations() {
    // For allocations produced by a real allocator on a fragmented machine,
    // the bounding-box utilization of a contiguous allocation is always at
    // least as high as that of an equally-sized scattered one, and the
    // maximum pairwise distance never exceeds the bounding-box semiperimeter.
    let mesh = Mesh2D::square_16x16();
    for seed in 0..10u64 {
        let machine = fragmented_machine(mesh, 96, seed);
        for kind in [AllocatorKind::HilbertBestFit, AllocatorKind::Random] {
            let alloc = kind
                .build(mesh)
                .allocate(&AllocRequest::new(seed, 16), &machine)
                .expect("16 of 160 free processors");
            let d = dispersion(mesh, &alloc.nodes);
            assert!(d.max_pairwise_distance <= d.bbox_semiperimeter());
            assert!(d.bbox_utilization > 0.0 && d.bbox_utilization <= 1.0 + 1e-12);
            assert!(d.avg_pairwise_distance <= d.max_pairwise_distance as f64 + 1e-12);
        }
    }
}

#[test]
fn utilization_profile_tracks_the_contiguity_penalty() {
    // Under the contiguous allocator the machine spends more time with jobs
    // queued than under MBS for the same workload.
    let trace = ParagonTraceModel::scaled(100)
        .generate(21)
        .filter_fitting(256)
        .with_load_factor(0.6);
    let mesh = Mesh2D::square_16x16();
    let profile = |allocator: AllocatorKind| {
        let result = simulate(
            &trace,
            &SimConfig::new(mesh, CommPattern::AllToAll, allocator),
        );
        UtilizationProfile::from_records(&result.records, mesh.num_nodes())
    };
    let contiguous = profile(AllocatorKind::ContiguousFirstFit);
    let mbs = profile(AllocatorKind::Mbs);
    assert!(
        contiguous.mean_queue_length() + 1e-9 >= mbs.mean_queue_length(),
        "contiguous-only allocation should not shorten the queue ({} vs {})",
        contiguous.mean_queue_length(),
        mbs.mean_queue_length()
    );
}
