//! Property-based integration tests of the scheduling policies driven
//! through the full simulation engine.

use commalloc::prelude::*;
use proptest::prelude::*;

fn sim(trace: &Trace, scheduler: SchedulerKind, allocator: AllocatorKind) -> SimResult {
    let config = SimConfig::new(Mesh2D::square_16x16(), CommPattern::AllToAll, allocator)
        .with_scheduler(scheduler);
    simulate(trace, &config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduling policy completes every job that fits the machine,
    /// never starts a job before it arrives, and never starts it before the
    /// FCFS arrival of capacity (start >= arrival).
    #[test]
    fn schedulers_preserve_basic_sanity(
        jobs in 5usize..40,
        seed in 0u64..1_000,
        load in prop::sample::select(vec![1.0f64, 0.6, 0.2]),
    ) {
        let trace = ParagonTraceModel::scaled(jobs)
            .generate(seed)
            .filter_fitting(256)
            .with_load_factor(load);
        for scheduler in SchedulerKind::all() {
            let result = sim(&trace, scheduler, AllocatorKind::HilbertBestFit);
            prop_assert_eq!(result.records.len(), trace.len());
            for r in &result.records {
                prop_assert!(r.start >= r.arrival - 1e-9, "{} started early", r.job_id);
                prop_assert!(r.completion > r.start);
            }
        }
    }

    /// Under strict FCFS, jobs start in arrival order (the head of the queue
    /// blocks everything behind it).
    #[test]
    fn fcfs_starts_jobs_in_arrival_order(
        jobs in 5usize..30,
        seed in 0u64..1_000,
    ) {
        let trace = ParagonTraceModel::scaled(jobs)
            .generate(seed)
            .filter_fitting(256)
            .with_load_factor(0.4);
        let result = sim(&trace, SchedulerKind::Fcfs, AllocatorKind::HilbertBestFit);
        let mut by_arrival = result.records.clone();
        by_arrival.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        let mut last_start = f64::NEG_INFINITY;
        for r in &by_arrival {
            prop_assert!(
                r.start + 1e-9 >= last_start,
                "job {} (arrival {}) started at {} before an earlier arrival's {}",
                r.job_id, r.arrival, r.start, last_start
            );
            last_start = r.start;
        }
    }

    /// The scheduler decides only *when* jobs start: under the
    /// zero-contention control every job's running time equals its message
    /// quota regardless of the scheduling policy, so schedulers can differ
    /// only in waiting time.
    #[test]
    fn schedulers_change_waiting_not_service(
        jobs in 5usize..30,
        seed in 0u64..500,
    ) {
        let trace = ParagonTraceModel::scaled(jobs)
            .generate(seed)
            .filter_fitting(256)
            .with_load_factor(0.4);
        for scheduler in SchedulerKind::all() {
            let config = SimConfig::new(
                Mesh2D::square_16x16(),
                CommPattern::AllToAll,
                AllocatorKind::HilbertBestFit,
            )
            .with_scheduler(scheduler)
            .with_fidelity(Fidelity::ZeroContention);
            let result = simulate(&trace, &config);
            prop_assert_eq!(result.records.len(), trace.len());
            for r in &result.records {
                prop_assert!(
                    (r.running_time() - r.messages as f64).abs() < 1e-6,
                    "{}: job {} service time {} differs from quota {}",
                    scheduler.name(), r.job_id, r.running_time(), r.messages
                );
            }
        }
    }
}
