//! Cross-crate integration tests: the full pipeline from trace generation
//! through allocation, contention modelling and statistics, exercised the way
//! the figure binaries use it.

use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_suite::{demo_trace, run_demo};

/// Every paper allocator finishes a small trace on both paper meshes, every
/// job is accounted for exactly once, and timing invariants hold.
#[test]
fn full_pipeline_accounts_for_every_job() {
    let trace = demo_trace(60, 11).with_load_factor(0.6);
    for mesh in [Mesh2D::square_16x16(), Mesh2D::paragon_16x22()] {
        let fitting = trace.filter_fitting(mesh.num_nodes());
        for allocator in AllocatorKind::paper_set() {
            let result = run_demo(&fitting, mesh, CommPattern::AllToAll, allocator);
            assert_eq!(result.records.len(), fitting.len(), "{allocator}");
            for r in &result.records {
                assert!(r.start >= r.arrival, "{allocator}: started before arrival");
                assert!(r.completion > r.start, "{allocator}: zero running time");
                assert!(r.size >= 1 && r.size <= mesh.num_nodes());
                assert!(r.components >= 1);
                assert!(r.avg_message_distance >= 0.0);
            }
        }
    }
}

/// The simulation never double-books a processor: at every allocation event
/// the number of busy processors stays within the machine size. This is
/// enforced by `MachineState::occupy` panicking, so simply completing a
/// moderately loaded simulation is the assertion.
#[test]
fn heavily_loaded_simulation_never_oversubscribes() {
    let trace = demo_trace(120, 3).with_load_factor(0.2);
    let result = run_demo(
        &trace,
        Mesh2D::square_16x16(),
        CommPattern::Random,
        AllocatorKind::Mc,
    );
    assert_eq!(result.records.len(), trace.filter_fitting(256).len());
}

/// FCFS start order: jobs start in arrival order (a later-arriving job can
/// start at the same instant but never strictly earlier).
#[test]
fn fcfs_starts_jobs_in_arrival_order() {
    let trace = demo_trace(80, 21).with_load_factor(0.4);
    let result = run_demo(
        &trace,
        Mesh2D::square_16x16(),
        CommPattern::AllToAll,
        AllocatorKind::HilbertBestFit,
    );
    let mut by_arrival = result.records.clone();
    by_arrival.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
    for w in by_arrival.windows(2) {
        assert!(
            w[0].start <= w[1].start + 1e-9,
            "job {} (arrived {:.0}) started after job {} (arrived {:.0})",
            w[0].job_id,
            w[0].arrival,
            w[1].job_id,
            w[1].arrival
        );
    }
}

/// The whole-sweep API produces a complete grid and the report renderers
/// accept it.
#[test]
fn sweep_and_reports_cover_the_grid() {
    let trace = demo_trace(40, 5);
    let mesh = Mesh2D::square_16x16();
    let sweep = LoadSweep {
        mesh,
        patterns: vec![CommPattern::AllToAll, CommPattern::NBody],
        allocators: vec![
            AllocatorKind::HilbertBestFit,
            AllocatorKind::Mc,
            AllocatorKind::SCurveFreeList,
        ],
        load_factors: vec![1.0, 0.4],
        ..LoadSweep::paper_figure(mesh)
    };
    let result = sweep.run(&trace);
    assert_eq!(result.points.len(), sweep.num_runs());
    for pattern in [CommPattern::AllToAll, CommPattern::NBody] {
        let table = report::response_time_table(&result, pattern);
        assert!(table.contains("Hilbert w/BF"));
        assert!(table.contains("load 0.4"));
        let contiguity = report::contiguity_table(&result, pattern, 1.0);
        assert_eq!(
            contiguity.lines().count(),
            1 + 3,
            "header plus one row per allocator"
        );
    }
}

/// Zero-contention control: with an infinitely fast network all allocators
/// produce identical response times (allocation cannot matter), which pins
/// down that the differences seen under the fluid model come from the
/// contention model and not from bookkeeping differences between allocators.
#[test]
fn allocators_are_equivalent_without_contention() {
    let trace = demo_trace(50, 17).with_load_factor(0.5);
    let mesh = Mesh2D::square_16x16();
    let mut responses = Vec::new();
    for allocator in [
        AllocatorKind::HilbertBestFit,
        AllocatorKind::SCurveFreeList,
        AllocatorKind::Mc1x1,
        AllocatorKind::GenAlg,
    ] {
        let config = SimConfig::new(mesh, CommPattern::AllToAll, allocator)
            .with_fidelity(Fidelity::ZeroContention);
        let result = simulate(&trace, &config);
        responses.push(result.summary.mean_response_time);
    }
    for r in &responses {
        assert!(
            (r - responses[0]).abs() < 1e-6,
            "zero-contention response times must not depend on the allocator: {responses:?}"
        );
    }
}

/// Under contention, allocation quality matters: on the square mesh with
/// all-to-all traffic, the best curve-with-packing allocator beats the
/// dispersion-oblivious random baseline.
#[test]
fn contention_rewards_locality_aware_allocation() {
    let trace = demo_trace(150, 29).with_load_factor(0.4);
    let mesh = Mesh2D::square_16x16();
    let hilbert = simulate(
        &trace,
        &SimConfig::new(mesh, CommPattern::AllToAll, AllocatorKind::HilbertBestFit),
    );
    let random = simulate(
        &trace,
        &SimConfig::new(mesh, CommPattern::AllToAll, AllocatorKind::Random),
    );
    assert!(
        hilbert.summary.mean_running_time < random.summary.mean_running_time,
        "Hilbert w/BF running time {} should beat random allocation {}",
        hilbert.summary.mean_running_time,
        random.summary.mean_running_time
    );
    assert!(
        hilbert.summary.percent_contiguous > random.summary.percent_contiguous,
        "curve allocation should be contiguous more often than random"
    );
}

/// The paper's Figure 11 observation: curve-based strategies with packing
/// heuristics allocate into fewer components than MC1x1 and Gen-Alg.
#[test]
fn curve_allocators_are_more_contiguous_than_dispersion_minimizers() {
    let trace = demo_trace(150, 31);
    let mesh = Mesh2D::square_16x16();
    let sweep = LoadSweep {
        mesh,
        patterns: vec![CommPattern::AllToAll],
        allocators: vec![
            AllocatorKind::HilbertBestFit,
            AllocatorKind::SCurveBestFit,
            AllocatorKind::Mc1x1,
            AllocatorKind::GenAlg,
        ],
        load_factors: vec![1.0],
        ..LoadSweep::paper_figure(mesh)
    };
    let result = sweep.run(&trace);
    let components = |a: AllocatorKind| {
        result
            .points
            .iter()
            .find(|p| p.allocator == a)
            .map(|p| p.avg_components)
            .expect("point present")
    };
    let curve_best =
        components(AllocatorKind::HilbertBestFit).min(components(AllocatorKind::SCurveBestFit));
    let disperser_best = components(AllocatorKind::Mc1x1).min(components(AllocatorKind::GenAlg));
    assert!(
        curve_best < disperser_best,
        "curve+packing ({curve_best:.2} components) should beat MC1x1/Gen-Alg ({disperser_best:.2})"
    );
}
