//! # commalloc-suite
//!
//! Workspace-level glue for the `commalloc` reproduction of *Communication
//! Patterns and Allocation Strategies* (Leung, Bunde & Mache, 2004): shared
//! helpers used by the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`.
//!
//! The real functionality lives in the member crates:
//! `commalloc-mesh`, `commalloc-alloc`, `commalloc-workload`,
//! `commalloc-net`, `commalloc` (the simulator core) and `commalloc-bench`
//! (figure regeneration). See the workspace README for the map.

use commalloc::prelude::*;

/// A small, deterministic demo trace used by the examples and integration
/// tests: `jobs` synthetic SDSC-Paragon-like jobs with the paper's
/// distributional parameters.
pub fn demo_trace(jobs: usize, seed: u64) -> Trace {
    ParagonTraceModel::scaled(jobs).generate(seed)
}

/// Runs one simulation with the paper's default settings (FCFS scheduler,
/// fluid contention model) and returns its result.
pub fn run_demo(
    trace: &Trace,
    mesh: Mesh2D,
    pattern: CommPattern,
    allocator: AllocatorKind,
) -> SimResult {
    simulate(trace, &SimConfig::new(mesh, pattern, allocator))
}

/// Formats a compact one-line summary of a simulation result, used by the
/// example binaries for their progress output.
pub fn one_line_summary(result: &SimResult) -> String {
    format!(
        "{:<14} {:<10} mean response {:>12.0} s   mean running {:>10.0} s   {:>5.1}% contiguous",
        result.config.allocator.name(),
        result.config.pattern.name(),
        result.summary.mean_response_time,
        result.summary.mean_running_time,
        result.summary.percent_contiguous,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_trace_is_deterministic() {
        assert_eq!(demo_trace(25, 1), demo_trace(25, 1));
        assert_eq!(demo_trace(25, 1).len(), 25);
    }

    #[test]
    fn run_demo_and_summarise() {
        let trace = demo_trace(20, 2);
        let result = run_demo(
            &trace,
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        );
        let line = one_line_summary(&result);
        assert!(line.contains("Hilbert w/BF"));
        assert!(line.contains("all-to-all"));
    }
}
