//! Property-based tests for the network models.

use commalloc_mesh::{Mesh2D, NodeId};
use commalloc_net::flit::{FlitMessage, FlitNetwork};
use commalloc_net::fluid::{FluidNetwork, RateModel};
use commalloc_net::msglevel::{Message, MessageLevelNetwork};
use commalloc_net::traffic::{JobTraffic, RankTraffic};
use commalloc_net::LinkTable;
use proptest::prelude::*;

fn arb_node(max: u32) -> impl Strategy<Value = NodeId> {
    (0..max).prop_map(NodeId)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every injected flit-level message is delivered, no earlier than its
    /// injection time plus its minimum possible latency.
    #[test]
    fn flit_messages_all_delivered_with_lower_bound(
        specs in proptest::collection::vec(
            (arb_node(64), arb_node(64), 0u64..20, 1u32..6),
            1..12,
        )
    ) {
        let mesh = Mesh2D::new(8, 8);
        let net = FlitNetwork::new(mesh);
        let messages: Vec<FlitMessage> = specs
            .iter()
            .enumerate()
            .map(|(i, &(src, dst, at, flits))| FlitMessage {
                id: i as u64,
                src,
                dst,
                inject_at: at,
                flits,
            })
            .collect();
        let report = net.simulate(&messages);
        prop_assert_eq!(report.deliveries.len(), messages.len());
        for (m, d) in messages.iter().zip(&report.deliveries) {
            prop_assert_eq!(m.id, d.id);
            let hops = mesh.distance(m.src, m.dst) as u64;
            let min_latency = if hops == 0 { 0 } else { hops + m.flits as u64 - 1 };
            prop_assert!(
                d.latency >= min_latency,
                "latency {} below contention-free minimum {}",
                d.latency,
                min_latency
            );
            prop_assert!(d.delivered_at >= m.inject_at);
        }
    }

    /// The message-level model delivers every message with latency at least
    /// hops × service_time, and adding traffic never speeds anything up.
    #[test]
    fn msglevel_latency_monotone_under_added_traffic(
        specs in proptest::collection::vec(
            (arb_node(64), arb_node(64), 0u64..10),
            2..10,
        )
    ) {
        let mesh = Mesh2D::new(8, 8);
        let net = MessageLevelNetwork::new(mesh);
        let messages: Vec<Message> = specs
            .iter()
            .enumerate()
            .map(|(i, &(src, dst, at))| Message {
                id: i as u64,
                src,
                dst,
                inject_at: at as f64,
                service_time: 1.0,
            })
            .collect();
        let full = net.simulate(&messages);
        for (m, d) in messages.iter().zip(&full.deliveries) {
            let hops = mesh.distance(m.src, m.dst) as f64;
            prop_assert!(d.latency + 1e-9 >= hops);
        }
        // Removing the last message never hurts the remaining ones.
        let fewer = net.simulate(&messages[..messages.len() - 1]);
        for (a, b) in fewer.deliveries.iter().zip(&full.deliveries) {
            prop_assert!(a.latency <= b.latency + 1e-9);
        }
    }

    /// Fluid rates are always in (0, nominal], never over-subscribe any
    /// link, and never leave a job below the equal share of its own most
    /// loaded link (the max-min lower bound).
    ///
    /// Note that *removal monotonicity* — "removing a job never lowers any
    /// remaining job's rate" — is deliberately NOT asserted: it is false for
    /// max-min fairness in networks. Removing a job from one link can let a
    /// multi-link neighbour grow past its old bottleneck and squeeze a third
    /// job on a different link (e.g. link X carries {A, B}, link Y carries
    /// {B, C, D}: with everyone present A gets the slack B leaves on X, and
    /// removing D lets B grow, shrinking A). The paper's fluid substitution
    /// only relies on the feasibility and fairness bounds checked here.
    #[test]
    fn fluid_rates_bounded_feasible_and_fair(
        pairs in proptest::collection::vec((arb_node(256), arb_node(256)), 2..12)
    ) {
        let mesh = Mesh2D::square_16x16();
        let links = LinkTable::new(mesh);
        let jobs: Vec<JobTraffic> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                JobTraffic::new(
                    mesh,
                    &links,
                    i as u64,
                    &[a, b],
                    &[RankTraffic { src: 0, dst: 1, weight: 1.0 }],
                    1.0,
                )
            })
            .collect();
        let capacity = 0.5f64;
        let model = FluidNetwork::with_capacity(links.num_slots(), capacity);
        let all: Vec<&JobTraffic> = jobs.iter().collect();
        let rates = model.rates(&all);

        // Bounds: positive, never above the nominal one-message-per-second.
        for &r in &rates {
            prop_assert!(r > 0.0 && r <= 1.0 + 1e-9);
        }

        // Feasibility: no link carries more than its capacity.
        let mut usage = vec![0.0f64; links.num_slots()];
        for (job, &rate) in jobs.iter().zip(&rates) {
            for &(l, q) in &job.link_demand {
                usage[l.index()] += rate * q;
            }
        }
        for (l, &u) in usage.iter().enumerate() {
            prop_assert!(
                u <= capacity + 1e-6,
                "link {l} oversubscribed: {u} > {capacity}"
            );
        }

        // Fairness lower bound: a job is never pushed below the equal split
        // of its most contended link (computed against every job's peak
        // demand), which is what max-min guarantees at minimum.
        for (i, (job, &rate)) in jobs.iter().zip(&rates).enumerate() {
            if job.is_local() {
                prop_assert!((rate - job.nominal_rate).abs() < 1e-9);
                continue;
            }
            let mut worst_sharers = 1usize;
            for &(l, q) in &job.link_demand {
                if q <= 1e-12 {
                    continue;
                }
                let sharers = jobs
                    .iter()
                    .filter(|other| {
                        other
                            .link_demand
                            .iter()
                            .any(|&(ol, oq)| ol == l && oq > 1e-12)
                    })
                    .count();
                worst_sharers = worst_sharers.max(sharers);
            }
            let lower_bound = (capacity / worst_sharers as f64).min(job.nominal_rate);
            prop_assert!(
                rate + 1e-6 >= lower_bound,
                "job {i} rate {rate} below max-min lower bound {lower_bound}"
            );
        }
    }
}
