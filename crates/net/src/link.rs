//! Directed links of a mesh and dense link identifiers.

use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// Dense identifier of a directed link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Direction of a single mesh hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    PlusX,
    MinusX,
    PlusY,
    MinusY,
}

impl Direction {
    fn of(mesh: Mesh2D, from: NodeId, to: NodeId) -> Direction {
        let f = mesh.coord_of(from);
        let t = mesh.coord_of(to);
        debug_assert_eq!(f.manhattan(t), 1, "links connect adjacent processors");
        if t.x == f.x + 1 {
            Direction::PlusX
        } else if f.x == t.x + 1 {
            Direction::MinusX
        } else if t.y == f.y + 1 {
            Direction::PlusY
        } else {
            Direction::MinusY
        }
    }

    fn slot(self) -> u32 {
        match self {
            Direction::PlusX => 0,
            Direction::MinusX => 1,
            Direction::PlusY => 2,
            Direction::MinusY => 3,
        }
    }
}

/// Maps directed links of a mesh to dense [`LinkId`]s.
///
/// Every processor owns four outgoing link slots (+x, −x, +y, −y); slots that
/// would leave the mesh are simply never used, so `num_slots` is an upper
/// bound and [`LinkTable::num_links`] the exact count of physical links.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkTable {
    mesh: Mesh2D,
}

impl LinkTable {
    /// Creates the link table for `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        LinkTable { mesh }
    }

    /// The mesh this table describes.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Upper bound on link identifiers (`4 × num_nodes`); use it to size
    /// dense per-link vectors.
    pub fn num_slots(&self) -> usize {
        4 * self.mesh.num_nodes()
    }

    /// Number of physical directed links: `2·(2·W·H − W − H)`.
    pub fn num_links(&self) -> usize {
        let w = self.mesh.width() as usize;
        let h = self.mesh.height() as usize;
        2 * (2 * w * h - w - h)
    }

    /// The identifier of the directed link from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the processors are not adjacent.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkId {
        let dir = Direction::of(self.mesh, from, to);
        LinkId(from.0 * 4 + dir.slot())
    }

    /// The identifiers of the links along the x-y route from `src` to `dst`,
    /// in traversal order. Empty when `src == dst`.
    pub fn route_links(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        self.mesh
            .xy_route_links(src, dst)
            .into_iter()
            .map(|(a, b)| self.link(a, b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    #[test]
    fn link_ids_are_unique_per_directed_link() {
        let mesh = Mesh2D::new(4, 4);
        let table = LinkTable::new(mesh);
        let mut seen = std::collections::HashSet::new();
        let mut count = 0;
        for node in mesh.nodes() {
            for nb in mesh.neighbors(node) {
                let id = table.link(node, nb);
                assert!(seen.insert(id), "duplicate link id {id:?}");
                assert!(id.index() < table.num_slots());
                count += 1;
            }
        }
        assert_eq!(count, table.num_links());
        assert_eq!(table.num_links(), 2 * (2 * 16 - 4 - 4));
    }

    #[test]
    fn opposite_directions_have_distinct_ids() {
        let mesh = Mesh2D::new(4, 4);
        let table = LinkTable::new(mesh);
        let a = mesh.id_of(Coord::new(1, 1));
        let b = mesh.id_of(Coord::new(2, 1));
        assert_ne!(table.link(a, b), table.link(b, a));
    }

    #[test]
    fn route_links_follow_the_xy_route() {
        let mesh = Mesh2D::new(8, 8);
        let table = LinkTable::new(mesh);
        let src = mesh.id_of(Coord::new(1, 1));
        let dst = mesh.id_of(Coord::new(4, 3));
        let links = table.route_links(src, dst);
        assert_eq!(links.len() as u32, mesh.distance(src, dst));
        assert!(table.route_links(src, src).is_empty());
    }
}
