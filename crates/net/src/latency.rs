//! Analytic per-message latency estimation (open-queueing-network view).
//!
//! The flit-level simulator measures latency directly but is too expensive
//! for whole-trace sweeps, and the fluid model reasons only about long-run
//! *rates*. This module adds the textbook middle ground: treat every directed
//! link as an M/M/1-like server, compute its utilisation from the running
//! jobs' offered message rates, and estimate each job's expected per-message
//! latency as the sum over its route links of service plus queueing delay.
//!
//! The estimator is used for analysis and ablation (e.g. checking that the
//! running-time ∼ message-distance relationship of the paper's Figure 10 is
//! what an independent queueing argument predicts), not by the simulation
//! engine itself — the engine's event loop needs rates, which the fluid model
//! provides.

use crate::traffic::JobTraffic;
use serde::{Deserialize, Serialize};

/// Analytic latency estimator over the directed links of a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyEstimator {
    /// Service rate of every link in messages per second (the reciprocal of
    /// the per-hop service time).
    pub link_service_rate: f64,
    /// Number of link slots of the mesh (from [`crate::LinkTable`]).
    pub num_link_slots: usize,
    /// Utilisation cap applied before the M/M/1 formula so saturated links
    /// report a large but finite delay instead of infinity.
    pub max_utilization: f64,
}

/// Latency estimate for one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobLatency {
    /// The job this estimate belongs to.
    pub job_id: u64,
    /// Expected hops per message (copied from the traffic description).
    pub avg_message_distance: f64,
    /// Expected per-message latency in seconds, including queueing.
    pub expected_latency: f64,
    /// The contention-free latency (service only) for the same route mix.
    pub base_latency: f64,
}

impl JobLatency {
    /// Queueing inflation factor: expected latency over the contention-free
    /// latency (1.0 on an idle network).
    pub fn slowdown(&self) -> f64 {
        if self.base_latency <= 0.0 {
            return 1.0;
        }
        self.expected_latency / self.base_latency
    }
}

impl LatencyEstimator {
    /// Creates an estimator with the given per-link service rate.
    ///
    /// # Panics
    ///
    /// Panics if `link_service_rate` is not positive.
    pub fn new(num_link_slots: usize, link_service_rate: f64) -> Self {
        assert!(
            link_service_rate > 0.0,
            "link service rate must be positive"
        );
        LatencyEstimator {
            link_service_rate,
            num_link_slots,
            max_utilization: 0.99,
        }
    }

    /// Per-link utilisation given each job's traffic description and current
    /// message rate (messages per second). Values may exceed 1 when the
    /// offered load is infeasible; the latency formula clamps them.
    pub fn link_utilization(&self, jobs: &[&JobTraffic], rates: &[f64]) -> Vec<f64> {
        assert_eq!(jobs.len(), rates.len(), "one rate per job");
        let mut utilization = vec![0.0f64; self.num_link_slots];
        for (job, &rate) in jobs.iter().zip(rates) {
            for &(l, q) in &job.link_demand {
                utilization[l.index()] += rate * q / self.link_service_rate;
            }
        }
        utilization
    }

    /// Expected per-message latency of every job, under the M/M/1
    /// approximation `delay(link) = service / (1 − ρ)` with ρ clamped to
    /// [`LatencyEstimator::max_utilization`].
    pub fn per_job_latency(&self, jobs: &[&JobTraffic], rates: &[f64]) -> Vec<JobLatency> {
        let utilization = self.link_utilization(jobs, rates);
        let service = 1.0 / self.link_service_rate;
        jobs.iter()
            .map(|job| {
                let mut expected = 0.0;
                let mut base = 0.0;
                for &(l, q) in &job.link_demand {
                    let rho = utilization[l.index()].min(self.max_utilization);
                    expected += q * service / (1.0 - rho);
                    base += q * service;
                }
                JobLatency {
                    job_id: job.job_id,
                    avg_message_distance: job.avg_message_distance,
                    expected_latency: expected,
                    base_latency: base,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkTable;
    use crate::traffic::RankTraffic;
    use commalloc_mesh::{Coord, Mesh2D};

    fn pair_traffic(
        mesh: Mesh2D,
        links: &LinkTable,
        id: u64,
        src: Coord,
        dst: Coord,
    ) -> JobTraffic {
        JobTraffic::new(
            mesh,
            links,
            id,
            &[mesh.id_of(src), mesh.id_of(dst)],
            &[RankTraffic {
                src: 0,
                dst: 1,
                weight: 1.0,
            }],
            1.0,
        )
    }

    #[test]
    fn idle_network_latency_equals_distance_times_service() {
        let mesh = Mesh2D::new(8, 8);
        let links = LinkTable::new(mesh);
        let job = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(4, 2));
        let estimator = LatencyEstimator::new(links.num_slots(), 2.0);
        // Rate 0: no queueing anywhere.
        let latencies = estimator.per_job_latency(&[&job], &[0.0]);
        let expected = 6.0 * 0.5; // 6 hops, 0.5 s service each
        assert!((latencies[0].expected_latency - expected).abs() < 1e-9);
        assert!((latencies[0].base_latency - expected).abs() < 1e-9);
        assert!((latencies[0].slowdown() - 1.0).abs() < 1e-12);
        assert!((latencies[0].avg_message_distance - 6.0).abs() < 1e-12);
    }

    #[test]
    fn shared_links_inflate_latency() {
        let mesh = Mesh2D::new(8, 8);
        let links = LinkTable::new(mesh);
        let a = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(7, 0));
        let b = pair_traffic(mesh, &links, 2, Coord::new(0, 0), Coord::new(7, 0));
        let estimator = LatencyEstimator::new(links.num_slots(), 2.0);
        let alone = estimator.per_job_latency(&[&a], &[1.0]);
        let shared = estimator.per_job_latency(&[&a, &b], &[1.0, 1.0]);
        assert!(
            shared[0].expected_latency > alone[0].expected_latency,
            "adding a competitor must raise expected latency"
        );
        assert!(shared[0].slowdown() > 1.0);
    }

    #[test]
    fn utilization_accumulates_per_link_and_is_clamped_in_latency() {
        let mesh = Mesh2D::new(8, 8);
        let links = LinkTable::new(mesh);
        let jobs: Vec<JobTraffic> = (0..5)
            .map(|i| pair_traffic(mesh, &links, i, Coord::new(0, 0), Coord::new(1, 0)))
            .collect();
        let refs: Vec<&JobTraffic> = jobs.iter().collect();
        let estimator = LatencyEstimator::new(links.num_slots(), 1.0);
        let rates = vec![1.0; 5];
        let utilization = estimator.link_utilization(&refs, &rates);
        // All five jobs cross the single link (0,0)->(1,0) at rate 1 each.
        assert!(utilization.iter().any(|&u| (u - 5.0).abs() < 1e-9));
        // The latency stays finite despite the overload thanks to the clamp.
        let latencies = estimator.per_job_latency(&refs, &rates);
        for l in &latencies {
            assert!(l.expected_latency.is_finite());
            assert!(l.expected_latency > l.base_latency);
        }
    }

    #[test]
    fn longer_routes_have_proportionally_larger_base_latency() {
        let mesh = Mesh2D::new(8, 8);
        let links = LinkTable::new(mesh);
        let short = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(2, 0));
        let long = pair_traffic(mesh, &links, 2, Coord::new(0, 0), Coord::new(7, 7));
        let estimator = LatencyEstimator::new(links.num_slots(), 4.0);
        let l = estimator.per_job_latency(&[&short, &long], &[0.0, 0.0]);
        assert!((l[1].base_latency / l[0].base_latency - 14.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one rate per job")]
    fn mismatched_rates_are_rejected() {
        let mesh = Mesh2D::new(4, 4);
        let links = LinkTable::new(mesh);
        let job = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(1, 0));
        LatencyEstimator::new(links.num_slots(), 1.0).link_utilization(&[&job], &[]);
    }
}
