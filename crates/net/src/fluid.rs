//! The fluid contention-rate model.
//!
//! Simulating every message of the full three-month trace at flit level is
//! computationally infeasible (tens of millions of messages per
//! configuration, hundreds of configurations), so the trace-driven
//! experiments use a *fluid* approximation: while the set of running jobs is
//! unchanged, each job delivers messages at a constant rate determined by
//! max-min fair sharing of link capacities.
//!
//! A job `j` is described by its [`JobTraffic`]: per-link demands
//! `q[j][l]` (expected crossings of link `l` per message) and a nominal
//! injection rate (one message per second of trace runtime). The model finds
//! rates `r[j] ≤ nominal[j]` such that for every link
//! `Σ_j r[j]·q[j][l] ≤ capacity` and the allocation is max-min fair: no job's
//! rate can be raised without lowering that of a job with an equal or lower
//! rate. Compact allocations produce short routes, little demand overlap and
//! therefore full-rate progress; dispersed allocations overlap with other
//! jobs' routes, saturate links and slow every job that crosses them — the
//! mechanism the paper attributes allocation-sensitivity to.

use crate::traffic::JobTraffic;
use serde::{Deserialize, Serialize};

/// A model that assigns message rates to concurrently running jobs.
pub trait RateModel: Send + Sync {
    /// Returns the sustained message rate of each job in `jobs`, in the same
    /// order. Rates are in `(0, nominal_rate]`.
    fn rates(&self, jobs: &[&JobTraffic]) -> Vec<f64>;
}

/// Baseline model with an infinitely fast network: every job always runs at
/// its nominal rate, so simulated durations equal trace runtimes and the
/// allocator has no effect. Used to isolate pure queueing effects in tests
/// and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroContentionModel;

impl RateModel for ZeroContentionModel {
    fn rates(&self, jobs: &[&JobTraffic]) -> Vec<f64> {
        jobs.iter().map(|j| j.nominal_rate).collect()
    }
}

/// Max-min fair link sharing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidNetwork {
    /// Link capacity in message-crossings per second. The default of 1.0
    /// means a lone job sending one message per second can never saturate a
    /// link by itself (per-message link demand is at most one crossing), so
    /// slowdowns arise only from sharing — matching the paper's focus on
    /// *inter-job* contention.
    pub link_capacity: f64,
    /// Number of slots to size dense per-link vectors with; set from
    /// `LinkTable::num_slots()`.
    pub num_link_slots: usize,
}

impl FluidNetwork {
    /// Creates the model with the default unit link capacity.
    pub fn new(num_link_slots: usize) -> Self {
        FluidNetwork {
            link_capacity: 1.0,
            num_link_slots,
        }
    }

    /// Creates the model with an explicit link capacity (calibration knob for
    /// sensitivity studies).
    pub fn with_capacity(num_link_slots: usize, link_capacity: f64) -> Self {
        assert!(link_capacity > 0.0, "link capacity must be positive");
        FluidNetwork {
            link_capacity,
            num_link_slots,
        }
    }
}

/// Per-link proportional sharing: a simpler (non-max-min) contention model
/// kept as an ablation of the fluid model itself.
///
/// Each link's capacity is divided among the jobs using it in proportion to
/// their demand on that link, so a job's rate is the minimum over its links
/// of `capacity / total_demand(link)`, capped at its nominal rate. Unlike
/// max-min fair water-filling, capacity a bottlenecked job cannot use is
/// *not* redistributed to its neighbours, which makes the model pessimistic
/// for lightly-loaded jobs sharing links with heavily-bottlenecked ones. The
/// ablation benches use it to check that the paper's allocator orderings do
/// not depend on the exact fairness discipline of the contention model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProportionalShareModel {
    /// Capacity of every link in message-crossings per second.
    pub link_capacity: f64,
    /// Number of link slots of the mesh (from [`crate::LinkTable`]).
    pub num_link_slots: usize,
}

impl ProportionalShareModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `link_capacity` is not positive.
    pub fn with_capacity(num_link_slots: usize, link_capacity: f64) -> Self {
        assert!(link_capacity > 0.0, "link capacity must be positive");
        ProportionalShareModel {
            link_capacity,
            num_link_slots,
        }
    }
}

impl RateModel for ProportionalShareModel {
    fn rates(&self, jobs: &[&JobTraffic]) -> Vec<f64> {
        let mut total_demand = vec![0.0f64; self.num_link_slots];
        for job in jobs {
            for &(l, q) in &job.link_demand {
                total_demand[l.index()] += q;
            }
        }
        jobs.iter()
            .map(|job| {
                let mut rate = job.nominal_rate;
                for &(l, q) in &job.link_demand {
                    if q > 1e-15 && total_demand[l.index()] > 1e-15 {
                        rate = rate.min(self.link_capacity / total_demand[l.index()]);
                    }
                }
                rate.max(1e-12)
            })
            .collect()
    }
}

impl RateModel for FluidNetwork {
    fn rates(&self, jobs: &[&JobTraffic]) -> Vec<f64> {
        let n = jobs.len();
        let mut rates = vec![0.0f64; n];
        if n == 0 {
            return rates;
        }
        // Jobs with no network demand run at their nominal rate and do not
        // participate in the water-filling.
        let mut unfixed: Vec<usize> = Vec::with_capacity(n);
        for (i, job) in jobs.iter().enumerate() {
            if job.is_local() {
                rates[i] = job.nominal_rate;
            } else {
                unfixed.push(i);
            }
        }
        let mut residual = vec![self.link_capacity; self.num_link_slots];
        // Current common water level of all unfixed jobs.
        let mut level = 0.0f64;

        while !unfixed.is_empty() {
            // Aggregate demand per link from unfixed jobs.
            let mut demand = vec![0.0f64; self.num_link_slots];
            for &i in &unfixed {
                for &(l, q) in &jobs[i].link_demand {
                    demand[l.index()] += q;
                }
            }
            // Largest increment before a link saturates or a job reaches its
            // nominal-rate cap.
            let mut delta = f64::INFINITY;
            for l in 0..self.num_link_slots {
                if demand[l] > 1e-15 {
                    delta = delta.min(residual[l].max(0.0) / demand[l]);
                }
            }
            for &i in &unfixed {
                delta = delta.min(jobs[i].nominal_rate - level);
            }
            // No link constrains any unfixed job (cannot happen while jobs
            // still have positive demand, but guard against numerical noise).
            if !delta.is_finite() {
                delta = unfixed
                    .iter()
                    .map(|&i| jobs[i].nominal_rate - level)
                    .fold(0.0, f64::max);
            }
            let delta = delta.max(0.0);
            level += delta;

            // Charge the links.
            for &i in &unfixed {
                for &(l, q) in &jobs[i].link_demand {
                    residual[l.index()] -= q * delta;
                }
            }

            // Fix jobs that reached their cap or that cross a saturated link.
            let mut still_unfixed = Vec::with_capacity(unfixed.len());
            for &i in &unfixed {
                let capped = level >= jobs[i].nominal_rate - 1e-12;
                let bottlenecked = jobs[i]
                    .link_demand
                    .iter()
                    .any(|&(l, q)| q > 1e-15 && residual[l.index()] <= 1e-12);
                if capped || bottlenecked {
                    rates[i] = level.min(jobs[i].nominal_rate).max(1e-12);
                } else {
                    still_unfixed.push(i);
                }
            }
            // Progress guarantee: if numerical issues prevent any job from
            // being fixed, fix them all at the current level.
            if still_unfixed.len() == unfixed.len() {
                for &i in &still_unfixed {
                    rates[i] = level.min(jobs[i].nominal_rate).max(1e-12);
                }
                break;
            }
            unfixed = still_unfixed;
        }
        rates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkTable;
    use crate::traffic::RankTraffic;
    use commalloc_mesh::{Coord, Mesh2D};

    fn setup() -> (Mesh2D, LinkTable) {
        let mesh = Mesh2D::new(8, 8);
        (mesh, LinkTable::new(mesh))
    }

    fn pair_traffic(
        mesh: Mesh2D,
        links: &LinkTable,
        id: u64,
        src: Coord,
        dst: Coord,
    ) -> JobTraffic {
        JobTraffic::new(
            mesh,
            links,
            id,
            &[mesh.id_of(src), mesh.id_of(dst)],
            &[RankTraffic {
                src: 0,
                dst: 1,
                weight: 1.0,
            }],
            1.0,
        )
    }

    #[test]
    fn lone_job_runs_at_nominal_rate() {
        let (mesh, links) = setup();
        let job = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(7, 7));
        let model = FluidNetwork::new(links.num_slots());
        let rates = model.rates(&[&job]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn local_job_is_never_slowed() {
        let (mesh, links) = setup();
        let local = JobTraffic::new(mesh, &links, 5, &[mesh.id_of(Coord::new(0, 0))], &[], 1.0);
        let far = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(7, 0));
        let model = FluidNetwork::with_capacity(links.num_slots(), 0.1);
        let rates = model.rates(&[&local, &far]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!(rates[1] < 1.0);
    }

    #[test]
    fn jobs_sharing_a_link_split_its_capacity_fairly() {
        let (mesh, links) = setup();
        // Three jobs whose single message path all traverse the link
        // (3,0) -> (4,0): sources on the left, destinations on the right of
        // the same row.
        let jobs: Vec<JobTraffic> = (0..3)
            .map(|i| pair_traffic(mesh, &links, i, Coord::new(0, 0), Coord::new(7, 0)))
            .collect();
        let refs: Vec<&JobTraffic> = jobs.iter().collect();
        let model = FluidNetwork::new(links.num_slots());
        let rates = model.rates(&refs);
        for r in &rates {
            assert!((r - 1.0 / 3.0).abs() < 1e-9, "expected 1/3, got {r}");
        }
    }

    #[test]
    fn disjoint_jobs_do_not_interfere() {
        let (mesh, links) = setup();
        let a = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(3, 0));
        let b = pair_traffic(mesh, &links, 2, Coord::new(0, 7), Coord::new(3, 7));
        let model = FluidNetwork::new(links.num_slots());
        let rates = model.rates(&[&a, &b]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_fairness_protects_light_jobs() {
        let (mesh, links) = setup();
        // Job A uses only the first hop of the row; job B uses the whole row.
        let a = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(1, 0));
        let b = pair_traffic(mesh, &links, 2, Coord::new(0, 0), Coord::new(7, 0));
        // Capacity 0.5: the shared link (0,0)->(1,0) is the bottleneck.
        let model = FluidNetwork::with_capacity(links.num_slots(), 0.5);
        let rates = model.rates(&[&a, &b]);
        // Both jobs share the bottleneck equally at 0.25.
        assert!((rates[0] - 0.25).abs() < 1e-9);
        assert!((rates[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn proportional_share_matches_max_min_on_symmetric_loads() {
        let (mesh, links) = setup();
        // Three identical jobs on the same route: both disciplines give 1/3
        // of the link capacity (here capacity 1.0) to each.
        let jobs: Vec<JobTraffic> = (0..3)
            .map(|i| pair_traffic(mesh, &links, i, Coord::new(0, 0), Coord::new(7, 0)))
            .collect();
        let refs: Vec<&JobTraffic> = jobs.iter().collect();
        let prop = ProportionalShareModel::with_capacity(links.num_slots(), 1.0);
        let fluid = FluidNetwork::with_capacity(links.num_slots(), 1.0);
        for (p, f) in prop.rates(&refs).iter().zip(fluid.rates(&refs)) {
            assert!((p - f).abs() < 1e-9);
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn proportional_share_is_never_more_generous_than_max_min() {
        let (mesh, links) = setup();
        // Asymmetric case: a short job shares its only link with a long job.
        // Max-min redistributes what the long job cannot use elsewhere;
        // proportional sharing does not, so it can only be more pessimistic.
        let a = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(1, 0));
        let b = pair_traffic(mesh, &links, 2, Coord::new(0, 0), Coord::new(7, 0));
        let c = pair_traffic(mesh, &links, 3, Coord::new(3, 0), Coord::new(7, 0));
        let refs = [&a, &b, &c];
        let prop = ProportionalShareModel::with_capacity(links.num_slots(), 0.5);
        let fluid = FluidNetwork::with_capacity(links.num_slots(), 0.5);
        let pr = prop.rates(&refs);
        let fr = fluid.rates(&refs);
        for (i, (p, f)) in pr.iter().zip(&fr).enumerate() {
            assert!(*p > 0.0 && *p <= 1.0 + 1e-9);
            assert!(
                p <= &(f + 1e-9),
                "job {i}: proportional {p} exceeds max-min {f}"
            );
        }
    }

    #[test]
    fn proportional_share_leaves_lone_and_local_jobs_at_nominal() {
        let (mesh, links) = setup();
        let lone = pair_traffic(mesh, &links, 1, Coord::new(0, 0), Coord::new(7, 7));
        let local = JobTraffic::new(mesh, &links, 2, &[mesh.id_of(Coord::new(3, 3))], &[], 1.0);
        let model = ProportionalShareModel::with_capacity(links.num_slots(), 1.0);
        let rates = model.rates(&[&lone, &local]);
        assert!((rates[0] - 1.0).abs() < 1e-9);
        assert!((rates[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_contention_model_ignores_everything() {
        let (mesh, links) = setup();
        let jobs: Vec<JobTraffic> = (0..5)
            .map(|i| pair_traffic(mesh, &links, i, Coord::new(0, 0), Coord::new(7, 7)))
            .collect();
        let refs: Vec<&JobTraffic> = jobs.iter().collect();
        let rates = ZeroContentionModel.rates(&refs);
        assert!(rates.iter().all(|&r| (r - 1.0).abs() < 1e-12));
    }

    #[test]
    fn rates_never_exceed_nominal_and_never_vanish() {
        let (mesh, links) = setup();
        let jobs: Vec<JobTraffic> = (0..20)
            .map(|i| {
                pair_traffic(
                    mesh,
                    &links,
                    i,
                    Coord::new((i % 8) as u16, 0),
                    Coord::new(7 - (i % 8) as u16, 7),
                )
            })
            .collect();
        let refs: Vec<&JobTraffic> = jobs.iter().collect();
        let model = FluidNetwork::with_capacity(links.num_slots(), 0.3);
        let rates = model.rates(&refs);
        for r in rates {
            assert!(r > 0.0 && r <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn empty_job_set() {
        let model = FluidNetwork::new(16);
        assert!(model.rates(&[]).is_empty());
    }
}
