//! Mapping a job's rank-level traffic onto physical links.

use crate::link::{LinkId, LinkTable};
use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// A rank-level traffic entry: ranks `src → dst` carry `weight` fraction of
/// the job's messages (mirrors `commalloc_workload::TrafficEntry`; duplicated
/// here so the network crate does not depend on the workload crate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankTraffic {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Fraction of the job's messages on this pair.
    pub weight: f64,
}

/// A running job's traffic mapped onto the physical mesh.
///
/// Pre-computes everything the contention models need:
///
/// * `link_demand[l]` — the expected number of times a random message of the
///   job crosses link `l` (between 0 and 1 for a single link; the sum over
///   links equals the average message distance);
/// * `avg_message_distance` — the expected hop count of a message, the metric
///   of the paper's Figure 10;
/// * `nominal_rate` — the injection rate the job sustains when the network
///   never blocks it (one message per second of trace runtime).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTraffic {
    /// The job this traffic belongs to.
    pub job_id: u64,
    /// Sparse per-link demand, sorted by link id.
    pub link_demand: Vec<(LinkId, f64)>,
    /// Expected hops per message.
    pub avg_message_distance: f64,
    /// Uncontended injection rate in messages per second.
    pub nominal_rate: f64,
}

impl JobTraffic {
    /// Builds the physical traffic description of a job.
    ///
    /// `nodes` is the allocation in rank order (rank `r` runs on `nodes[r]`)
    /// and `traffic` the rank-level matrix produced by the communication
    /// pattern. Entries whose ranks fall outside the allocation are a caller
    /// bug and panic in debug builds.
    pub fn new(
        mesh: Mesh2D,
        links: &LinkTable,
        job_id: u64,
        nodes: &[NodeId],
        traffic: &[RankTraffic],
        nominal_rate: f64,
    ) -> Self {
        let mut demand = vec![0.0f64; links.num_slots()];
        let mut avg_distance = 0.0;
        for entry in traffic {
            debug_assert!(entry.src < nodes.len() && entry.dst < nodes.len());
            let src = nodes[entry.src];
            let dst = nodes[entry.dst];
            avg_distance += entry.weight * mesh.distance(src, dst) as f64;
            for link in links.route_links(src, dst) {
                demand[link.index()] += entry.weight;
            }
        }
        let link_demand: Vec<(LinkId, f64)> = demand
            .into_iter()
            .enumerate()
            .filter(|&(_, d)| d > 0.0)
            .map(|(i, d)| (LinkId(i as u32), d))
            .collect();
        JobTraffic {
            job_id,
            link_demand,
            avg_message_distance: avg_distance,
            nominal_rate,
        }
    }

    /// True when the job does not use the network at all (single-processor
    /// jobs or co-located ranks).
    pub fn is_local(&self) -> bool {
        self.link_demand.is_empty()
    }

    /// The highest per-link demand — the job's own bottleneck when running
    /// alone at nominal rate.
    pub fn max_link_demand(&self) -> f64 {
        self.link_demand.iter().map(|&(_, d)| d).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    fn mesh_and_links() -> (Mesh2D, LinkTable) {
        let mesh = Mesh2D::new(8, 8);
        (mesh, LinkTable::new(mesh))
    }

    #[test]
    fn ring_traffic_on_a_line_allocation() {
        let (mesh, links) = mesh_and_links();
        // Four processors in a row, ring pattern (0->1->2->3->0).
        let nodes: Vec<NodeId> = (0..4).map(|x| mesh.id_of(Coord::new(x, 0))).collect();
        let traffic: Vec<RankTraffic> = (0..4)
            .map(|i| RankTraffic {
                src: i,
                dst: (i + 1) % 4,
                weight: 0.25,
            })
            .collect();
        let jt = JobTraffic::new(mesh, &links, 1, &nodes, &traffic, 1.0);
        // Hops: 1 + 1 + 1 + 3 (the wrap-around) = 6; average 1.5.
        assert!((jt.avg_message_distance - 1.5).abs() < 1e-12);
        assert!(!jt.is_local());
        // Total demand across links equals the average message distance.
        let total: f64 = jt.link_demand.iter().map(|&(_, d)| d).sum();
        assert!((total - jt.avg_message_distance).abs() < 1e-12);
    }

    #[test]
    fn colocated_ranks_have_no_link_demand() {
        let (mesh, links) = mesh_and_links();
        let n = mesh.id_of(Coord::new(3, 3));
        let jt = JobTraffic::new(
            mesh,
            &links,
            7,
            &[n, n],
            &[RankTraffic {
                src: 0,
                dst: 1,
                weight: 1.0,
            }],
            1.0,
        );
        assert!(jt.is_local());
        assert_eq!(jt.avg_message_distance, 0.0);
        assert_eq!(jt.max_link_demand(), 0.0);
    }

    #[test]
    fn dispersed_allocation_has_larger_message_distance() {
        let (mesh, links) = mesh_and_links();
        let compact: Vec<NodeId> = mesh
            .submesh(Coord::new(0, 0), 2, 2)
            .into_iter()
            .map(|c| mesh.id_of(c))
            .collect();
        let dispersed = vec![
            mesh.id_of(Coord::new(0, 0)),
            mesh.id_of(Coord::new(7, 0)),
            mesh.id_of(Coord::new(0, 7)),
            mesh.id_of(Coord::new(7, 7)),
        ];
        let all_pairs: Vec<RankTraffic> = (0..4)
            .flat_map(|i| {
                (0..4).filter(move |&j| j != i).map(move |j| RankTraffic {
                    src: i,
                    dst: j,
                    weight: 1.0 / 12.0,
                })
            })
            .collect();
        let c = JobTraffic::new(mesh, &links, 1, &compact, &all_pairs, 1.0);
        let d = JobTraffic::new(mesh, &links, 2, &dispersed, &all_pairs, 1.0);
        assert!(d.avg_message_distance > 3.0 * c.avg_message_distance);
    }
}
