//! Cycle-driven flit-level wormhole network simulator.
//!
//! This is the fidelity class of ProcSimity, the simulator the paper uses:
//! messages are worms of flits routed x-y through the mesh; the head flit
//! acquires one directed link per cycle when that link is free and the body
//! follows in pipeline, so a blocked head stalls the whole worm in place and
//! holds its links — which is exactly how interjob contention turns dispersed
//! allocations into slowdowns.
//!
//! The simulator is used for the microbenchmark experiments (the Figure 1
//! communication test suite), for validating the coarser
//! [`crate::fluid::FluidNetwork`] model, and in unit tests; whole-trace
//! simulations use the fluid model (see DESIGN.md).

use crate::assert_unique_ids;
use crate::link::{LinkId, LinkTable};
use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};

/// A message to inject into the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlitMessage {
    /// Caller-chosen identifier (reported back in the results).
    pub id: u64,
    /// Source processor.
    pub src: NodeId,
    /// Destination processor.
    pub dst: NodeId,
    /// Cycle at which the message becomes ready to inject.
    pub inject_at: u64,
    /// Message length in flits (including the header flit).
    pub flits: u32,
}

/// Delivery record of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// The message identifier.
    pub id: u64,
    /// Cycle at which the last flit arrived.
    pub delivered_at: u64,
    /// `delivered_at - inject_at`.
    pub latency: u64,
}

/// Result of a flit-level simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlitSimReport {
    /// Per-message delivery records, in input order.
    pub deliveries: Vec<Delivery>,
    /// Cycle at which the last message was delivered.
    pub makespan: u64,
}

impl FlitSimReport {
    /// Mean latency over all messages.
    pub fn mean_latency(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries
            .iter()
            .map(|d| d.latency as f64)
            .sum::<f64>()
            / self.deliveries.len() as f64
    }
}

/// The wormhole mesh network.
#[derive(Debug, Clone)]
pub struct FlitNetwork {
    links: LinkTable,
    /// Safety bound on simulated cycles; exceeded only by a routing deadlock,
    /// which x-y routing precludes, so hitting it is a bug.
    max_cycles: u64,
}

#[derive(Debug)]
struct Worm {
    input_index: usize,
    path: Vec<LinkId>,
    inject_at: u64,
    flits: u32,
    /// Links acquired so far (head progress).
    head: usize,
    /// Oldest still-held link index.
    tail: usize,
    /// Cycle the head reached the destination, if it has.
    head_arrived: Option<u64>,
    delivered_at: Option<u64>,
}

impl FlitNetwork {
    /// Creates a simulator over `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        FlitNetwork {
            links: LinkTable::new(mesh),
            max_cycles: 100_000_000,
        }
    }

    /// Overrides the runaway-simulation guard (useful in tests).
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> Mesh2D {
        self.links.mesh()
    }

    /// Simulates all `messages` to completion and reports per-message
    /// delivery times.
    ///
    /// Link conflicts are resolved deterministically in favour of the message
    /// that appears first in `messages`, so runs are reproducible.
    ///
    /// # Panics
    ///
    /// Panics if any message has zero flits, if two messages share an id
    /// (the per-id delivery records would be ambiguous), or if the
    /// simulation exceeds the cycle guard (which would indicate a deadlock
    /// and therefore a bug).
    pub fn simulate(&self, messages: &[FlitMessage]) -> FlitSimReport {
        let mesh = self.mesh();
        assert_unique_ids(messages.iter().map(|m| m.id));
        let mut worms: Vec<Worm> = messages
            .iter()
            .enumerate()
            .map(|(i, m)| {
                assert!(m.flits > 0, "messages must carry at least one flit");
                Worm {
                    input_index: i,
                    path: self.links.route_links(m.src, m.dst),
                    inject_at: m.inject_at,
                    flits: m.flits,
                    head: 0,
                    tail: 0,
                    head_arrived: None,
                    delivered_at: None,
                }
            })
            .collect();
        let _ = mesh;

        let mut occupied: Vec<bool> = vec![false; self.links.num_slots()];
        let mut remaining = worms.len();
        let mut cycle: u64 = 0;

        // Messages between co-located ranks are delivered immediately.
        for w in &mut worms {
            if w.path.is_empty() {
                w.delivered_at = Some(w.inject_at);
                remaining -= 1;
            }
        }

        while remaining > 0 {
            assert!(
                cycle <= self.max_cycles,
                "flit simulation exceeded {} cycles — routing deadlock?",
                self.max_cycles
            );
            for w in worms.iter_mut() {
                if w.delivered_at.is_some() || w.inject_at > cycle {
                    continue;
                }
                match w.head_arrived {
                    None => {
                        // Try to advance the head by one link.
                        let next = w.path[w.head];
                        if !occupied[next.index()] {
                            occupied[next.index()] = true;
                            w.head += 1;
                            // Keep the worm no longer than its flit count.
                            if w.head - w.tail > w.flits as usize {
                                occupied[w.path[w.tail].index()] = false;
                                w.tail += 1;
                            }
                            if w.head == w.path.len() {
                                w.head_arrived = Some(cycle);
                            }
                        }
                    }
                    Some(arrived) => {
                        // One flit drains into the destination per cycle;
                        // the tail releases one link per cycle.
                        if w.tail < w.head {
                            occupied[w.path[w.tail].index()] = false;
                            w.tail += 1;
                        }
                        if cycle - arrived + 1 >= w.flits as u64 {
                            // All flits have arrived; release anything left.
                            // Delivery is stamped at the end of the cycle so
                            // the uncontended latency is hops + flits - 1.
                            while w.tail < w.head {
                                occupied[w.path[w.tail].index()] = false;
                                w.tail += 1;
                            }
                            w.delivered_at = Some(cycle + 1);
                            remaining -= 1;
                        }
                    }
                }
            }
            cycle += 1;
        }

        // Worms were built by enumerating `messages`, so walking them in
        // order already yields deliveries in input order — no re-sort (the
        // old per-element `position()` scan was O(n²) on the hot path).
        let deliveries: Vec<Delivery> = worms
            .iter()
            .map(|w| {
                let delivered_at = w.delivered_at.expect("all worms delivered");
                Delivery {
                    id: messages[w.input_index].id,
                    delivered_at,
                    latency: delivered_at - w.inject_at,
                }
            })
            .collect();
        let makespan = deliveries.iter().map(|d| d.delivered_at).max().unwrap_or(0);
        FlitSimReport {
            deliveries,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    fn mesh8() -> Mesh2D {
        Mesh2D::new(8, 8)
    }

    fn msg(
        mesh: Mesh2D,
        id: u64,
        src: (u16, u16),
        dst: (u16, u16),
        at: u64,
        flits: u32,
    ) -> FlitMessage {
        FlitMessage {
            id,
            src: mesh.id_of(Coord::new(src.0, src.1)),
            dst: mesh.id_of(Coord::new(dst.0, dst.1)),
            inject_at: at,
            flits,
        }
    }

    #[test]
    fn uncontended_latency_is_hops_plus_flits() {
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        // 5 hops, 4 flits.
        let report = net.simulate(&[msg(mesh, 1, (0, 0), (3, 2), 0, 4)]);
        assert_eq!(report.deliveries.len(), 1);
        // Head needs 5 cycles (one per link), then 4 drain cycles; delivery is
        // recorded on the cycle the last flit lands.
        let latency = report.deliveries[0].latency;
        assert_eq!(latency, 5 + 4 - 1);
    }

    #[test]
    fn local_message_is_immediate() {
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        let report = net.simulate(&[msg(mesh, 1, (2, 2), (2, 2), 7, 3)]);
        assert_eq!(report.deliveries[0].delivered_at, 7);
        assert_eq!(report.deliveries[0].latency, 0);
    }

    #[test]
    fn contention_on_a_shared_link_serialises_messages() {
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        // Two messages over the same row segment, same direction.
        let a = msg(mesh, 1, (0, 0), (4, 0), 0, 8);
        let b = msg(mesh, 2, (0, 0), (4, 0), 0, 8);
        let both = net.simulate(&[a, b]);
        let alone = net.simulate(&[a]);
        let la = both.deliveries[0].latency;
        let lb = both.deliveries[1].latency;
        assert_eq!(la, alone.deliveries[0].latency, "first message unimpeded");
        assert!(lb > la, "second message must wait behind the first");
    }

    #[test]
    fn disjoint_messages_do_not_interfere() {
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        let a = msg(mesh, 1, (0, 0), (3, 0), 0, 4);
        let b = msg(mesh, 2, (0, 5), (3, 5), 0, 4);
        let both = net.simulate(&[a, b]);
        let only_a = net.simulate(&[a]);
        assert_eq!(both.deliveries[0].latency, only_a.deliveries[0].latency);
        assert_eq!(both.deliveries[0].latency, both.deliveries[1].latency);
    }

    #[test]
    fn deferred_injection_is_respected() {
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        let report = net.simulate(&[msg(mesh, 1, (0, 0), (1, 0), 100, 2)]);
        assert!(report.deliveries[0].delivered_at >= 100);
        assert_eq!(report.deliveries[0].latency, 1 + 2 - 1);
    }

    #[test]
    fn dispersed_all_to_all_is_slower_than_compact() {
        // The Figure 1 mechanism in miniature: the same all-to-all traffic on
        // a compact 2x2 block vs. four corners of the mesh.
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        let compact: Vec<NodeId> = mesh
            .submesh(Coord::new(0, 0), 2, 2)
            .into_iter()
            .map(|c| mesh.id_of(c))
            .collect();
        let corners: Vec<NodeId> = [(0u16, 0u16), (7, 0), (0, 7), (7, 7)]
            .iter()
            .map(|&(x, y)| mesh.id_of(Coord::new(x, y)))
            .collect();
        let build = |nodes: &[NodeId]| -> Vec<FlitMessage> {
            let mut msgs = Vec::new();
            let mut id = 0;
            for _ in 0..4 {
                for i in 0..nodes.len() {
                    for j in 0..nodes.len() {
                        if i != j {
                            msgs.push(FlitMessage {
                                id,
                                src: nodes[i],
                                dst: nodes[j],
                                inject_at: 0,
                                flits: 16,
                            });
                            id += 1;
                        }
                    }
                }
            }
            msgs
        };
        let compact_report = net.simulate(&build(&compact));
        let corner_report = net.simulate(&build(&corners));
        assert!(
            corner_report.makespan > compact_report.makespan,
            "dispersed {} should exceed compact {}",
            corner_report.makespan,
            compact_report.makespan
        );
    }

    #[test]
    fn deliveries_stay_in_input_order_even_when_completion_inverts_it() {
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        // The first input is a long worm, the second a one-flit hop that
        // completes far earlier; the report must still list them as given.
        let slow = msg(mesh, 9, (0, 0), (7, 0), 0, 16);
        let fast = msg(mesh, 3, (0, 5), (1, 5), 0, 1);
        let report = net.simulate(&[slow, fast]);
        let ids: Vec<u64> = report.deliveries.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![9, 3]);
        assert!(report.deliveries[1].delivered_at < report.deliveries[0].delivered_at);
    }

    #[test]
    #[should_panic(expected = "duplicate message id")]
    fn duplicate_message_ids_are_rejected() {
        // Regression: duplicates used to be silently tolerated (the report
        // re-sort fell back to usize::MAX for unmatched ids), leaving the
        // per-id records ambiguous.
        let mesh = mesh8();
        let net = FlitNetwork::new(mesh);
        net.simulate(&[
            msg(mesh, 1, (0, 0), (1, 0), 0, 2),
            msg(mesh, 1, (0, 1), (1, 1), 0, 2),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_flit_message_is_rejected() {
        let mesh = mesh8();
        FlitNetwork::new(mesh).simulate(&[msg(mesh, 1, (0, 0), (1, 0), 0, 0)]);
    }

    #[test]
    fn mean_latency_of_empty_report_is_zero() {
        let report = FlitSimReport {
            deliveries: vec![],
            makespan: 0,
        };
        assert_eq!(report.mean_latency(), 0.0);
    }
}
