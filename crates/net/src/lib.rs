//! # commalloc-net
//!
//! Interconnect models for the `commalloc` allocation-strategy simulator.
//!
//! The paper evaluates allocators with ProcSimity, a simulator that "models
//! communication at the flit level, allowing it to measure how network
//! contention affects machine throughput". This crate rebuilds that substrate
//! at three fidelity levels that share the same mesh, x-y routing and
//! traffic descriptions (see DESIGN.md for the substitution rationale):
//!
//! * [`flit::FlitNetwork`] — a cycle-driven wormhole simulator: messages are
//!   worms of flits that acquire the directed links of their x-y route one
//!   per cycle and block behind each other. Used for microbenchmarks
//!   (Figure 1) and for validating the coarser models.
//! * [`msglevel::MessageLevelNetwork`] — an event-driven store-and-forward
//!   approximation where every link is a FIFO server; useful middle ground
//!   when whole-trace flit simulation is infeasible.
//! * [`fluid::FluidNetwork`] — a contention-rate ("fluid") model: each
//!   running job is described by its expected per-link demand and the model
//!   computes max-min fair message rates under per-link capacities. This is
//!   the model the trace-driven experiments (Figures 7, 8, 11) use.
//!   [`fluid::ProportionalShareModel`] is a simpler non-max-min variant kept
//!   as an ablation of the fairness discipline itself.
//!
//! Traffic descriptions are built with [`traffic::JobTraffic`], which maps a
//! job's rank-level communication pattern onto the physical processors of its
//! allocation and pre-computes per-link demands and the average message
//! distance (the metric of the paper's Figure 10).

pub mod flit;
pub mod fluid;
pub mod latency;
pub mod link;
pub mod msglevel;
pub mod traffic;

/// Rejects duplicate message ids up front: delivery reports are keyed by id,
/// so a duplicate would make the report ambiguous and mask a caller bug
/// (previously swallowed by an `unwrap_or(usize::MAX)` sort key).
pub(crate) fn assert_unique_ids(ids: impl Iterator<Item = u64>) {
    let mut seen = std::collections::HashSet::new();
    for id in ids {
        assert!(seen.insert(id), "duplicate message id {id}");
    }
}

pub use fluid::{FluidNetwork, ProportionalShareModel, RateModel, ZeroContentionModel};
pub use link::{LinkId, LinkTable};
pub use traffic::JobTraffic;
