//! Event-driven message-level network simulator.
//!
//! A middle fidelity between the flit-level wormhole simulator and the fluid
//! rate model: each directed link is a FIFO server that transmits one whole
//! message at a time (store-and-forward), so a message's uncontended latency
//! is `hops × service_time` and queueing delays appear wherever routes
//! overlap. This model is orders of magnitude faster than flit simulation
//! because it advances by events rather than cycles, yet it still resolves
//! the per-link queueing that the fluid model averages away.

use crate::assert_unique_ids;
use crate::link::{LinkId, LinkTable};
use commalloc_mesh::{Mesh2D, NodeId};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A message to inject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Caller-chosen identifier.
    pub id: u64,
    /// Source processor.
    pub src: NodeId,
    /// Destination processor.
    pub dst: NodeId,
    /// Time at which the message is ready to leave the source.
    pub inject_at: f64,
    /// Time a link needs to forward the whole message.
    pub service_time: f64,
}

/// Delivery record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MessageDelivery {
    /// The message identifier.
    pub id: u64,
    /// Time the message fully arrived at its destination.
    pub delivered_at: f64,
    /// `delivered_at - inject_at`.
    pub latency: f64,
}

/// Result of a message-level simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageSimReport {
    /// Per-message records, in input order.
    pub deliveries: Vec<MessageDelivery>,
    /// Time the last message arrived.
    pub makespan: f64,
}

impl MessageSimReport {
    /// Mean latency over all messages.
    pub fn mean_latency(&self) -> f64 {
        if self.deliveries.is_empty() {
            return 0.0;
        }
        self.deliveries.iter().map(|d| d.latency).sum::<f64>() / self.deliveries.len() as f64
    }
}

/// The store-and-forward mesh network.
#[derive(Debug, Clone)]
pub struct MessageLevelNetwork {
    links: LinkTable,
}

/// Pending event: message `msg` is ready to start crossing the `stage`-th
/// link of its path at `time`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    msg: usize,
    stage: usize,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.msg.cmp(&other.msg))
            .then(self.stage.cmp(&other.stage))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl MessageLevelNetwork {
    /// Creates a simulator over `mesh`.
    pub fn new(mesh: Mesh2D) -> Self {
        MessageLevelNetwork {
            links: LinkTable::new(mesh),
        }
    }

    /// The mesh being simulated.
    pub fn mesh(&self) -> Mesh2D {
        self.links.mesh()
    }

    /// Simulates all messages to completion.
    ///
    /// Ties are broken by input order so runs are deterministic.
    ///
    /// # Panics
    ///
    /// Panics if two messages share an id (the per-id delivery records
    /// would be ambiguous).
    pub fn simulate(&self, messages: &[Message]) -> MessageSimReport {
        assert_unique_ids(messages.iter().map(|m| m.id));
        let paths: Vec<Vec<LinkId>> = messages
            .iter()
            .map(|m| self.links.route_links(m.src, m.dst))
            .collect();
        let mut link_free_at: Vec<f64> = vec![0.0; self.links.num_slots()];
        // Delivery slots indexed by input position: events carry the input
        // index, so each record lands directly in place — no O(n²)
        // id-lookup re-sort at the end.
        let mut deliveries: Vec<Option<MessageDelivery>> = vec![None; messages.len()];
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();

        for (i, m) in messages.iter().enumerate() {
            if paths[i].is_empty() {
                deliveries[i] = Some(MessageDelivery {
                    id: m.id,
                    delivered_at: m.inject_at,
                    latency: 0.0,
                });
            } else {
                heap.push(Reverse(Event {
                    time: m.inject_at,
                    msg: i,
                    stage: 0,
                }));
            }
        }

        while let Some(Reverse(ev)) = heap.pop() {
            let m = &messages[ev.msg];
            let link = paths[ev.msg][ev.stage];
            let start = ev.time.max(link_free_at[link.index()]);
            let finish = start + m.service_time;
            link_free_at[link.index()] = finish;
            if ev.stage + 1 < paths[ev.msg].len() {
                heap.push(Reverse(Event {
                    time: finish,
                    msg: ev.msg,
                    stage: ev.stage + 1,
                }));
            } else {
                deliveries[ev.msg] = Some(MessageDelivery {
                    id: m.id,
                    delivered_at: finish,
                    latency: finish - m.inject_at,
                });
            }
        }

        let deliveries: Vec<MessageDelivery> = deliveries
            .into_iter()
            .map(|d| d.expect("every message delivered"))
            .collect();
        let makespan = deliveries
            .iter()
            .map(|d| d.delivered_at)
            .fold(0.0f64, f64::max);
        MessageSimReport {
            deliveries,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Coord;

    fn mesh8() -> Mesh2D {
        Mesh2D::new(8, 8)
    }

    fn msg(mesh: Mesh2D, id: u64, src: (u16, u16), dst: (u16, u16), at: f64) -> Message {
        Message {
            id,
            src: mesh.id_of(Coord::new(src.0, src.1)),
            dst: mesh.id_of(Coord::new(dst.0, dst.1)),
            inject_at: at,
            service_time: 1.0,
        }
    }

    #[test]
    fn uncontended_latency_is_hops_times_service() {
        let mesh = mesh8();
        let net = MessageLevelNetwork::new(mesh);
        let r = net.simulate(&[msg(mesh, 1, (0, 0), (3, 2), 0.0)]);
        assert!((r.deliveries[0].latency - 5.0).abs() < 1e-12);
    }

    #[test]
    fn shared_link_queues_messages() {
        let mesh = mesh8();
        let net = MessageLevelNetwork::new(mesh);
        let r = net.simulate(&[
            msg(mesh, 1, (0, 0), (2, 0), 0.0),
            msg(mesh, 2, (0, 0), (2, 0), 0.0),
        ]);
        assert!((r.deliveries[0].latency - 2.0).abs() < 1e-12);
        // The second message waits one service time at the first link.
        assert!((r.deliveries[1].latency - 3.0).abs() < 1e-12);
    }

    #[test]
    fn local_message_is_immediate() {
        let mesh = mesh8();
        let net = MessageLevelNetwork::new(mesh);
        let r = net.simulate(&[msg(mesh, 1, (4, 4), (4, 4), 3.0)]);
        assert_eq!(r.deliveries[0].delivered_at, 3.0);
    }

    #[test]
    fn makespan_and_mean_latency() {
        let mesh = mesh8();
        let net = MessageLevelNetwork::new(mesh);
        let r = net.simulate(&[
            msg(mesh, 1, (0, 0), (1, 0), 0.0),
            msg(mesh, 2, (5, 5), (5, 7), 1.0),
        ]);
        assert!((r.makespan - 3.0).abs() < 1e-12);
        assert!((r.mean_latency() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn deliveries_stay_in_input_order_even_when_completion_inverts_it() {
        let mesh = mesh8();
        let net = MessageLevelNetwork::new(mesh);
        let slow = msg(mesh, 9, (0, 0), (7, 7), 0.0);
        let fast = msg(mesh, 3, (0, 5), (1, 5), 0.0);
        let r = net.simulate(&[slow, fast]);
        let ids: Vec<u64> = r.deliveries.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![9, 3]);
        assert!(r.deliveries[1].delivered_at < r.deliveries[0].delivered_at);
    }

    #[test]
    #[should_panic(expected = "duplicate message id")]
    fn duplicate_message_ids_are_rejected() {
        // Regression: duplicates used to be silently tolerated (the report
        // re-sort fell back to usize::MAX for unmatched ids), leaving the
        // per-id records ambiguous.
        let mesh = mesh8();
        let net = MessageLevelNetwork::new(mesh);
        net.simulate(&[
            msg(mesh, 1, (0, 0), (1, 0), 0.0),
            msg(mesh, 1, (0, 1), (1, 1), 0.0),
        ]);
    }

    #[test]
    fn agrees_with_flit_model_on_relative_contention() {
        // Both models must rank a congested scenario slower than an
        // uncongested one.
        let mesh = mesh8();
        let msg_net = MessageLevelNetwork::new(mesh);
        let congested: Vec<Message> = (0..6).map(|i| msg(mesh, i, (0, 0), (7, 0), 0.0)).collect();
        let spread: Vec<Message> = (0..6)
            .map(|i| msg(mesh, i, (0, i as u16), (7, i as u16), 0.0))
            .collect();
        let c = msg_net.simulate(&congested);
        let s = msg_net.simulate(&spread);
        assert!(c.makespan > s.makespan);
    }
}
