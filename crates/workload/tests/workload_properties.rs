//! Property-based tests for the workload crate.

use commalloc_workload::patterns::CommPattern;
use commalloc_workload::synthetic::ParagonTraceModel;
use commalloc_workload::trace::Trace;
use commalloc_workload::Job;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_pattern() -> impl Strategy<Value = CommPattern> {
    proptest::sample::select(CommPattern::all().to_vec())
}

proptest! {
    /// Traffic matrices are always normalised probability distributions over
    /// valid ordered rank pairs.
    #[test]
    fn traffic_is_a_distribution(
        pattern in arb_pattern(),
        p in 2usize..64,
        quota in 1u64..100_000,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let entries = pattern.traffic(p, quota, &mut rng);
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for e in &entries {
            prop_assert!(e.src < p);
            prop_assert!(e.dst < p);
            prop_assert_ne!(e.src, e.dst);
            prop_assert!(e.weight > 0.0);
        }
        // No duplicate pairs.
        let mut pairs: Vec<_> = entries.iter().map(|e| (e.src, e.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), entries.len());
    }

    /// One iteration's message list length always equals
    /// `messages_per_iteration` (random draws exactly one message).
    #[test]
    fn iteration_length_matches_declaration(
        pattern in arb_pattern(),
        p in 2usize..48,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msgs = pattern.iteration_messages(p, &mut rng);
        prop_assert_eq!(msgs.len() as u64, pattern.messages_per_iteration(p));
        for (s, d) in msgs {
            prop_assert!(s < p && d < p && s != d);
        }
    }

    /// The load-factor transformation preserves ordering and scales every
    /// interarrival gap by exactly the factor.
    #[test]
    fn load_factor_scales_interarrivals(
        factor in 0.1f64..1.0,
        arrivals in proptest::collection::vec(0.0f64..1e6, 2..50),
    ) {
        let jobs: Vec<Job> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &a)| Job::new(i as u64, a, 4, 100.0))
            .collect();
        let trace = Trace::new(jobs);
        let scaled = trace.with_load_factor(factor);
        prop_assert_eq!(scaled.len(), trace.len());
        for (orig, new) in trace.jobs().iter().zip(scaled.jobs()) {
            prop_assert!((new.arrival - orig.arrival * factor).abs() < 1e-9);
        }
    }

    /// Synthetic traces always produce sizes the target machine can hold and
    /// strictly increasing arrival times.
    #[test]
    fn synthetic_trace_is_well_formed(seed in any::<u64>()) {
        let trace = ParagonTraceModel::scaled(300).generate(seed);
        prop_assert_eq!(trace.len(), 300);
        for w in trace.jobs().windows(2) {
            prop_assert!(w[1].arrival >= w[0].arrival);
        }
        for j in trace.jobs() {
            prop_assert!(j.size >= 1 && j.size <= 352);
            prop_assert!(j.runtime >= 1.0);
            prop_assert!(j.message_quota() >= 1);
        }
    }
}
