//! Trace representation and the paper's load-factor transformation.

use crate::distributions::mean_and_cv;
use crate::job::Job;
use serde::{Deserialize, Serialize};

/// A job trace: jobs sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    jobs: Vec<Job>,
}

impl Trace {
    /// Creates a trace, sorting the jobs by arrival time and reassigning ids
    /// in arrival order so downstream bookkeeping can index by id.
    pub fn new(mut jobs: Vec<Job>) -> Self {
        jobs.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = i as u64;
        }
        Trace { jobs }
    }

    /// The jobs in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The paper's load transformation: "we varied the message intensity by
    /// contracting all job arrival times by a load factor, taking values 1,
    /// 0.8, 0.6, 0.4, and 0.2 so that effective system load increases by up
    /// to a factor of 5." Multiplies every arrival time by `factor`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn with_load_factor(&self, factor: f64) -> Trace {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "load factor must be in (0, 1], got {factor}"
        );
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job {
                arrival: j.arrival * factor,
                ..*j
            })
            .collect();
        Trace::new(jobs)
    }

    /// Removes jobs larger than `max_size` processors. The paper removes the
    /// three 320-node jobs when simulating the 16 × 16 (256-processor)
    /// machine.
    pub fn filter_fitting(&self, max_size: usize) -> Trace {
        let jobs = self
            .jobs
            .iter()
            .copied()
            .filter(|j| j.size <= max_size)
            .collect();
        Trace::new(jobs)
    }

    /// Keeps only the first `n` jobs (used to subsample the trace for quick
    /// experiments and benchmarks).
    pub fn truncate(&self, n: usize) -> Trace {
        Trace::new(self.jobs.iter().copied().take(n).collect())
    }

    /// Statistical summary matching the quantities the paper reports for the
    /// SDSC Paragon trace.
    pub fn summary(&self) -> TraceSummary {
        let interarrivals: Vec<f64> = self
            .jobs
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        let sizes: Vec<f64> = self.jobs.iter().map(|j| j.size as f64).collect();
        let runtimes: Vec<f64> = self.jobs.iter().map(|j| j.runtime).collect();
        let (mean_interarrival, cv_interarrival) = mean_and_cv(&interarrivals);
        let (mean_size, cv_size) = mean_and_cv(&sizes);
        let (mean_runtime, cv_runtime) = mean_and_cv(&runtimes);
        let power_of_two_jobs = self
            .jobs
            .iter()
            .filter(|j| j.size.is_power_of_two())
            .count();
        TraceSummary {
            jobs: self.jobs.len(),
            mean_interarrival,
            cv_interarrival,
            mean_size,
            cv_size,
            mean_runtime,
            cv_runtime,
            power_of_two_fraction: if self.jobs.is_empty() {
                0.0
            } else {
                power_of_two_jobs as f64 / self.jobs.len() as f64
            },
        }
    }
}

/// The summary statistics the paper reports for its trace (Section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of jobs.
    pub jobs: usize,
    /// Mean interarrival time in seconds (paper: 1301 s).
    pub mean_interarrival: f64,
    /// Coefficient of variation of interarrival times (paper: 3.7).
    pub cv_interarrival: f64,
    /// Mean job size in processors (paper: 14.5).
    pub mean_size: f64,
    /// Coefficient of variation of job sizes (paper: 1.5).
    pub cv_size: f64,
    /// Mean runtime in seconds (paper: 3.04 h = 10 944 s).
    pub mean_runtime: f64,
    /// Coefficient of variation of runtimes (paper: 1.13).
    pub cv_runtime: f64,
    /// Fraction of jobs whose size is a power of two (the paper notes the
    /// distribution "heavily favors" powers of two).
    pub power_of_two_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> Trace {
        Trace::new(vec![
            Job::new(0, 0.0, 4, 100.0),
            Job::new(1, 10.0, 320, 50.0),
            Job::new(2, 30.0, 8, 200.0),
            Job::new(3, 60.0, 3, 400.0),
        ])
    }

    #[test]
    fn trace_sorts_by_arrival_and_reassigns_ids() {
        let t = Trace::new(vec![Job::new(7, 50.0, 1, 1.0), Job::new(9, 10.0, 2, 1.0)]);
        assert_eq!(t.jobs()[0].arrival, 10.0);
        assert_eq!(t.jobs()[0].id, 0);
        assert_eq!(t.jobs()[1].id, 1);
    }

    #[test]
    fn load_factor_contracts_arrivals() {
        let t = toy_trace();
        let loaded = t.with_load_factor(0.2);
        assert_eq!(loaded.jobs()[1].arrival, 2.0);
        assert_eq!(loaded.jobs()[3].arrival, 12.0);
        // Sizes and runtimes are untouched.
        assert_eq!(loaded.jobs()[1].size, 320);
        assert_eq!(loaded.summary().mean_runtime, t.summary().mean_runtime);
    }

    #[test]
    #[should_panic(expected = "load factor")]
    fn invalid_load_factor_panics() {
        toy_trace().with_load_factor(0.0);
    }

    #[test]
    fn filter_fitting_drops_oversized_jobs() {
        let t = toy_trace();
        let filtered = t.filter_fitting(256);
        assert_eq!(filtered.len(), 3);
        assert!(filtered.jobs().iter().all(|j| j.size <= 256));
    }

    #[test]
    fn summary_of_toy_trace() {
        let s = toy_trace().summary();
        assert_eq!(s.jobs, 4);
        assert!((s.mean_interarrival - 20.0).abs() < 1e-9);
        assert!((s.mean_size - (4.0 + 320.0 + 8.0 + 3.0) / 4.0).abs() < 1e-9);
        // Sizes 4 and 8 are powers of two; 320 and 3 are not.
        assert!((s.power_of_two_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn truncate_keeps_prefix() {
        let t = toy_trace().truncate(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.jobs()[1].size, 320);
    }
}
