//! The job model.

use serde::{Deserialize, Serialize};

/// One job of a trace.
///
/// Following Section 3.2 of the paper, a job's "runtime" from the trace is
/// converted into a *message quota*: the job sends one message per second of
/// trace runtime and terminates when they have all arrived. The simulated
/// duration therefore equals the trace runtime when the network keeps up and
/// stretches when contention slows message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Stable identifier (position in the trace).
    pub id: u64,
    /// Arrival (submission) time in seconds from the start of the trace.
    pub arrival: f64,
    /// Number of processors requested.
    pub size: usize,
    /// Trace runtime in seconds.
    pub runtime: f64,
}

impl Job {
    /// Creates a job.
    pub fn new(id: u64, arrival: f64, size: usize, runtime: f64) -> Self {
        debug_assert!(arrival >= 0.0 && runtime >= 0.0 && size > 0);
        Job {
            id,
            arrival,
            size,
            runtime,
        }
    }

    /// The job's message quota: one message per second of trace runtime,
    /// with a minimum of one message so zero-length jobs still exercise the
    /// allocator.
    pub fn message_quota(&self) -> u64 {
        (self.runtime.round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_quota_is_one_per_second() {
        assert_eq!(Job::new(0, 0.0, 4, 3600.0).message_quota(), 3600);
        assert_eq!(Job::new(0, 0.0, 4, 0.4).message_quota(), 1);
        assert_eq!(Job::new(0, 0.0, 4, 0.0).message_quota(), 1);
    }
}
