//! Trace analysis: the distributional view of a workload.
//!
//! Section 3.1 of the paper characterises its trace by a handful of summary
//! statistics (mean interarrival and its CV, mean size and its CV biased
//! toward powers of two, mean runtime and its CV). [`crate::TraceSummary`]
//! reports exactly those. This module goes one level deeper so the synthetic
//! generator can be *validated*, not just parameterised: histograms of the
//! three distributions, the offered load over time, and a quantitative
//! comparison between two traces (e.g. the synthetic model vs. an SWF file
//! of the real machine, if one is available).

use crate::job::Job;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[0, bound)` with an overflow bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of each regular bucket.
    pub edges: Vec<f64>,
    /// Counts per regular bucket, plus one final overflow bucket.
    pub counts: Vec<usize>,
    /// Total number of samples.
    pub total: usize,
}

impl Histogram {
    /// Builds a histogram with `buckets` equal-width buckets over
    /// `[0, bound)`; samples at or above `bound` land in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is zero or `bound` is not positive.
    pub fn new(samples: &[f64], buckets: usize, bound: f64) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(bound > 0.0, "histogram bound must be positive");
        let width = bound / buckets as f64;
        let edges: Vec<f64> = (0..buckets).map(|i| i as f64 * width).collect();
        let mut counts = vec![0usize; buckets + 1];
        for &s in samples {
            let idx = if s >= bound || s < 0.0 {
                buckets
            } else {
                ((s / width) as usize).min(buckets - 1)
            };
            counts[idx] += 1;
        }
        Histogram {
            edges,
            counts,
            total: samples.len(),
        }
    }

    /// Fraction of samples in the overflow bucket.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.counts.last().expect("overflow bucket exists") as f64 / self.total as f64
    }

    /// The normalised bucket frequencies (including the overflow bucket).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Distributional view of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceAnalysis {
    /// Interarrival-time histogram (seconds).
    pub interarrival: Histogram,
    /// Job-size histogram (processors).
    pub sizes: Histogram,
    /// Runtime histogram (seconds).
    pub runtimes: Histogram,
    /// Fraction of jobs at each power-of-two size present in the trace, as
    /// `(size, fraction)` sorted by size.
    pub power_of_two_spectrum: Vec<(usize, f64)>,
    /// Offered load per window: requested processor-seconds arriving in each
    /// time window, divided by the window length, as `(window_start, load)`.
    pub offered_load: Vec<(f64, f64)>,
}

impl TraceAnalysis {
    /// Analyses a trace. `windows` controls the resolution of the
    /// offered-load profile.
    pub fn of(trace: &Trace, windows: usize) -> Self {
        let jobs = trace.jobs();
        let interarrivals: Vec<f64> = jobs
            .windows(2)
            .map(|w| w[1].arrival - w[0].arrival)
            .collect();
        let sizes: Vec<f64> = jobs.iter().map(|j| j.size as f64).collect();
        let runtimes: Vec<f64> = jobs.iter().map(|j| j.runtime).collect();

        let max_size = sizes.iter().fold(1.0f64, |a, &b| a.max(b));
        let interarrival_bound = percentile(&interarrivals, 0.95).max(1.0) * 2.0;
        let runtime_bound = percentile(&runtimes, 0.95).max(1.0) * 2.0;

        let mut pow2_counts: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        for job in jobs {
            if job.size.is_power_of_two() {
                *pow2_counts.entry(job.size).or_insert(0) += 1;
            }
        }
        let total = jobs.len().max(1);
        let power_of_two_spectrum = pow2_counts
            .into_iter()
            .map(|(size, count)| (size, count as f64 / total as f64))
            .collect();

        TraceAnalysis {
            interarrival: Histogram::new(&interarrivals, 20, interarrival_bound),
            sizes: Histogram::new(&sizes, 20, max_size + 1.0),
            runtimes: Histogram::new(&runtimes, 20, runtime_bound),
            power_of_two_spectrum,
            offered_load: offered_load(jobs, windows.max(1)),
        }
    }

    /// A scalar dissimilarity between this trace's distributions and
    /// another's: the mean total-variation distance of the three histograms
    /// (0 = identical bucket frequencies, 1 = disjoint).
    pub fn distance(&self, other: &TraceAnalysis) -> f64 {
        let tv = |a: &Histogram, b: &Histogram| -> f64 {
            let fa = a.frequencies();
            let fb = b.frequencies();
            let n = fa.len().min(fb.len());
            0.5 * fa
                .iter()
                .take(n)
                .zip(fb.iter().take(n))
                .map(|(x, y)| (x - y).abs())
                .sum::<f64>()
        };
        (tv(&self.interarrival, &other.interarrival)
            + tv(&self.sizes, &other.sizes)
            + tv(&self.runtimes, &other.runtimes))
            / 3.0
    }
}

/// Offered load per window: Σ (size · runtime) of the jobs arriving in each
/// window, divided by the window length. Expressed in processors (i.e. the
/// average number of processors the arriving work would keep busy if served
/// immediately).
fn offered_load(jobs: &[Job], windows: usize) -> Vec<(f64, f64)> {
    let span = jobs.last().map(|j| j.arrival).unwrap_or(0.0).max(1e-9);
    let width = span / windows as f64;
    let mut load = vec![0.0f64; windows];
    for job in jobs {
        let idx = ((job.arrival / width) as usize).min(windows - 1);
        load[idx] += job.size as f64 * job.runtime;
    }
    load.into_iter()
        .enumerate()
        .map(|(i, work)| (i as f64 * width, work / width))
        .collect()
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by sorting. Returns 0.0 for an
/// empty sample.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::ParagonTraceModel;

    #[test]
    fn histogram_counts_and_overflow() {
        let h = Histogram::new(&[0.5, 1.5, 2.5, 9.0, 100.0], 4, 8.0);
        assert_eq!(h.counts.len(), 5);
        assert_eq!(h.total, 5);
        assert_eq!(h.counts[0], 2); // 0.5 and 1.5 fall in [0, 2)
        assert_eq!(h.counts[1], 1); // 2.5 in [2, 4)
        assert_eq!(*h.counts.last().unwrap(), 2); // 9.0 and 100.0 overflow
        assert!((h.overflow_fraction() - 0.4).abs() < 1e-12);
        let freqs = h.frequencies();
        assert!((freqs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_bucket_histogram_panics() {
        Histogram::new(&[1.0], 0, 1.0);
    }

    #[test]
    fn percentile_of_known_sample() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 0.5), 3.0);
        assert_eq!(percentile(&samples, 1.0), 5.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn analysis_of_a_synthetic_trace_matches_its_own_statistics() {
        let trace = ParagonTraceModel::scaled(800).generate(42);
        let analysis = TraceAnalysis::of(&trace, 10);
        assert_eq!(analysis.offered_load.len(), 10);
        // Power-of-two sizes dominate the spectrum (the paper's observation).
        let pow2_total: f64 = analysis.power_of_two_spectrum.iter().map(|(_, f)| f).sum();
        assert!(
            pow2_total > 0.5,
            "power-of-two sizes should dominate, got {pow2_total}"
        );
        // Offered load is non-negative everywhere and positive somewhere.
        assert!(analysis.offered_load.iter().all(|&(_, l)| l >= 0.0));
        assert!(analysis.offered_load.iter().any(|&(_, l)| l > 0.0));
    }

    #[test]
    fn identical_traces_have_zero_distance_and_different_seeds_small_distance() {
        let a = TraceAnalysis::of(&ParagonTraceModel::scaled(500).generate(1), 8);
        let b = TraceAnalysis::of(&ParagonTraceModel::scaled(500).generate(1), 8);
        assert_eq!(a.distance(&b), 0.0);
        let c = TraceAnalysis::of(&ParagonTraceModel::scaled(500).generate(2), 8);
        let d = a.distance(&c);
        assert!(d > 0.0, "different realisations differ slightly");
        assert!(
            d < 0.5,
            "two draws from the same model should stay distributionally close, got {d}"
        );
    }

    #[test]
    fn load_factor_scales_offered_load() {
        let trace = ParagonTraceModel::scaled(300).generate(9);
        let contracted = trace.with_load_factor(0.5);
        let base = TraceAnalysis::of(&trace, 5);
        let heavy = TraceAnalysis::of(&contracted, 5);
        let mean = |a: &TraceAnalysis| {
            a.offered_load.iter().map(|&(_, l)| l).sum::<f64>() / a.offered_load.len() as f64
        };
        // Halving arrival times doubles the offered load (same work over half
        // the span).
        let ratio = mean(&heavy) / mean(&base);
        assert!(
            (ratio - 2.0).abs() < 0.2,
            "contracting arrivals by 0.5 should about double offered load, ratio {ratio}"
        );
    }
}
