//! Per-job communication patterns (Section 3.2, Figure 5).
//!
//! A job's processors are numbered by *rank* `0..p` in the order the
//! allocator granted them; a pattern describes which ranks exchange messages.
//! Patterns are consumed in two forms:
//!
//! * a **traffic matrix** ([`CommPattern::traffic`]) — the long-run fraction
//!   of the job's messages on each ordered rank pair, used by the fluid
//!   contention model;
//! * an **explicit message list** ([`CommPattern::iteration_messages`]) — the
//!   messages of one pattern iteration in order, used by the flit-level and
//!   message-level simulators. Iterations are repeated until a job's message
//!   quota is met, exactly as in the paper.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One entry of a job's traffic matrix: ranks `src → dst` carry `weight`
/// fraction of the job's messages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficEntry {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Fraction of the job's messages on this pair (entries sum to 1).
    pub weight: f64,
}

/// The communication patterns used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommPattern {
    /// Every processor sends to every other processor of the job.
    AllToAll,
    /// The n-body pattern: `⌊p/2⌋` ring subphases (each processor to its ring
    /// successor) followed by one chordal subphase (each processor to the
    /// processor halfway across the ring). For even `p` the chordal pairing
    /// is mutual — ranks `i` and `i + p/2` are each other's partner — so the
    /// chordal subphase exchanges one message per pair, not one per rank.
    NBody,
    /// Each message goes between a uniformly random pair of the job's
    /// processors.
    Random,
    /// Ring communication only (used in the CPlant test suite of Figure 1).
    Ring,
    /// All-pairs ping-pong: a message in each direction for every pair.
    AllPairsPingPong,
    /// The CPlant communication test suite of Leung et al.: all-to-all
    /// broadcast, all-pairs ping-pong and ring, in equal iteration counts.
    TestSuite,
    /// Five-point stencil on a near-square virtual grid of ranks: each rank
    /// exchanges with its up/down/left/right virtual neighbours (the halo
    /// exchange of structured-grid solvers; extension beyond the paper).
    Stencil2D,
    /// Butterfly / hypercube exchange: in dimension `d`, rank `i` sends to
    /// `i XOR 2^d` (the pattern of FFTs and recursive-doubling collectives;
    /// extension beyond the paper).
    Butterfly,
    /// Binomial-tree broadcast from rank 0: in round `k`, every rank below
    /// `2^k` forwards to its partner `2^k` above it (extension beyond the
    /// paper).
    BroadcastTree,
}

impl CommPattern {
    /// The three patterns of the paper's trace-driven experiments
    /// (Figures 7 and 8).
    pub fn paper_patterns() -> [CommPattern; 3] {
        [
            CommPattern::AllToAll,
            CommPattern::NBody,
            CommPattern::Random,
        ]
    }

    /// Every pattern implemented.
    pub fn all() -> [CommPattern; 9] {
        [
            CommPattern::AllToAll,
            CommPattern::NBody,
            CommPattern::Random,
            CommPattern::Ring,
            CommPattern::AllPairsPingPong,
            CommPattern::TestSuite,
            CommPattern::Stencil2D,
            CommPattern::Butterfly,
            CommPattern::BroadcastTree,
        ]
    }

    /// The extension patterns not evaluated in the paper, used by the
    /// pattern-sensitivity benches.
    pub fn extension_patterns() -> [CommPattern; 3] {
        [
            CommPattern::Stencil2D,
            CommPattern::Butterfly,
            CommPattern::BroadcastTree,
        ]
    }

    /// Side lengths `(columns, rows)` of the near-square virtual grid the
    /// stencil pattern arranges `p` ranks into (row-major, last row possibly
    /// ragged).
    pub fn stencil_grid(p: usize) -> (usize, usize) {
        let cols = (p as f64).sqrt().ceil() as usize;
        let cols = cols.max(1);
        let rows = p.div_ceil(cols);
        (cols, rows)
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CommPattern::AllToAll => "all-to-all",
            CommPattern::NBody => "n-body",
            CommPattern::Random => "random",
            CommPattern::Ring => "ring",
            CommPattern::AllPairsPingPong => "ping-pong",
            CommPattern::TestSuite => "test-suite",
            CommPattern::Stencil2D => "stencil",
            CommPattern::Butterfly => "butterfly",
            CommPattern::BroadcastTree => "broadcast-tree",
        }
    }

    /// Parses a pattern name (used by the figure binaries' CLIs).
    pub fn parse(name: &str) -> Option<CommPattern> {
        Self::all()
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(name.trim()))
    }

    /// Number of messages sent in one iteration of the pattern on `p`
    /// processors. Single-processor jobs do not communicate.
    pub fn messages_per_iteration(&self, p: usize) -> u64 {
        if p < 2 {
            return 0;
        }
        let p64 = p as u64;
        match self {
            CommPattern::AllToAll | CommPattern::AllPairsPingPong => p64 * (p64 - 1),
            // ⌊p/2⌋ ring subphases of p messages plus the chordal subphase
            // (p messages for odd p, p/2 mutual-pair messages for even p):
            // both cases collapse to p(p+1)/2.
            CommPattern::NBody => p64 * (p64 + 1) / 2,
            CommPattern::Random => 1,
            CommPattern::Ring => p64,
            CommPattern::TestSuite => {
                CommPattern::AllToAll.messages_per_iteration(p)
                    + CommPattern::AllPairsPingPong.messages_per_iteration(p)
                    + CommPattern::Ring.messages_per_iteration(p)
            }
            CommPattern::Stencil2D => stencil_messages(p).len() as u64,
            CommPattern::Butterfly => butterfly_messages(p).len() as u64,
            CommPattern::BroadcastTree => broadcast_tree_messages(p).len() as u64,
        }
    }

    /// The messages (ordered `(src_rank, dst_rank)` pairs) of one iteration.
    ///
    /// The random pattern draws a single random pair per iteration using
    /// `rng`; all other patterns are deterministic and ignore it.
    pub fn iteration_messages<R: Rng + ?Sized>(
        &self,
        p: usize,
        rng: &mut R,
    ) -> Vec<(usize, usize)> {
        if p < 2 {
            return Vec::new();
        }
        match self {
            CommPattern::AllToAll => {
                let mut msgs = Vec::with_capacity(p * (p - 1));
                for i in 0..p {
                    for j in 0..p {
                        if i != j {
                            msgs.push((i, j));
                        }
                    }
                }
                msgs
            }
            CommPattern::NBody => {
                // For even p the chordal pairing is mutual (i ↔ i + p/2), so
                // only ranks below p/2 initiate a chordal message.
                let chord_senders = if p.is_multiple_of(2) { p / 2 } else { p };
                let mut msgs = Vec::with_capacity((p / 2) * p + chord_senders);
                for _phase in 0..p / 2 {
                    for i in 0..p {
                        msgs.push((i, (i + 1) % p));
                    }
                }
                for i in 0..chord_senders {
                    msgs.push((i, (i + p / 2) % p));
                }
                msgs
            }
            CommPattern::Random => {
                let src = rng.gen_range(0..p);
                let mut dst = rng.gen_range(0..p - 1);
                if dst >= src {
                    dst += 1;
                }
                vec![(src, dst)]
            }
            CommPattern::Ring => (0..p).map(|i| (i, (i + 1) % p)).collect(),
            CommPattern::Stencil2D => stencil_messages(p),
            CommPattern::Butterfly => butterfly_messages(p),
            CommPattern::BroadcastTree => broadcast_tree_messages(p),
            CommPattern::AllPairsPingPong => {
                let mut msgs = Vec::with_capacity(p * (p - 1));
                for i in 0..p {
                    for j in i + 1..p {
                        msgs.push((i, j));
                        msgs.push((j, i));
                    }
                }
                msgs
            }
            CommPattern::TestSuite => {
                let mut msgs = CommPattern::AllToAll.iteration_messages(p, rng);
                msgs.extend(CommPattern::AllPairsPingPong.iteration_messages(p, rng));
                msgs.extend(CommPattern::Ring.iteration_messages(p, rng));
                msgs
            }
        }
    }

    /// The job's traffic matrix: the fraction of its `quota` messages sent on
    /// each ordered rank pair. Deterministic patterns ignore `quota` and
    /// `rng`; the random pattern samples an empirical matrix (multinomial
    /// over all ordered pairs) so that different jobs see different — and for
    /// small quotas, lumpy — realisations, mirroring its behaviour in a
    /// message-level simulation.
    ///
    /// Weights always sum to 1 (up to floating-point rounding); the result is
    /// empty for single-processor jobs.
    pub fn traffic<R: Rng + ?Sized>(&self, p: usize, quota: u64, rng: &mut R) -> Vec<TrafficEntry> {
        if p < 2 {
            return Vec::new();
        }
        match self {
            CommPattern::AllToAll | CommPattern::AllPairsPingPong => {
                let w = 1.0 / (p * (p - 1)) as f64;
                let mut entries = Vec::with_capacity(p * (p - 1));
                for i in 0..p {
                    for j in 0..p {
                        if i != j {
                            entries.push(TrafficEntry {
                                src: i,
                                dst: j,
                                weight: w,
                            });
                        }
                    }
                }
                entries
            }
            CommPattern::NBody => {
                let total = self.messages_per_iteration(p) as f64;
                let ring_w = (p / 2) as f64 / total;
                let chord_w = 1.0 / total;
                let chord_senders = if p.is_multiple_of(2) { p / 2 } else { p };
                let mut entries = Vec::new();
                for i in 0..p {
                    entries.push(TrafficEntry {
                        src: i,
                        dst: (i + 1) % p,
                        weight: ring_w,
                    });
                    if i < chord_senders {
                        // For small p the chordal partner can coincide with
                        // the ring successor (p ∈ {2, 3}); merge_entries sums
                        // the duplicate pair below.
                        entries.push(TrafficEntry {
                            src: i,
                            dst: (i + p / 2) % p,
                            weight: chord_w,
                        });
                    }
                }
                merge_entries(entries)
            }
            CommPattern::Random => {
                // Empirical multinomial over ordered pairs. Cap the number of
                // draws: beyond ~10^4 the empirical matrix is statistically
                // indistinguishable from uniform for the job sizes in the
                // trace.
                let pairs = p * (p - 1);
                let draws = quota.clamp(1, 10_000) as usize;
                let mut counts = vec![0u32; pairs];
                for _ in 0..draws {
                    counts[rng.gen_range(0..pairs)] += 1;
                }
                let mut entries = Vec::with_capacity(pairs);
                let mut idx = 0usize;
                for i in 0..p {
                    for j in 0..p {
                        if i != j {
                            if counts[idx] > 0 {
                                entries.push(TrafficEntry {
                                    src: i,
                                    dst: j,
                                    weight: counts[idx] as f64 / draws as f64,
                                });
                            }
                            idx += 1;
                        }
                    }
                }
                entries
            }
            CommPattern::Ring => (0..p)
                .map(|i| TrafficEntry {
                    src: i,
                    dst: (i + 1) % p,
                    weight: 1.0 / p as f64,
                })
                .collect(),
            CommPattern::TestSuite => {
                // Combine the three sub-patterns weighted by their share of
                // one test-suite iteration.
                let total = self.messages_per_iteration(p) as f64;
                let mut entries: Vec<TrafficEntry> = Vec::new();
                for sub in [
                    CommPattern::AllToAll,
                    CommPattern::AllPairsPingPong,
                    CommPattern::Ring,
                ] {
                    let share = sub.messages_per_iteration(p) as f64 / total;
                    for e in sub.traffic(p, quota, rng) {
                        entries.push(TrafficEntry {
                            weight: e.weight * share,
                            ..e
                        });
                    }
                }
                merge_entries(entries)
            }
            CommPattern::Stencil2D | CommPattern::Butterfly | CommPattern::BroadcastTree => {
                // Deterministic extension patterns: every message of one
                // iteration carries an equal share of the job's traffic.
                let msgs = match self {
                    CommPattern::Stencil2D => stencil_messages(p),
                    CommPattern::Butterfly => butterfly_messages(p),
                    _ => broadcast_tree_messages(p),
                };
                let w = 1.0 / msgs.len() as f64;
                merge_entries(
                    msgs.into_iter()
                        .map(|(src, dst)| TrafficEntry {
                            src,
                            dst,
                            weight: w,
                        })
                        .collect(),
                )
            }
        }
    }
}

/// Messages of one five-point-stencil halo exchange: ranks are laid out
/// row-major on the near-square grid of [`CommPattern::stencil_grid`] and
/// each rank sends to every existing up/down/left/right neighbour.
fn stencil_messages(p: usize) -> Vec<(usize, usize)> {
    let (cols, _rows) = CommPattern::stencil_grid(p);
    let mut msgs = Vec::with_capacity(4 * p);
    for rank in 0..p {
        let (col, row) = (rank % cols, rank / cols);
        let mut push_if_valid = |c: isize, r: isize| {
            if c < 0 || r < 0 {
                return;
            }
            let (c, r) = (c as usize, r as usize);
            if c >= cols {
                return;
            }
            let neighbour = r * cols + c;
            if neighbour < p && neighbour != rank {
                msgs.push((rank, neighbour));
            }
        };
        push_if_valid(col as isize - 1, row as isize);
        push_if_valid(col as isize + 1, row as isize);
        push_if_valid(col as isize, row as isize - 1);
        push_if_valid(col as isize, row as isize + 1);
    }
    msgs
}

/// Messages of one butterfly (recursive-doubling) exchange: for every
/// dimension `d`, rank `i` sends to `i XOR 2^d` when that partner exists.
fn butterfly_messages(p: usize) -> Vec<(usize, usize)> {
    let dims = usize::BITS - (p - 1).leading_zeros();
    let mut msgs = Vec::new();
    for d in 0..dims {
        let bit = 1usize << d;
        for i in 0..p {
            let partner = i ^ bit;
            if partner < p {
                msgs.push((i, partner));
            }
        }
    }
    msgs
}

/// Messages of one binomial-tree broadcast from rank 0: in round `k`, every
/// rank below `2^k` forwards to the rank `2^k` above it (if it exists).
fn broadcast_tree_messages(p: usize) -> Vec<(usize, usize)> {
    let mut msgs = Vec::with_capacity(p.saturating_sub(1));
    let mut span = 1usize;
    while span < p {
        for i in 0..span {
            let dst = i + span;
            if dst < p {
                msgs.push((i, dst));
            }
        }
        span *= 2;
    }
    msgs
}

impl fmt::Display for CommPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Merges duplicate (src, dst) entries by summing their weights.
fn merge_entries(entries: Vec<TrafficEntry>) -> Vec<TrafficEntry> {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for e in entries {
        *map.entry((e.src, e.dst)).or_insert(0.0) += e.weight;
    }
    map.into_iter()
        .map(|((src, dst), weight)| TrafficEntry { src, dst, weight })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn assert_valid_traffic(pattern: CommPattern, p: usize) {
        let entries = pattern.traffic(p, 5000, &mut rng());
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "{pattern} weights must sum to 1, got {total}"
        );
        for e in &entries {
            assert!(e.src < p && e.dst < p && e.src != e.dst);
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn traffic_matrices_are_normalised_for_all_patterns() {
        for pattern in CommPattern::all() {
            for p in [2usize, 3, 8, 15, 30] {
                assert_valid_traffic(pattern, p);
            }
        }
    }

    #[test]
    fn single_processor_jobs_do_not_communicate() {
        for pattern in CommPattern::all() {
            assert!(pattern.traffic(1, 100, &mut rng()).is_empty());
            assert!(pattern.iteration_messages(1, &mut rng()).is_empty());
            assert_eq!(pattern.messages_per_iteration(1), 0);
        }
    }

    #[test]
    fn nbody_iteration_structure_matches_figure_5() {
        // 15 processors: 7 ring subphases of 15 messages, then 15 chordal
        // messages (Figure 5 of the paper).
        let msgs = CommPattern::NBody.iteration_messages(15, &mut rng());
        assert_eq!(msgs.len(), 15 * 7 + 15);
        assert_eq!(CommPattern::NBody.messages_per_iteration(15), 120);
        // First subphase: every processor to its ring successor.
        for (i, &msg) in msgs.iter().enumerate().take(15) {
            assert_eq!(msg, (i, (i + 1) % 15));
        }
        // Chordal subphase: processor i to i + 7 (mod 15).
        for i in 0..15 {
            assert_eq!(msgs[7 * 15 + i], (i, (i + 7) % 15));
        }
    }

    #[test]
    fn nbody_even_p_exchanges_each_chordal_pair_once() {
        // Regression: the closed form used to claim p·⌊p/2⌋ + p (12 for
        // p = 4) while the mutual chordal pairing of even p only yields
        // p(p+1)/2 distinct messages (10 for p = 4).
        let msgs = CommPattern::NBody.iteration_messages(4, &mut rng());
        assert_eq!(msgs.len(), 10);
        assert_eq!(CommPattern::NBody.messages_per_iteration(4), 10);
        // Chordal subphase: only ranks below p/2 initiate; their partners
        // answered in the mutual pairing already.
        assert_eq!(&msgs[8..], &[(0, 2), (1, 3)]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(512))]

        fn messages_per_iteration_matches_iteration_messages(
            p in 1usize..=257,
            idx in 0usize..9,
        ) {
            let pattern = CommPattern::all()[idx];
            let msgs = pattern.iteration_messages(p, &mut rng());
            proptest::prop_assert_eq!(
                pattern.messages_per_iteration(p),
                msgs.len() as u64,
                "{} disagrees at p = {}",
                pattern,
                p
            );
        }
    }

    #[test]
    fn all_to_all_counts() {
        let msgs = CommPattern::AllToAll.iteration_messages(8, &mut rng());
        assert_eq!(msgs.len(), 8 * 7);
        let unique: std::collections::HashSet<_> = msgs.iter().collect();
        assert_eq!(unique.len(), 56, "all ordered pairs, no repeats");
    }

    #[test]
    fn ping_pong_has_both_directions() {
        let msgs = CommPattern::AllPairsPingPong.iteration_messages(4, &mut rng());
        assert_eq!(msgs.len(), 12);
        assert!(msgs.contains(&(0, 3)) && msgs.contains(&(3, 0)));
    }

    #[test]
    fn random_traffic_varies_by_rng_but_is_seed_deterministic() {
        let a = CommPattern::Random.traffic(8, 200, &mut StdRng::seed_from_u64(1));
        let b = CommPattern::Random.traffic(8, 200, &mut StdRng::seed_from_u64(1));
        let c = CommPattern::Random.traffic(8, 200, &mut StdRng::seed_from_u64(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_messages_are_valid_pairs() {
        let mut r = rng();
        for _ in 0..200 {
            let msgs = CommPattern::Random.iteration_messages(5, &mut r);
            assert_eq!(msgs.len(), 1);
            let (s, d) = msgs[0];
            assert!(s < 5 && d < 5 && s != d);
        }
    }

    #[test]
    fn nbody_p2_merges_ring_and_chord() {
        let entries = CommPattern::NBody.traffic(2, 100, &mut rng());
        // Only two ordered pairs exist; weights still sum to one.
        assert_eq!(entries.len(), 2);
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn test_suite_combines_three_patterns() {
        let p = 6;
        let expected = 2 * 6 * 5 + 6;
        assert_eq!(
            CommPattern::TestSuite.messages_per_iteration(p),
            expected as u64
        );
        let msgs = CommPattern::TestSuite.iteration_messages(p, &mut rng());
        assert_eq!(msgs.len(), expected);
    }

    #[test]
    fn names_parse_back() {
        for pattern in CommPattern::all() {
            assert_eq!(CommPattern::parse(pattern.name()), Some(pattern));
        }
        assert_eq!(CommPattern::parse("nope"), None);
    }

    #[test]
    fn stencil_grid_is_near_square() {
        assert_eq!(CommPattern::stencil_grid(1), (1, 1));
        assert_eq!(CommPattern::stencil_grid(4), (2, 2));
        assert_eq!(CommPattern::stencil_grid(12), (4, 3));
        assert_eq!(CommPattern::stencil_grid(16), (4, 4));
        assert_eq!(CommPattern::stencil_grid(30), (6, 5));
    }

    #[test]
    fn stencil_messages_match_a_full_grid() {
        // 4x4 grid: interior/edge/corner ranks send 4/3/2 messages; total
        // directed halo edges = 2 * (2 * 4 * 3) = 48.
        let msgs = CommPattern::Stencil2D.iteration_messages(16, &mut rng());
        assert_eq!(msgs.len(), 48);
        assert_eq!(CommPattern::Stencil2D.messages_per_iteration(16), 48);
        // Every message is between ranks whose virtual-grid distance is 1.
        for (s, d) in msgs {
            let (cols, _) = CommPattern::stencil_grid(16);
            let (sc, sr) = (s % cols, s / cols);
            let (dc, dr) = (d % cols, d / cols);
            assert_eq!(sc.abs_diff(dc) + sr.abs_diff(dr), 1, "{s} -> {d}");
        }
    }

    #[test]
    fn stencil_handles_ragged_last_rows() {
        // 7 ranks on a 3-wide grid: ranks 6.. are missing; no message may
        // reference a rank >= 7.
        let msgs = CommPattern::Stencil2D.iteration_messages(7, &mut rng());
        assert!(!msgs.is_empty());
        assert!(msgs.iter().all(|&(s, d)| s < 7 && d < 7 && s != d));
        // Symmetry: if (a, b) is present so is (b, a).
        for &(s, d) in &msgs {
            assert!(msgs.contains(&(d, s)), "stencil halo must be symmetric");
        }
    }

    #[test]
    fn butterfly_covers_every_dimension() {
        // p = 8: 3 dimensions, 8 messages each.
        let msgs = CommPattern::Butterfly.iteration_messages(8, &mut rng());
        assert_eq!(msgs.len(), 24);
        assert_eq!(CommPattern::Butterfly.messages_per_iteration(8), 24);
        // Every message connects ranks differing in exactly one bit.
        for (s, d) in msgs {
            assert_eq!((s ^ d).count_ones(), 1);
        }
        // Non-power-of-two sizes drop the partners that do not exist.
        let msgs5 = CommPattern::Butterfly.iteration_messages(5, &mut rng());
        assert!(msgs5.iter().all(|&(s, d)| s < 5 && d < 5));
        assert!(!msgs5.is_empty());
    }

    #[test]
    fn broadcast_tree_reaches_every_rank_once() {
        for p in [2usize, 3, 8, 15, 16, 30] {
            let msgs = CommPattern::BroadcastTree.iteration_messages(p, &mut rng());
            assert_eq!(msgs.len(), p - 1, "p = {p}");
            // Every rank other than 0 receives exactly one message, and only
            // from a lower-numbered rank (the binomial-tree invariant).
            let mut received = vec![0usize; p];
            for (s, d) in msgs {
                assert!(s < d, "binomial tree sends upward in rank: {s} -> {d}");
                received[d] += 1;
            }
            assert_eq!(received[0], 0);
            assert!(received[1..].iter().all(|&r| r == 1));
        }
    }

    #[test]
    fn extension_patterns_have_normalised_traffic() {
        for pattern in CommPattern::extension_patterns() {
            for p in [2usize, 5, 16, 31] {
                let entries = pattern.traffic(p, 1000, &mut rng());
                let total: f64 = entries.iter().map(|e| e.weight).sum();
                assert!((total - 1.0).abs() < 1e-9, "{pattern} p={p}");
            }
        }
    }
}
