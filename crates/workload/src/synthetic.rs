//! Synthetic SDSC-Paragon-like trace generation.
//!
//! The paper's trace (all jobs submitted to the 352-node NQS partition of the
//! SDSC Intel Paragon in the last three months of 1996) is not redistributed
//! with this repository, so experiments default to a *synthetic* trace drawn
//! from distributions calibrated to the summary statistics the paper reports
//! (Section 3.1):
//!
//! | statistic              | paper value | model                              |
//! |-------------------------|-------------|------------------------------------|
//! | number of jobs          | 6087        | fixed                              |
//! | mean interarrival       | 1301 s      | 2-phase hyperexponential, CV 3.7   |
//! | mean size               | 14.5        | lognormal snapped to powers of two |
//! | size CV                 | 1.5         | (see below)                        |
//! | mean runtime            | 3.04 h      | lognormal, CV 1.13                 |
//!
//! Sizes are drawn from a lognormal with the target mean and CV, rounded to
//! the nearest power of two with high probability (the paper notes the size
//! distribution "heavily favors" powers of two) and clamped to the machine
//! size. The real trace can be used instead via [`crate::swf`].

use crate::distributions::{Hyperexponential, LogNormal};
use crate::job::Job;
use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic Paragon trace model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParagonTraceModel {
    /// Number of jobs to generate (paper: 6087).
    pub num_jobs: usize,
    /// Mean interarrival time in seconds (paper: 1301).
    pub mean_interarrival: f64,
    /// Interarrival coefficient of variation (paper: 3.7).
    pub cv_interarrival: f64,
    /// Mean job size in processors (paper: 14.5).
    pub mean_size: f64,
    /// Size coefficient of variation (paper: 1.5).
    pub cv_size: f64,
    /// Probability that a sampled size is snapped to the nearest power of two.
    pub power_of_two_bias: f64,
    /// Mean runtime in seconds (paper: 3.04 h).
    pub mean_runtime: f64,
    /// Runtime coefficient of variation (paper: 1.13).
    pub cv_runtime: f64,
    /// Largest size the machine accepts (paper trace machine: 352 nodes; the
    /// trace contains three 320-node jobs).
    pub max_size: usize,
}

impl Default for ParagonTraceModel {
    fn default() -> Self {
        ParagonTraceModel {
            num_jobs: 6087,
            mean_interarrival: 1301.0,
            cv_interarrival: 3.7,
            mean_size: 14.5,
            cv_size: 1.5,
            power_of_two_bias: 0.75,
            mean_runtime: 3.04 * 3600.0,
            cv_runtime: 1.13,
            max_size: 352,
        }
    }
}

impl ParagonTraceModel {
    /// A scaled-down model (fewer jobs) for quick experiments, tests and CI
    /// benchmarks; distributional parameters are unchanged.
    pub fn scaled(num_jobs: usize) -> Self {
        ParagonTraceModel {
            num_jobs,
            ..Default::default()
        }
    }

    /// Generates the trace deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let interarrival = Hyperexponential::new(self.mean_interarrival, self.cv_interarrival);
        let runtime = LogNormal::new(self.mean_runtime, self.cv_runtime);
        // The size lognormal is calibrated to hit the target mean/CV *after*
        // the power-of-two snapping and clamping, which slightly compress the
        // tail; the 0.93 factor was fitted empirically (see tests).
        let size_dist = LogNormal::new(self.mean_size * 0.93, self.cv_size);

        let mut jobs = Vec::with_capacity(self.num_jobs);
        let mut clock = 0.0;
        for id in 0..self.num_jobs {
            clock += interarrival.sample(&mut rng);
            let size = self.sample_size(&size_dist, &mut rng);
            let run = runtime.sample(&mut rng).max(1.0);
            jobs.push(Job::new(id as u64, clock, size, run));
        }
        Trace::new(jobs)
    }

    fn sample_size(&self, dist: &LogNormal, rng: &mut StdRng) -> usize {
        let raw = dist.sample(rng).max(1.0);
        let mut size = if rng.gen::<f64>() < self.power_of_two_bias {
            nearest_power_of_two(raw)
        } else {
            raw.round() as usize
        };
        size = size.clamp(1, self.max_size);
        size
    }
}

/// Rounds to the nearest power of two in log space (so 3 → 4, 5 → 4, 6 → 8).
fn nearest_power_of_two(x: f64) -> usize {
    let exp = x.log2().round().max(0.0) as u32;
    1usize << exp.min(63)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_power_of_two_rounds_in_log_space() {
        assert_eq!(nearest_power_of_two(1.0), 1);
        assert_eq!(nearest_power_of_two(3.0), 4);
        assert_eq!(nearest_power_of_two(5.0), 4);
        assert_eq!(nearest_power_of_two(6.0), 8);
        assert_eq!(nearest_power_of_two(300.0), 256);
    }

    #[test]
    fn generated_trace_matches_paper_summary_statistics() {
        let trace = ParagonTraceModel::default().generate(1);
        let s = trace.summary();
        assert_eq!(s.jobs, 6087);
        assert!(
            (s.mean_interarrival - 1301.0).abs() / 1301.0 < 0.10,
            "mean interarrival {}",
            s.mean_interarrival
        );
        assert!(
            (s.cv_interarrival - 3.7).abs() / 3.7 < 0.20,
            "cv interarrival {}",
            s.cv_interarrival
        );
        assert!(
            (s.mean_size - 14.5).abs() / 14.5 < 0.15,
            "mean size {}",
            s.mean_size
        );
        assert!(
            (s.cv_size - 1.5).abs() / 1.5 < 0.30,
            "cv size {}",
            s.cv_size
        );
        assert!(
            (s.mean_runtime - 10944.0).abs() / 10944.0 < 0.10,
            "mean runtime {}",
            s.mean_runtime
        );
        assert!(
            (s.cv_runtime - 1.13).abs() / 1.13 < 0.15,
            "cv runtime {}",
            s.cv_runtime
        );
        assert!(
            s.power_of_two_fraction > 0.6,
            "sizes should favour powers of two, got {}",
            s.power_of_two_fraction
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let model = ParagonTraceModel::scaled(200);
        assert_eq!(model.generate(7), model.generate(7));
        assert_ne!(model.generate(7), model.generate(8));
    }

    #[test]
    fn sizes_respect_machine_bound() {
        let trace = ParagonTraceModel::default().generate(3);
        assert!(trace.jobs().iter().all(|j| j.size >= 1 && j.size <= 352));
    }

    #[test]
    fn scaled_model_generates_requested_count() {
        assert_eq!(ParagonTraceModel::scaled(50).generate(0).len(), 50);
    }
}
