//! Samplers for the distributions the synthetic trace generator needs.
//!
//! Implemented on top of `rand` rather than pulling an extra dependency: the
//! generator only needs an exponential, a two-phase hyperexponential (to hit
//! a coefficient of variation above one for interarrival times) and a
//! lognormal (runtimes and sizes).

use rand::Rng;

/// Exponential distribution with the given mean.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential sampler.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn new(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Exponential { mean }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; guard against ln(0).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        -self.mean * u.ln()
    }
}

/// Two-phase hyperexponential distribution with balanced means, parameterised
/// by mean and coefficient of variation (CV must be >= 1).
///
/// With probability `p` the sample is exponential with mean `m1`, otherwise
/// exponential with mean `m2`; the balanced-means fit sets
/// `p = (1 + sqrt((cv² − 1)/(cv² + 1))) / 2`, `m1 = mean/(2p)` and
/// `m2 = mean/(2(1 − p))`.
#[derive(Debug, Clone, Copy)]
pub struct Hyperexponential {
    p: f64,
    e1: Exponential,
    e2: Exponential,
}

impl Hyperexponential {
    /// Creates a hyperexponential sampler with the given mean and CV.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `cv >= 1`.
    pub fn new(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(cv >= 1.0, "hyperexponential requires cv >= 1");
        let cv2 = cv * cv;
        let p = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        Hyperexponential {
            p,
            e1: Exponential::new(mean / (2.0 * p)),
            e2: Exponential::new(mean / (2.0 * (1.0 - p))),
        }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if rng.gen::<f64>() < self.p {
            self.e1.sample(rng)
        } else {
            self.e2.sample(rng)
        }
    }
}

/// Lognormal distribution parameterised by the desired mean and coefficient
/// of variation of the *resulting* (linear-scale) variable.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal sampler with the given linear-scale mean and CV.
    ///
    /// # Panics
    ///
    /// Panics unless both are strictly positive.
    pub fn new(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv > 0.0, "mean and cv must be positive");
        let sigma2 = (1.0 + cv * cv).ln();
        LogNormal {
            mu: mean.ln() - sigma2 / 2.0,
            sigma: sigma2.sqrt(),
        }
    }

    /// Draws one sample using the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Sample mean and coefficient of variation of a slice (used by tests and by
/// [`crate::trace::TraceSummary`]).
pub fn mean_and_cv(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return (0.0, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt() / mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn draw<F: Fn(&mut StdRng) -> f64>(n: usize, f: F) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(12345);
        (0..n).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn exponential_matches_mean_and_cv() {
        let e = Exponential::new(1301.0);
        let samples = draw(200_000, |rng| e.sample(rng));
        let (mean, cv) = mean_and_cv(&samples);
        assert!((mean - 1301.0).abs() / 1301.0 < 0.02, "mean {mean}");
        assert!((cv - 1.0).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn hyperexponential_matches_mean_and_cv() {
        let h = Hyperexponential::new(1301.0, 3.7);
        let samples = draw(400_000, |rng| h.sample(rng));
        let (mean, cv) = mean_and_cv(&samples);
        assert!((mean - 1301.0).abs() / 1301.0 < 0.05, "mean {mean}");
        assert!((cv - 3.7).abs() / 3.7 < 0.1, "cv {cv}");
    }

    #[test]
    fn lognormal_matches_mean_and_cv() {
        let l = LogNormal::new(10944.0, 1.13);
        let samples = draw(400_000, |rng| l.sample(rng));
        let (mean, cv) = mean_and_cv(&samples);
        assert!((mean - 10944.0).abs() / 10944.0 < 0.05, "mean {mean}");
        assert!((cv - 1.13).abs() / 1.13 < 0.1, "cv {cv}");
    }

    #[test]
    fn samples_are_positive() {
        let h = Hyperexponential::new(10.0, 2.0);
        let l = LogNormal::new(10.0, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(h.sample(&mut rng) > 0.0);
            assert!(l.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "cv >= 1")]
    fn hyperexponential_rejects_low_cv() {
        Hyperexponential::new(10.0, 0.5);
    }

    #[test]
    fn mean_and_cv_edge_cases() {
        assert_eq!(mean_and_cv(&[]), (0.0, 0.0));
        let (m, cv) = mean_and_cv(&[5.0, 5.0, 5.0]);
        assert_eq!(m, 5.0);
        assert_eq!(cv, 0.0);
    }
}
