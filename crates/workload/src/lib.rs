//! # commalloc-workload
//!
//! Workload models for the `commalloc` allocation-strategy simulator:
//! parallel-job traces and per-job communication patterns, reproducing
//! Section 3 of *Communication Patterns and Allocation Strategies* (Leung,
//! Bunde & Mache, 2004).
//!
//! The paper drives its simulations with the trace of all jobs submitted to
//! the 352-node NQS partition of the Intel Paragon at the San Diego
//! Supercomputer Center during the last three months of 1996. That trace is
//! summarised in the paper by its statistics (6087 jobs; mean interarrival
//! 1301 s with CV 3.7; mean size 14.5 with CV 1.5, biased towards powers of
//! two; mean runtime 3.04 h with CV 1.13). This crate provides:
//!
//! * [`job::Job`] and [`trace::Trace`] — the trace representation, including
//!   the paper's *load factor* transformation (contracting interarrival
//!   times) and the removal of jobs too large for the 16 × 16 machine.
//! * [`synthetic::ParagonTraceModel`] — a seeded generator reproducing the
//!   published summary statistics, used when the original SDSC trace file is
//!   not available (documented substitution, see DESIGN.md).
//! * [`swf`] — a parser for Standard Workload Format files so the real trace
//!   can be dropped in.
//! * [`patterns::CommPattern`] — the communication patterns of Section 3.2
//!   (all-to-all, n-body ring + chordal, random) plus the ring, all-pairs
//!   ping-pong and CPlant test-suite patterns used for Figure 1, and the
//!   stencil / butterfly / broadcast-tree extension patterns.
//! * [`distributions`] — the exponential / hyperexponential / lognormal
//!   samplers the synthetic generator is built from.
//! * [`analysis`] — histograms, the power-of-two size spectrum and the
//!   offered-load profile of a trace, used to validate the synthetic
//!   generator against the published statistics (and against a real SWF
//!   trace when one is available).
//!
//! # Example
//!
//! ```
//! use commalloc_workload::synthetic::ParagonTraceModel;
//! use commalloc_workload::patterns::CommPattern;
//!
//! let trace = ParagonTraceModel::default().generate(42);
//! assert_eq!(trace.len(), 6087);
//!
//! // The n-body pattern on 15 processors (paper Figure 5): seven ring
//! // subphases plus one chordal subphase per iteration.
//! assert_eq!(CommPattern::NBody.messages_per_iteration(15), 15 * 7 + 15);
//! ```

pub mod analysis;
pub mod distributions;
pub mod job;
pub mod patterns;
pub mod swf;
pub mod synthetic;
pub mod trace;

pub use analysis::TraceAnalysis;
pub use job::Job;
pub use patterns::{CommPattern, TrafficEntry};
pub use trace::{Trace, TraceSummary};
