//! Command-line parsing for the `commalloc` driver.
//!
//! The parser is hand-rolled (no external argument-parsing dependency) and
//! pure: it maps an argument vector to a [`Command`] value or a
//! [`ParseError`], which keeps every flag combination unit-testable.

use commalloc::prelude::*;
use commalloc::scheduler::SchedulerKind as Scheduler;
use std::fmt;

/// Errors produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not one of the known ones.
    UnknownCommand(String),
    /// A flag is not recognised by the chosen subcommand.
    UnknownFlag(String),
    /// A flag was given without its required value.
    MissingValue(String),
    /// A flag value could not be interpreted.
    InvalidValue { flag: String, value: String },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => write!(f, "missing subcommand; try `commalloc help`"),
            ParseError::UnknownCommand(c) => write!(f, "unknown subcommand {c:?}"),
            ParseError::UnknownFlag(flag) => write!(f, "unknown flag {flag:?}"),
            ParseError::MissingValue(flag) => write!(f, "flag {flag:?} needs a value"),
            ParseError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for flag {flag:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Options shared by the simulation-driving subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulateOptions {
    /// The machine.
    pub mesh: Mesh2D,
    /// Communication pattern.
    pub pattern: CommPattern,
    /// Allocation algorithm.
    pub allocator: AllocatorKind,
    /// Scheduling policy.
    pub scheduler: Scheduler,
    /// Load factor applied to the trace arrivals.
    pub load: f64,
    /// Number of synthetic jobs (6087 reproduces the full trace length).
    pub jobs: usize,
    /// RNG seed for trace generation and pattern realisation.
    pub seed: u64,
    /// Optional SWF file to replay instead of the synthetic trace.
    pub swf: Option<String>,
    /// Emit machine-readable JSON instead of the human-readable summary.
    pub json: bool,
}

impl Default for SimulateOptions {
    fn default() -> Self {
        SimulateOptions {
            mesh: Mesh2D::square_16x16(),
            pattern: CommPattern::AllToAll,
            allocator: AllocatorKind::HilbertBestFit,
            scheduler: Scheduler::Fcfs,
            load: 1.0,
            jobs: 400,
            seed: 1996,
            swf: None,
            json: false,
        }
    }
}

/// Options of the `sweep` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOptions {
    /// The machine.
    pub mesh: Mesh2D,
    /// Patterns to sweep (defaults to the paper's three).
    pub patterns: Vec<CommPattern>,
    /// Allocators to sweep (defaults to the paper's nine).
    pub allocators: Vec<AllocatorKind>,
    /// Load factors to sweep.
    pub loads: Vec<f64>,
    /// Number of synthetic jobs.
    pub jobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Emit JSON.
    pub json: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            mesh: Mesh2D::square_16x16(),
            patterns: CommPattern::paper_patterns().to_vec(),
            allocators: AllocatorKind::paper_set().to_vec(),
            loads: vec![1.0, 0.8, 0.6, 0.4, 0.2],
            jobs: 400,
            seed: 1996,
            json: false,
        }
    }
}

/// Options of the `curves` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvesOptions {
    /// The machine.
    pub mesh: Mesh2D,
    /// Curve to render; `None` renders all of them.
    pub curve: Option<CurveKind>,
    /// Window size for the locality statistics.
    pub window: usize,
}

impl Default for CurvesOptions {
    fn default() -> Self {
        CurvesOptions {
            mesh: Mesh2D::square_16x16(),
            curve: None,
            window: 16,
        }
    }
}

/// Options of the `trace` subcommand. Two modes share the name: the
/// offline mode (no `--addr`) analyses a workload trace; the online
/// mode (`--addr`) drains the daemon's flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceOptions {
    /// Number of synthetic jobs.
    pub jobs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional SWF file to analyse instead of the synthetic trace.
    pub swf: Option<String>,
    /// Emit JSON.
    pub json: bool,
    /// Address of a running daemon; selects the online mode.
    pub addr: Option<String>,
    /// Online output format: `ndjson` (one event per line) or `chrome`
    /// (a Chrome trace-event JSON array for `chrome://tracing`).
    pub format: String,
    /// Write the online output to this file instead of stdout.
    pub out: Option<String>,
    /// Drain at most this many events.
    pub limit: Option<usize>,
    /// Discard the drained events server-side.
    pub clear: bool,
    /// Toggle the daemon's recorder (`--set on|off`) instead of
    /// draining.
    pub set: Option<bool>,
    /// Keep polling and draining (NDJSON only) instead of a one-shot
    /// drain; implies `--clear` per poll so events stream exactly once.
    pub follow: bool,
    /// Seconds between polls in `--follow` mode.
    pub interval: f64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            jobs: 6087,
            seed: 1996,
            swf: None,
            json: false,
            addr: None,
            format: "ndjson".to_string(),
            out: None,
            limit: None,
            clear: false,
            set: None,
            follow: false,
            interval: 1.0,
        }
    }
}

/// Options of the `serve` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Address to listen on.
    pub addr: String,
    /// Size of the connection worker pool.
    pub workers: usize,
    /// Pre-registered machine: name (ignored when `machines` is given).
    pub machine: String,
    /// Pre-registered machine: mesh spec (`WxH` or `WxHxD`).
    pub mesh: String,
    /// Several pre-registered machines as `(name, mesh)` pairs
    /// (`--machines m0=16x16,m1=8x8`); overrides `machine`/`mesh`.
    pub machines: Vec<(String, String)>,
    /// Pre-registered machine: allocator (2-D) / curve (3-D) spec.
    pub allocator: Option<String>,
    /// Pre-registered machine: scheduling policy (fcfs, backfill,
    /// easy, conservative).
    pub scheduler: Option<String>,
    /// Cluster pool every pre-registered machine joins.
    pub pool: Option<String>,
    /// Initial routing policy of that pool (requires `pool`).
    pub router: Option<String>,
    /// Write-ahead journal directory; `None` runs memoryless. An
    /// existing journal is recovered on startup.
    pub journal: Option<String>,
    /// Fsync policy spec (`every`, `never`, or a batch size; requires
    /// `journal`).
    pub fsync: Option<String>,
    /// Records between snapshot compactions (requires `journal`).
    pub snapshot_every: Option<u64>,
    /// Start with the flight recorder capturing (it is off by default
    /// and can be toggled at runtime with `commalloc trace --set`).
    pub trace: bool,
    /// Start with the placement calibration plane recording (off by
    /// default; toggled at runtime via `set_trace`'s calibration rider).
    pub calibration: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:7411".to_string(),
            workers: 4,
            machine: "default".to_string(),
            mesh: "16x16".to_string(),
            machines: Vec::new(),
            allocator: None,
            scheduler: None,
            pool: None,
            router: None,
            journal: None,
            fsync: None,
            snapshot_every: None,
            trace: false,
            calibration: false,
        }
    }
}

/// Options of the `loadgen` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenOptions {
    /// Address of the running daemon.
    pub addr: String,
    /// Machine to drive (registered on demand with `mesh`), or a
    /// `"@pool"` cluster address to route every allocation.
    pub machine: String,
    /// Mesh spec used if the machine is not yet registered.
    pub mesh: String,
    /// Scheduling policy used if the machine is not yet registered.
    pub scheduler: Option<String>,
    /// Total allocate/release requests to issue (across connections).
    pub requests: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Occupancy the generator steers towards, in `(0, 1]`.
    pub occupancy: f64,
    /// Largest request size.
    pub max_size: usize,
    /// Largest walltime estimate sent with allocations (seconds);
    /// `None` sends none.
    pub max_walltime: Option<f64>,
    /// Routing policy to switch the pool to before driving (requires a
    /// `"@pool"` machine address).
    pub router: Option<String>,
    /// Communication pattern declared on every allocation (canonical
    /// pattern name); `None` sends unpatterned allocations.
    pub pattern: Option<String>,
    /// Wire framing the driving connections speak: `"ndjson"` (default)
    /// or `"binary"` (length-prefixed frames, no JSON cost).
    pub framing: String,
    /// RNG seed.
    pub seed: u64,
    /// Tenant every driving connection binds itself to with `hello`
    /// (allocations inherit it); `None` drives untenanted.
    pub tenant: Option<String>,
    /// Skip the final drain, leaving the granted jobs live on the
    /// daemon (the crash-recovery harness kills the daemon with this
    /// state and asserts it is recovered intact).
    pub no_drain: bool,
    /// Write the end-of-run claim table (every live job with its exact
    /// nodes) to this JSON file, for `recovery-check`.
    pub claims_out: Option<String>,
    /// Emit machine-readable JSON instead of the human summary.
    pub json: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: "127.0.0.1:7411".to_string(),
            machine: "default".to_string(),
            mesh: "16x16".to_string(),
            scheduler: None,
            requests: 10_000,
            connections: 4,
            occupancy: 0.7,
            max_size: 32,
            max_walltime: None,
            router: None,
            pattern: None,
            framing: "ndjson".to_string(),
            seed: 1996,
            tenant: None,
            no_drain: false,
            claims_out: None,
            json: false,
        }
    }
}

/// Options of the `tenant` subcommand: with `--name` (and any of the
/// setting flags) it configures a tenant; bare, it lists the table.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOptions {
    /// Address of the running daemon.
    pub addr: String,
    /// Tenant to configure; `None` lists every tenant.
    pub name: Option<String>,
    /// Fair-share weight to set.
    pub weight: Option<f64>,
    /// Node-second quota to set (`0` clears it).
    pub quota: Option<f64>,
    /// Wire in-flight cap to set (`0` clears it).
    pub max_in_flight: Option<u64>,
    /// Emit JSON.
    pub json: bool,
}

impl Default for TenantOptions {
    fn default() -> Self {
        TenantOptions {
            addr: "127.0.0.1:7411".to_string(),
            name: None,
            weight: None,
            quota: None,
            max_in_flight: None,
            json: false,
        }
    }
}

/// Options of the `fair-share` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairShareOptions {
    /// Address of the running daemon.
    pub addr: String,
    /// Machine to flip.
    pub machine: String,
    /// New state.
    pub enabled: bool,
}

impl Default for FairShareOptions {
    fn default() -> Self {
        FairShareOptions {
            addr: "127.0.0.1:7411".to_string(),
            machine: "default".to_string(),
            enabled: true,
        }
    }
}

/// Options of the one-shot `release` / `poll` subcommands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOptions {
    /// Address of the running daemon.
    pub addr: String,
    /// Machine or `@pool` address; `None` when the job reference is
    /// itself qualified (`m0/7`, `grid/m0/7`).
    pub machine: Option<String>,
    /// Job reference: `7`, `m0/7`, or `grid/m0/7`.
    pub job: String,
    /// Emit JSON.
    pub json: bool,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            addr: "127.0.0.1:7411".to_string(),
            machine: None,
            job: String::new(),
            json: false,
        }
    }
}

/// Options of the `watch` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchOptions {
    /// Address of the running daemon.
    pub addr: String,
    /// Seconds between dashboard refreshes.
    pub interval: f64,
    /// Trailing window the stage/pool histograms cover (`10s` or
    /// `60s`).
    pub window: String,
    /// Stop after this many refreshes; `None` runs until interrupted.
    pub count: Option<usize>,
}

impl Default for WatchOptions {
    fn default() -> Self {
        WatchOptions {
            addr: "127.0.0.1:7411".to_string(),
            interval: 2.0,
            window: "10s".to_string(),
            count: None,
        }
    }
}

/// Options of the `calibration` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CalibrationOptions {
    /// Address of the running daemon.
    pub addr: String,
    /// Emit the raw report instead of the human-readable table.
    pub json: bool,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions {
            addr: "127.0.0.1:7411".to_string(),
            json: false,
        }
    }
}

/// Options of the `recovery-check` subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryCheckOptions {
    /// Address of the recovered daemon.
    pub addr: String,
    /// Claim-table file written by `loadgen --claims-out`.
    pub claims: String,
    /// Emit JSON.
    pub json: bool,
}

impl Default for RecoveryCheckOptions {
    fn default() -> Self {
        RecoveryCheckOptions {
            addr: "127.0.0.1:7411".to_string(),
            claims: "claims.json".to_string(),
            json: false,
        }
    }
}

/// A fully parsed invocation of the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulation and print its summary.
    Simulate(SimulateOptions),
    /// Run a (pattern × allocator × load) sweep and print the tables.
    Sweep(SweepOptions),
    /// Render a curve and its locality statistics.
    Curves(CurvesOptions),
    /// Generate (or load) a trace and print its statistics.
    Trace(TraceOptions),
    /// Run the allocation daemon.
    Serve(ServeOptions),
    /// Drive a running daemon with allocate/release traffic.
    Loadgen(LoadgenOptions),
    /// Verify a recovered daemon against a loadgen claim table.
    RecoveryCheck(RecoveryCheckOptions),
    /// Configure a tenant or list the tenant table of a running daemon.
    Tenant(TenantOptions),
    /// Flip weighted fair-share admission on a machine.
    FairShare(FairShareOptions),
    /// Release one job on a running daemon (pool-scoped refs accepted).
    Release(JobOptions),
    /// Poll one job on a running daemon (pool-scoped refs accepted).
    Poll(JobOptions),
    /// Poll a running daemon and render a live text dashboard.
    Watch(WatchOptions),
    /// Print a running daemon's placement calibration report.
    Calibration(CalibrationOptions),
    /// List the implemented allocators, patterns, curves and schedulers.
    List,
    /// Print usage.
    Help,
}

/// Parses a mesh specification: `16x16`, `16x22`, or `WxH`.
pub fn parse_mesh(value: &str) -> Option<Mesh2D> {
    let (w, h) = value.split_once(['x', 'X'])?;
    let w: u16 = w.trim().parse().ok()?;
    let h: u16 = h.trim().parse().ok()?;
    if w == 0 || h == 0 {
        return None;
    }
    Some(Mesh2D::new(w, h))
}

/// Parses a comma-separated list of load factors.
fn parse_loads(value: &str) -> Option<Vec<f64>> {
    let loads: Option<Vec<f64>> = value
        .split(',')
        .map(|s| s.trim().parse::<f64>().ok())
        .collect();
    let loads = loads?;
    if loads.is_empty() || loads.iter().any(|&l| l <= 0.0 || l > 1.0) {
        None
    } else {
        Some(loads)
    }
}

/// Parses a curve name.
fn parse_curve(value: &str) -> Option<CurveKind> {
    CurveKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(value.trim()))
}

/// Parses a scheduler name (delegates to the canonical parser so the
/// CLI and the wire protocol accept exactly the same spellings).
fn parse_scheduler(value: &str) -> Option<Scheduler> {
    Scheduler::parse(value)
}

/// Validates a mesh-spec *shape* (`WxH` or `WxHxD`); the service parses
/// the dimensions properly at registration.
fn mesh_shape_ok(value: &str) -> bool {
    (2..=3).contains(&value.split(['x', 'X']).count())
}

/// Parses a `--machines` list: comma-separated `NAME=MESH` pairs with
/// non-empty names and shape-valid meshes.
fn parse_machines(value: &str) -> Option<Vec<(String, String)>> {
    let machines: Option<Vec<(String, String)>> = value
        .split(',')
        .map(|entry| {
            let (name, mesh) = entry.split_once('=')?;
            let (name, mesh) = (name.trim(), mesh.trim());
            (!name.is_empty() && mesh_shape_ok(mesh)).then(|| (name.to_string(), mesh.to_string()))
        })
        .collect();
    machines.filter(|m| !m.is_empty())
}

/// Parses a routing-policy name (delegates to the canonical parser so
/// the CLI and the wire protocol accept exactly the same spellings).
fn parse_router(value: &str) -> Option<commalloc_service::RoutingPolicy> {
    commalloc_service::RoutingPolicy::parse(value)
}

/// Shape check of a tenant name, mirrored from the service boundary:
/// non-empty, no `@` sigil, no `/` (reserved by job references).
fn tenant_name_ok(value: &str) -> bool {
    !value.is_empty() && !value.starts_with('@') && !value.contains('/')
}

/// Splits the argument list into `(flag, value)` pairs, treating `--json`
/// as a boolean flag.
fn flag_pairs(args: &[String]) -> Result<Vec<(String, Option<String>)>, ParseError> {
    let mut pairs = Vec::new();
    let mut i = 0usize;
    while i < args.len() {
        let flag = args[i].clone();
        if !flag.starts_with("--") {
            return Err(ParseError::UnknownFlag(flag));
        }
        if flag == "--json"
            || flag == "--no-drain"
            || flag == "--clear"
            || flag == "--trace"
            || flag == "--follow"
            || flag == "--calibration"
        {
            pairs.push((flag, None));
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .cloned()
            .ok_or_else(|| ParseError::MissingValue(flag.clone()))?;
        pairs.push((flag, Some(value)));
        i += 2;
    }
    Ok(pairs)
}

fn invalid(flag: &str, value: &str) -> ParseError {
    ParseError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
    }
}

/// Parses a complete argument vector (without the program name).
pub fn parse_command(args: &[String]) -> Result<Command, ParseError> {
    let Some(subcommand) = args.first() else {
        return Err(ParseError::MissingCommand);
    };
    let rest = &args[1..];
    match subcommand.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "allocators" | "list" => Ok(Command::List),
        "simulate" => {
            let mut opts = SimulateOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--mesh" => {
                        opts.mesh = parse_mesh(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--pattern" => {
                        opts.pattern =
                            CommPattern::parse(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--allocator" => {
                        opts.allocator =
                            AllocatorKind::parse(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--scheduler" => {
                        opts.scheduler =
                            parse_scheduler(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--load" => {
                        opts.load = value
                            .parse()
                            .ok()
                            .filter(|&l| l > 0.0 && l <= 1.0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--jobs" => {
                        opts.jobs = value.parse().ok().ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--seed" => {
                        opts.seed = value.parse().ok().ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--swf" => opts.swf = Some(value),
                    "--json" => opts.json = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Simulate(opts))
        }
        "sweep" => {
            let mut opts = SweepOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--mesh" => {
                        opts.mesh = parse_mesh(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--pattern" => {
                        opts.patterns =
                            vec![CommPattern::parse(&value).ok_or_else(|| invalid(&flag, &value))?]
                    }
                    "--allocator" => {
                        opts.allocators =
                            vec![AllocatorKind::parse(&value)
                                .ok_or_else(|| invalid(&flag, &value))?]
                    }
                    "--extended" => {
                        // `--extended true` adds the extension allocators.
                        if value.parse::<bool>().map_err(|_| invalid(&flag, &value))? {
                            opts.allocators.extend(AllocatorKind::extended_set());
                        }
                    }
                    "--loads" => {
                        opts.loads = parse_loads(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--jobs" => {
                        opts.jobs = value.parse().ok().ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--seed" => {
                        opts.seed = value.parse().ok().ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--json" => opts.json = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Sweep(opts))
        }
        "curves" => {
            let mut opts = CurvesOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--mesh" => {
                        opts.mesh = parse_mesh(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--curve" => {
                        opts.curve =
                            Some(parse_curve(&value).ok_or_else(|| invalid(&flag, &value))?)
                    }
                    "--window" => {
                        opts.window = value
                            .parse()
                            .ok()
                            .filter(|&w: &usize| w > 0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Curves(opts))
        }
        "trace" => {
            let mut opts = TraceOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--jobs" => {
                        opts.jobs = value.parse().ok().ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--seed" => {
                        opts.seed = value.parse().ok().ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--swf" => opts.swf = Some(value),
                    "--json" => opts.json = true,
                    "--addr" => opts.addr = Some(value),
                    "--format" => {
                        if !matches!(value.as_str(), "ndjson" | "chrome") {
                            return Err(invalid(&flag, &value));
                        }
                        opts.format = value;
                    }
                    "--out" => {
                        if value.is_empty() {
                            return Err(invalid(&flag, &value));
                        }
                        opts.out = Some(value);
                    }
                    "--limit" => {
                        opts.limit = Some(
                            value
                                .parse()
                                .ok()
                                .filter(|&n: &usize| n > 0)
                                .ok_or_else(|| invalid(&flag, &value))?,
                        )
                    }
                    "--clear" => opts.clear = true,
                    "--set" => {
                        opts.set = Some(match value.as_str() {
                            "on" | "true" | "1" => true,
                            "off" | "false" | "0" => false,
                            _ => return Err(invalid(&flag, &value)),
                        })
                    }
                    "--follow" => opts.follow = true,
                    "--interval" => {
                        opts.interval = value
                            .parse()
                            .ok()
                            .filter(|&s: &f64| s.is_finite() && s > 0.0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            // The online-only flags have nothing to act on offline.
            if opts.addr.is_none()
                && (opts.out.is_some()
                    || opts.limit.is_some()
                    || opts.clear
                    || opts.set.is_some()
                    || opts.follow)
            {
                return Err(ParseError::MissingValue("--addr".to_string()));
            }
            // Following streams NDJSON lines; the chrome format is a
            // single JSON document and cannot be appended to.
            if opts.follow && opts.format != "ndjson" {
                return Err(ParseError::InvalidValue {
                    flag: "--follow".to_string(),
                    value: "requires --format ndjson".to_string(),
                });
            }
            Ok(Command::Trace(opts))
        }
        "serve" => {
            let mut opts = ServeOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--workers" => {
                        opts.workers = value
                            .parse()
                            .ok()
                            .filter(|&w: &usize| w > 0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--machine" => opts.machine = value,
                    "--mesh" => {
                        // Accept 2-D and 3-D specs; validated by the service
                        // at registration, shape-checked here.
                        if !mesh_shape_ok(&value) {
                            return Err(invalid(&flag, &value));
                        }
                        opts.mesh = value;
                    }
                    "--machines" => {
                        opts.machines =
                            parse_machines(&value).ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--allocator" => opts.allocator = Some(value),
                    "--scheduler" => {
                        // Validated for readability here, again by the
                        // service at registration.
                        parse_scheduler(&value).ok_or_else(|| invalid(&flag, &value))?;
                        opts.scheduler = Some(value);
                    }
                    "--pool" => {
                        if value.is_empty() || value.starts_with('@') {
                            return Err(invalid(&flag, &value));
                        }
                        opts.pool = Some(value);
                    }
                    "--router" => {
                        parse_router(&value).ok_or_else(|| invalid(&flag, &value))?;
                        opts.router = Some(value);
                    }
                    "--journal" => {
                        if value.is_empty() {
                            return Err(invalid(&flag, &value));
                        }
                        opts.journal = Some(value);
                    }
                    "--fsync" => {
                        commalloc_service::FsyncPolicy::parse(&value)
                            .ok_or_else(|| invalid(&flag, &value))?;
                        opts.fsync = Some(value);
                    }
                    "--snapshot-every" => {
                        opts.snapshot_every = Some(
                            value
                                .parse()
                                .ok()
                                .filter(|&n: &u64| n > 0)
                                .ok_or_else(|| invalid(&flag, &value))?,
                        )
                    }
                    "--trace" => opts.trace = true,
                    "--calibration" => opts.calibration = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            if opts.router.is_some() && opts.pool.is_none() {
                return Err(ParseError::MissingValue("--pool".to_string()));
            }
            if (opts.fsync.is_some() || opts.snapshot_every.is_some()) && opts.journal.is_none() {
                return Err(ParseError::MissingValue("--journal".to_string()));
            }
            Ok(Command::Serve(opts))
        }
        "loadgen" => {
            let mut opts = LoadgenOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--machine" => opts.machine = value,
                    "--mesh" => opts.mesh = value,
                    "--scheduler" => {
                        parse_scheduler(&value).ok_or_else(|| invalid(&flag, &value))?;
                        opts.scheduler = Some(value);
                    }
                    "--requests" => {
                        opts.requests = value
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--connections" => {
                        opts.connections = value
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--occupancy" => {
                        opts.occupancy = value
                            .parse()
                            .ok()
                            .filter(|&o: &f64| o > 0.0 && o <= 1.0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--max-size" => {
                        opts.max_size = value
                            .parse()
                            .ok()
                            .filter(|&s: &usize| s > 0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--max-walltime" => {
                        opts.max_walltime = Some(
                            value
                                .parse()
                                .ok()
                                .filter(|&w: &f64| w.is_finite() && w >= 1.0)
                                .ok_or_else(|| invalid(&flag, &value))?,
                        )
                    }
                    "--router" => {
                        parse_router(&value).ok_or_else(|| invalid(&flag, &value))?;
                        opts.router = Some(value);
                    }
                    "--pattern" => {
                        commalloc_workload::CommPattern::parse(&value)
                            .ok_or_else(|| invalid(&flag, &value))?;
                        opts.pattern = Some(value);
                    }
                    "--framing" => {
                        commalloc_service::Framing::parse(&value)
                            .ok_or_else(|| invalid(&flag, &value))?;
                        opts.framing = value;
                    }
                    "--seed" => {
                        opts.seed = value.parse().ok().ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--tenant" => {
                        if !tenant_name_ok(&value) {
                            return Err(invalid(&flag, &value));
                        }
                        opts.tenant = Some(value);
                    }
                    "--no-drain" => opts.no_drain = true,
                    "--claims-out" => {
                        if value.is_empty() {
                            return Err(invalid(&flag, &value));
                        }
                        opts.claims_out = Some(value);
                    }
                    "--json" => opts.json = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            if opts.router.is_some() && !opts.machine.starts_with('@') {
                return Err(ParseError::InvalidValue {
                    flag: "--router".to_string(),
                    value: "requires --machine @pool".to_string(),
                });
            }
            Ok(Command::Loadgen(opts))
        }
        "watch" => {
            let mut opts = WatchOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--interval" => {
                        opts.interval = value
                            .parse()
                            .ok()
                            .filter(|&s: &f64| s.is_finite() && s > 0.0)
                            .ok_or_else(|| invalid(&flag, &value))?
                    }
                    "--window" => {
                        if !matches!(value.as_str(), "10s" | "60s") {
                            return Err(invalid(&flag, &value));
                        }
                        opts.window = value;
                    }
                    "--count" => {
                        opts.count = Some(
                            value
                                .parse()
                                .ok()
                                .filter(|&n: &usize| n > 0)
                                .ok_or_else(|| invalid(&flag, &value))?,
                        )
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Watch(opts))
        }
        "calibration" => {
            let mut opts = CalibrationOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--json" => opts.json = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::Calibration(opts))
        }
        "tenant" => {
            let mut opts = TenantOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--name" => {
                        if !tenant_name_ok(&value) {
                            return Err(invalid(&flag, &value));
                        }
                        opts.name = Some(value);
                    }
                    "--weight" => {
                        opts.weight = value
                            .parse()
                            .ok()
                            .filter(|&w: &f64| w.is_finite() && w > 0.0)
                            .ok_or_else(|| invalid(&flag, &value))?
                            .into()
                    }
                    "--quota" => {
                        opts.quota = value
                            .parse()
                            .ok()
                            .filter(|&q: &f64| q.is_finite() && q >= 0.0)
                            .ok_or_else(|| invalid(&flag, &value))?
                            .into()
                    }
                    "--max-in-flight" => {
                        opts.max_in_flight =
                            Some(value.parse().ok().ok_or_else(|| invalid(&flag, &value))?)
                    }
                    "--json" => opts.json = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            // The setting flags act on a named tenant.
            if opts.name.is_none()
                && (opts.weight.is_some() || opts.quota.is_some() || opts.max_in_flight.is_some())
            {
                return Err(ParseError::MissingValue("--name".to_string()));
            }
            Ok(Command::Tenant(opts))
        }
        "fair-share" => {
            let mut opts = FairShareOptions::default();
            let mut set_seen = false;
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--machine" => opts.machine = value,
                    "--set" => {
                        opts.enabled = match value.as_str() {
                            "on" | "true" | "1" => true,
                            "off" | "false" | "0" => false,
                            _ => return Err(invalid(&flag, &value)),
                        };
                        set_seen = true;
                    }
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            if !set_seen {
                return Err(ParseError::MissingValue("--set".to_string()));
            }
            Ok(Command::FairShare(opts))
        }
        "release" | "poll" => {
            let mut opts = JobOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--machine" => opts.machine = Some(value),
                    "--job" => {
                        if value.is_empty() {
                            return Err(invalid(&flag, &value));
                        }
                        opts.job = value;
                    }
                    "--json" => opts.json = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            if opts.job.is_empty() {
                return Err(ParseError::MissingValue("--job".to_string()));
            }
            Ok(if subcommand == "release" {
                Command::Release(opts)
            } else {
                Command::Poll(opts)
            })
        }
        "recovery-check" => {
            let mut opts = RecoveryCheckOptions::default();
            for (flag, value) in flag_pairs(rest)? {
                let value = value.unwrap_or_default();
                match flag.as_str() {
                    "--addr" => opts.addr = value,
                    "--claims" => {
                        if value.is_empty() {
                            return Err(invalid(&flag, &value));
                        }
                        opts.claims = value;
                    }
                    "--json" => opts.json = true,
                    other => return Err(ParseError::UnknownFlag(other.to_string())),
                }
            }
            Ok(Command::RecoveryCheck(opts))
        }
        other => Err(ParseError::UnknownCommand(other.to_string())),
    }
}

/// The usage text printed by `commalloc help`.
pub const USAGE: &str = "\
commalloc — trace-driven processor-allocation simulator (Leung, Bunde & Mache 2004 reproduction)

USAGE:
  commalloc <SUBCOMMAND> [FLAGS]

SUBCOMMANDS:
  simulate    run one simulation and print its summary
              --mesh WxH --pattern P --allocator A --scheduler S --load L
              --jobs N --seed S [--swf FILE] [--json]
  sweep       run a (pattern x allocator x load) sweep and print tables
              --mesh WxH [--pattern P] [--allocator A] [--extended true]
              [--loads 1.0,0.6,0.2] --jobs N --seed S [--json]
  curves      render a processor ordering and its locality statistics
              --mesh WxH [--curve NAME] [--window K]
  trace       offline: generate (or load) a workload trace and print
              its statistics
              --jobs N --seed S [--swf FILE] [--json]
              online: drain a running daemon's flight recorder
              --addr HOST:PORT [--format ndjson|chrome] [--out FILE]
              [--limit N] [--clear] [--set on|off]
              [--follow [--interval SECS]]
  serve       run the online allocation daemon (NDJSON + binary frames
              over TCP)
              [--addr HOST:PORT] [--workers N] [--machine NAME]
              [--mesh WxH|WxHxD] [--machines N0=M0,N1=M1,...]
              [--allocator A] [--scheduler fcfs|backfill|easy|conservative]
              [--pool POOL] [--router rr|ll|sq|p2c|comm-aware]
              [--journal DIR] [--fsync every|never|N] [--snapshot-every N]
              [--trace] [--calibration]
  loadgen     drive a running daemon with allocate/release traffic
              [--addr HOST:PORT] [--machine NAME|@POOL] [--mesh WxH]
              [--scheduler P] [--requests N] [--connections C]
              [--occupancy F] [--max-size K] [--max-walltime W]
              [--router rr|ll|sq|p2c|comm-aware] [--pattern P]
              [--framing ndjson|binary] [--seed S] [--tenant NAME]
              [--no-drain] [--claims-out FILE] [--json]
  recovery-check  assert a recovered daemon matches a saved claim table
              [--addr HOST:PORT] --claims FILE [--json]
  tenant      configure a tenant or list the daemon's tenant table
              [--addr HOST:PORT] [--name NAME [--weight W] [--quota Q]
              [--max-in-flight N]] [--json]
  fair-share  flip weighted fair-share admission on a machine
              [--addr HOST:PORT] [--machine NAME] --set on|off
  release     release one job; accepts pool-scoped references
              [--addr HOST:PORT] [--machine NAME|@POOL] --job REF [--json]
  poll        poll one job; accepts pool-scoped references
              (REF is a bare id, MACHINE/ID, or POOL/MACHINE/ID)
              [--addr HOST:PORT] [--machine NAME|@POOL] --job REF [--json]
  watch       poll a running daemon and render a live text dashboard
              [--addr HOST:PORT] [--interval SECS] [--window 10s|60s]
              [--count N]
  calibration print a running daemon's placement calibration report
              [--addr HOST:PORT] [--json]
  allocators  list allocators, patterns, curves and schedulers
  help        print this message
";

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn missing_and_unknown_commands_are_rejected() {
        assert_eq!(parse_command(&[]), Err(ParseError::MissingCommand));
        assert_eq!(
            parse_command(&args(&["frobnicate"])),
            Err(ParseError::UnknownCommand("frobnicate".into()))
        );
        assert_eq!(parse_command(&args(&["help"])), Ok(Command::Help));
        assert_eq!(parse_command(&args(&["allocators"])), Ok(Command::List));
    }

    #[test]
    fn simulate_flags_round_trip() {
        let cmd = parse_command(&args(&[
            "simulate",
            "--mesh",
            "16x22",
            "--pattern",
            "n-body",
            "--allocator",
            "MC1x1",
            "--scheduler",
            "easy",
            "--load",
            "0.4",
            "--jobs",
            "123",
            "--seed",
            "9",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate(opts) => {
                assert_eq!(opts.mesh, Mesh2D::paragon_16x22());
                assert_eq!(opts.pattern, CommPattern::NBody);
                assert_eq!(opts.allocator, AllocatorKind::Mc1x1);
                assert_eq!(opts.scheduler, Scheduler::EasyBackfill);
                assert_eq!(opts.load, 0.4);
                assert_eq!(opts.jobs, 123);
                assert_eq!(opts.seed, 9);
                assert!(opts.json);
                assert!(opts.swf.is_none());
            }
            other => panic!("expected Simulate, got {other:?}"),
        }
    }

    #[test]
    fn invalid_values_name_the_flag() {
        let err = parse_command(&args(&["simulate", "--load", "3.0"])).unwrap_err();
        assert_eq!(
            err,
            ParseError::InvalidValue {
                flag: "--load".into(),
                value: "3.0".into()
            }
        );
        let err = parse_command(&args(&["simulate", "--allocator", "nonsense"])).unwrap_err();
        assert!(matches!(err, ParseError::InvalidValue { .. }));
        let err = parse_command(&args(&["simulate", "--jobs"])).unwrap_err();
        assert_eq!(err, ParseError::MissingValue("--jobs".into()));
        let err = parse_command(&args(&["simulate", "--bogus", "1"])).unwrap_err();
        assert_eq!(err, ParseError::UnknownFlag("--bogus".into()));
    }

    #[test]
    fn sweep_defaults_match_the_paper() {
        let cmd = parse_command(&args(&["sweep"])).unwrap();
        match cmd {
            Command::Sweep(opts) => {
                assert_eq!(opts.patterns, CommPattern::paper_patterns().to_vec());
                assert_eq!(opts.allocators.len(), 9);
                assert_eq!(opts.loads, vec![1.0, 0.8, 0.6, 0.4, 0.2]);
            }
            other => panic!("expected Sweep, got {other:?}"),
        }
    }

    #[test]
    fn sweep_extended_adds_the_extension_allocators() {
        let cmd = parse_command(&args(&["sweep", "--extended", "true", "--loads", "0.5"])).unwrap();
        match cmd {
            Command::Sweep(opts) => {
                assert!(opts.allocators.len() > 9);
                assert!(opts.allocators.contains(&AllocatorKind::Mbs));
                assert_eq!(opts.loads, vec![0.5]);
            }
            other => panic!("expected Sweep, got {other:?}"),
        }
    }

    #[test]
    fn curves_and_trace_parse() {
        let cmd = parse_command(&args(&["curves", "--mesh", "8x8", "--curve", "hilbert"])).unwrap();
        match cmd {
            Command::Curves(opts) => {
                assert_eq!(opts.mesh, Mesh2D::new(8, 8));
                assert_eq!(opts.curve, Some(CurveKind::Hilbert));
            }
            other => panic!("expected Curves, got {other:?}"),
        }
        let cmd = parse_command(&args(&["trace", "--jobs", "50", "--seed", "3"])).unwrap();
        match cmd {
            Command::Trace(opts) => {
                assert_eq!(opts.jobs, 50);
                assert_eq!(opts.seed, 3);
            }
            other => panic!("expected Trace, got {other:?}"),
        }
    }

    #[test]
    fn trace_online_flags_round_trip() {
        let cmd = parse_command(&args(&[
            "trace", "--addr", "h:1", "--format", "chrome", "--out", "t.json", "--limit", "100",
            "--clear",
        ]))
        .unwrap();
        match cmd {
            Command::Trace(opts) => {
                assert_eq!(opts.addr.as_deref(), Some("h:1"));
                assert_eq!(opts.format, "chrome");
                assert_eq!(opts.out.as_deref(), Some("t.json"));
                assert_eq!(opts.limit, Some(100));
                assert!(opts.clear);
                assert!(opts.set.is_none());
            }
            other => panic!("expected Trace, got {other:?}"),
        }
        let cmd = parse_command(&args(&["trace", "--addr", "h:1", "--set", "on"])).unwrap();
        match cmd {
            Command::Trace(opts) => assert_eq!(opts.set, Some(true)),
            other => panic!("expected Trace, got {other:?}"),
        }
        // Online-only flags without --addr, and bad values, are rejected.
        assert_eq!(
            parse_command(&args(&["trace", "--clear"])),
            Err(ParseError::MissingValue("--addr".into()))
        );
        assert!(parse_command(&args(&["trace", "--addr", "h:1", "--format", "xml"])).is_err());
        assert!(parse_command(&args(&["trace", "--addr", "h:1", "--set", "maybe"])).is_err());
        assert!(parse_command(&args(&["trace", "--addr", "h:1", "--limit", "0"])).is_err());
    }

    #[test]
    fn trace_follow_flags_round_trip() {
        let cmd = parse_command(&args(&[
            "trace",
            "--addr",
            "h:1",
            "--follow",
            "--interval",
            "0.25",
        ]))
        .unwrap();
        match cmd {
            Command::Trace(opts) => {
                assert!(opts.follow);
                assert_eq!(opts.interval, 0.25);
            }
            other => panic!("expected Trace, got {other:?}"),
        }
        // --follow is online-only and streams NDJSON; bad intervals are
        // rejected.
        assert_eq!(
            parse_command(&args(&["trace", "--follow"])),
            Err(ParseError::MissingValue("--addr".into()))
        );
        assert!(parse_command(&args(&[
            "trace", "--addr", "h:1", "--follow", "--format", "chrome"
        ]))
        .is_err());
        assert!(parse_command(&args(&[
            "trace",
            "--addr",
            "h:1",
            "--follow",
            "--interval",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn watch_and_calibration_parse() {
        let cmd = parse_command(&args(&[
            "watch",
            "--addr",
            "h:1",
            "--interval",
            "0.5",
            "--window",
            "60s",
            "--count",
            "3",
        ]))
        .unwrap();
        match cmd {
            Command::Watch(opts) => {
                assert_eq!(opts.addr, "h:1");
                assert_eq!(opts.interval, 0.5);
                assert_eq!(opts.window, "60s");
                assert_eq!(opts.count, Some(3));
            }
            other => panic!("expected Watch, got {other:?}"),
        }
        assert_eq!(
            parse_command(&args(&["watch"])),
            Ok(Command::Watch(WatchOptions::default()))
        );
        assert!(parse_command(&args(&["watch", "--window", "5m"])).is_err());
        assert!(parse_command(&args(&["watch", "--count", "0"])).is_err());
        assert!(parse_command(&args(&["watch", "--interval", "nan"])).is_err());

        let cmd = parse_command(&args(&["calibration", "--addr", "h:1", "--json"])).unwrap();
        match cmd {
            Command::Calibration(opts) => {
                assert_eq!(opts.addr, "h:1");
                assert!(opts.json);
            }
            other => panic!("expected Calibration, got {other:?}"),
        }
        assert!(parse_command(&args(&["calibration", "--window", "10s"])).is_err());
    }

    #[test]
    fn serve_calibration_flag_parses() {
        match parse_command(&args(&["serve", "--calibration"])).unwrap() {
            Command::Serve(opts) => assert!(opts.calibration),
            other => panic!("expected Serve, got {other:?}"),
        }
        match parse_command(&args(&["serve"])).unwrap() {
            Command::Serve(opts) => assert!(!opts.calibration),
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn serve_trace_flag_parses() {
        let cmd = parse_command(&args(&["serve", "--trace"])).unwrap();
        match cmd {
            Command::Serve(opts) => assert!(opts.trace),
            other => panic!("expected Serve, got {other:?}"),
        }
        match parse_command(&args(&["serve"])).unwrap() {
            Command::Serve(opts) => assert!(!opts.trace),
            other => panic!("expected Serve, got {other:?}"),
        }
    }

    #[test]
    fn mesh_and_loads_parsers() {
        assert_eq!(parse_mesh("16x22"), Some(Mesh2D::paragon_16x22()));
        assert_eq!(parse_mesh("4X8"), Some(Mesh2D::new(4, 8)));
        assert_eq!(parse_mesh("0x4"), None);
        assert_eq!(parse_mesh("16"), None);
        assert_eq!(parse_loads("1.0, 0.5"), Some(vec![1.0, 0.5]));
        assert_eq!(parse_loads("1.5"), None);
        assert_eq!(parse_loads(""), None);
    }

    #[test]
    fn usage_mentions_every_subcommand() {
        for sub in [
            "simulate",
            "sweep",
            "curves",
            "trace",
            "serve",
            "loadgen",
            "recovery-check",
            "tenant",
            "fair-share",
            "release",
            "poll",
            "watch",
            "calibration",
            "allocators",
            "help",
        ] {
            assert!(USAGE.contains(sub), "usage must mention {sub}");
        }
    }

    #[test]
    fn serve_flags_round_trip() {
        let cmd = parse_command(&args(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--machine",
            "cplant",
            "--mesh",
            "16x22",
            "--allocator",
            "MC1x1",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(opts) => {
                assert_eq!(opts.addr, "0.0.0.0:9000");
                assert_eq!(opts.workers, 8);
                assert_eq!(opts.machine, "cplant");
                assert_eq!(opts.mesh, "16x22");
                assert_eq!(opts.allocator.as_deref(), Some("MC1x1"));
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        // 3-D specs are accepted, malformed ones are not.
        assert!(parse_command(&args(&["serve", "--mesh", "4x4x4"])).is_ok());
        assert!(parse_command(&args(&["serve", "--mesh", "4x4x4x4"])).is_err());
        assert!(parse_command(&args(&["serve", "--workers", "0"])).is_err());
    }

    #[test]
    fn serve_cluster_flags_round_trip() {
        let cmd = parse_command(&args(&[
            "serve",
            "--machines",
            "m0=16x16, m1=8x8,m2=4x4x4",
            "--pool",
            "grid",
            "--router",
            "p2c",
            "--scheduler",
            "easy",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(opts) => {
                assert_eq!(
                    opts.machines,
                    vec![
                        ("m0".to_string(), "16x16".to_string()),
                        ("m1".to_string(), "8x8".to_string()),
                        ("m2".to_string(), "4x4x4".to_string()),
                    ]
                );
                assert_eq!(opts.pool.as_deref(), Some("grid"));
                assert_eq!(opts.router.as_deref(), Some("p2c"));
            }
            other => panic!("expected Serve, got {other:?}"),
        }
        assert!(parse_command(&args(&["serve", "--machines", "m0"])).is_err());
        assert!(parse_command(&args(&["serve", "--machines", "=16x16"])).is_err());
        assert!(parse_command(&args(&["serve", "--machines", "m0=16"])).is_err());
        assert!(parse_command(&args(&["serve", "--pool", "@grid"])).is_err());
        // --router without --pool has nothing to act on.
        assert!(parse_command(&args(&["serve", "--router", "p2c"])).is_err());
        assert!(
            parse_command(&args(&["serve", "--pool", "grid", "--router", "nonsense"])).is_err()
        );
    }

    #[test]
    fn loadgen_router_requires_a_pool_address() {
        let cmd = parse_command(&args(&[
            "loadgen",
            "--machine",
            "@grid",
            "--router",
            "least-loaded",
        ]))
        .unwrap();
        match cmd {
            Command::Loadgen(opts) => {
                assert_eq!(opts.machine, "@grid");
                assert_eq!(opts.router.as_deref(), Some("least-loaded"));
            }
            other => panic!("expected Loadgen, got {other:?}"),
        }
        assert!(parse_command(&args(&["loadgen", "--router", "ll"])).is_err());
        assert!(parse_command(&args(&[
            "loadgen",
            "--machine",
            "@grid",
            "--router",
            "nonsense"
        ]))
        .is_err());
    }

    #[test]
    fn loadgen_flags_round_trip() {
        let cmd = parse_command(&args(&[
            "loadgen",
            "--addr",
            "127.0.0.1:9000",
            "--requests",
            "5000",
            "--connections",
            "2",
            "--occupancy",
            "0.9",
            "--max-size",
            "16",
            "--seed",
            "3",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Loadgen(opts) => {
                assert_eq!(opts.addr, "127.0.0.1:9000");
                assert_eq!(opts.requests, 5000);
                assert_eq!(opts.connections, 2);
                assert_eq!(opts.occupancy, 0.9);
                assert_eq!(opts.max_size, 16);
                assert_eq!(opts.seed, 3);
                assert!(opts.json);
            }
            other => panic!("expected Loadgen, got {other:?}"),
        }
        assert!(parse_command(&args(&["loadgen", "--occupancy", "1.5"])).is_err());
        assert!(parse_command(&args(&["loadgen", "--requests", "0"])).is_err());
    }

    #[test]
    fn loadgen_tenant_is_validated() {
        match parse_command(&args(&["loadgen", "--tenant", "acme"])).unwrap() {
            Command::Loadgen(opts) => assert_eq!(opts.tenant.as_deref(), Some("acme")),
            other => panic!("expected Loadgen, got {other:?}"),
        }
        for bad in ["", "@pool", "a/b"] {
            assert!(
                parse_command(&args(&["loadgen", "--tenant", bad])).is_err(),
                "tenant {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn tenant_flags_round_trip() {
        let cmd = parse_command(&args(&[
            "tenant",
            "--addr",
            "h:1",
            "--name",
            "acme",
            "--weight",
            "3.0",
            "--quota",
            "5000",
            "--max-in-flight",
            "8",
        ]))
        .unwrap();
        match cmd {
            Command::Tenant(opts) => {
                assert_eq!(opts.addr, "h:1");
                assert_eq!(opts.name.as_deref(), Some("acme"));
                assert_eq!(opts.weight, Some(3.0));
                assert_eq!(opts.quota, Some(5000.0));
                assert_eq!(opts.max_in_flight, Some(8));
            }
            other => panic!("expected Tenant, got {other:?}"),
        }
        // Bare `tenant` lists the table.
        match parse_command(&args(&["tenant"])).unwrap() {
            Command::Tenant(opts) => assert!(opts.name.is_none()),
            other => panic!("expected Tenant, got {other:?}"),
        }
        // Setting flags without a name have nothing to act on.
        assert_eq!(
            parse_command(&args(&["tenant", "--weight", "2.0"])),
            Err(ParseError::MissingValue("--name".into()))
        );
        assert!(parse_command(&args(&["tenant", "--name", "a", "--weight", "0"])).is_err());
        assert!(parse_command(&args(&["tenant", "--name", "a", "--quota", "-1"])).is_err());
        assert!(parse_command(&args(&["tenant", "--name", "@a"])).is_err());
    }

    #[test]
    fn fair_share_requires_an_explicit_state() {
        let cmd = parse_command(&args(&["fair-share", "--machine", "m0", "--set", "on"])).unwrap();
        match cmd {
            Command::FairShare(opts) => {
                assert_eq!(opts.machine, "m0");
                assert!(opts.enabled);
            }
            other => panic!("expected FairShare, got {other:?}"),
        }
        assert_eq!(
            parse_command(&args(&["fair-share", "--machine", "m0"])),
            Err(ParseError::MissingValue("--set".into()))
        );
        assert!(parse_command(&args(&["fair-share", "--set", "maybe"])).is_err());
    }

    #[test]
    fn release_and_poll_take_job_references() {
        let cmd = parse_command(&args(&[
            "release",
            "--addr",
            "h:1",
            "--machine",
            "@grid",
            "--job",
            "7",
        ]))
        .unwrap();
        match cmd {
            Command::Release(opts) => {
                assert_eq!(opts.machine.as_deref(), Some("@grid"));
                assert_eq!(opts.job, "7");
            }
            other => panic!("expected Release, got {other:?}"),
        }
        let cmd = parse_command(&args(&["poll", "--job", "grid/m0/7"])).unwrap();
        match cmd {
            Command::Poll(opts) => {
                assert!(opts.machine.is_none());
                assert_eq!(opts.job, "grid/m0/7");
            }
            other => panic!("expected Poll, got {other:?}"),
        }
        assert_eq!(
            parse_command(&args(&["release"])),
            Err(ParseError::MissingValue("--job".into()))
        );
        assert_eq!(
            parse_command(&args(&["poll"])),
            Err(ParseError::MissingValue("--job".into()))
        );
    }

    #[test]
    fn loadgen_framing_is_validated() {
        let defaulted = parse_command(&args(&["loadgen"])).unwrap();
        match defaulted {
            Command::Loadgen(opts) => assert_eq!(opts.framing, "ndjson"),
            other => panic!("expected Loadgen, got {other:?}"),
        }
        for framing in ["ndjson", "binary"] {
            let cmd = parse_command(&args(&["loadgen", "--framing", framing])).unwrap();
            match cmd {
                Command::Loadgen(opts) => assert_eq!(opts.framing, framing),
                other => panic!("expected Loadgen, got {other:?}"),
            }
        }
        assert!(parse_command(&args(&["loadgen", "--framing", "msgpack"])).is_err());
        assert!(parse_command(&args(&["loadgen", "--framing"])).is_err());
    }
}
