//! # commalloc-cli
//!
//! Argument parsing and command dispatch for the `commalloc` command-line
//! driver. The binary (`src/main.rs`) is a thin wrapper around
//! [`parse_command`] and [`Command::run`], so every code path is testable
//! without spawning a process.
//!
//! ```text
//! commalloc simulate --mesh 16x16 --pattern all-to-all --allocator "Hilbert w/BF" --jobs 400
//! commalloc sweep    --mesh 16x22 --jobs 800 --loads 1.0,0.6,0.2
//! commalloc curves   --mesh 16x22 --curve Hilbert
//! commalloc trace    --jobs 2000 --seed 7
//! commalloc allocators
//! ```

pub mod args;
pub mod commands;
pub mod loadgen;

pub use args::{parse_command, Command, ParseError};
