//! Closed-loop load generator for the allocation daemon.
//!
//! Each connection runs a closed loop steering the machine towards a
//! target occupancy: below target it allocates a random-size job, at or
//! above target it releases one of its live jobs. Every granted node is
//! claimed in a process-wide atomic claim table shared by all
//! connections, so a double-allocation by the daemon — including across
//! connections — is detected client-side as an occupancy-invariant
//! violation and reported in the summary.
//!
//! Detection window caveat: a node is unclaimed just *before* its
//! release is sent (the daemon cannot re-grant a node it still holds,
//! while unclaiming after the response races against legitimate
//! re-grants to other connections). A daemon bug that re-granted a node
//! during exactly its own release round trip would therefore go
//! unflagged by the claim table; the end-of-run reconciliation (daemon
//! busy count versus outstanding claims, and the drain leaving the
//! machine empty) still bounds such escapes.

use commalloc_service::client::{ClientAllocOutcome, ServiceClient};
use commalloc_service::ClientError;
use rand::prelude::*;
use serde::{Map, Serialize, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one loadgen run (mirrors the CLI flags).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: String,
    /// Machine to drive.
    pub machine: String,
    /// Mesh spec used when the machine does not exist yet.
    pub mesh: String,
    /// Scheduling policy used when the machine does not exist yet
    /// (`None` = the daemon's default, FCFS).
    pub scheduler: Option<String>,
    /// Total allocate/release requests to issue (across connections).
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Target occupancy in `(0, 1]`.
    pub occupancy: f64,
    /// Largest request size.
    pub max_size: usize,
    /// Largest walltime estimate attached to allocations, in seconds
    /// (estimates are drawn uniformly from `[1, max_walltime]`; `None`
    /// sends no estimates).
    pub max_walltime: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

/// Aggregated result of a loadgen run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Requests actually issued (allocates + releases, including drain).
    pub requests: u64,
    /// Immediate grants.
    pub granted: u64,
    /// Rejections (treated as backpressure, not errors).
    pub rejected: u64,
    /// Releases issued.
    pub released: u64,
    /// Occupancy-invariant violations detected client-side.
    pub violations: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_seconds: f64,
    /// Requests per second.
    pub throughput: f64,
    /// Final busy count reported by the daemon after draining.
    pub final_busy: u64,
}

impl LoadgenReport {
    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} requests in {:.2} s ({:.0} req/s)\n\
             \x20 granted   {:>8}\n\
             \x20 rejected  {:>8}\n\
             \x20 released  {:>8}\n\
             \x20 violations{:>8}\n\
             \x20 final busy{:>8}\n",
            self.requests,
            self.elapsed_seconds,
            self.throughput,
            self.granted,
            self.rejected,
            self.released,
            self.violations,
            self.final_busy,
        )
    }

    /// JSON rendering (for `--json` and the service benchmark).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("requests".into(), self.requests.to_value());
        m.insert("granted".into(), self.granted.to_value());
        m.insert("rejected".into(), self.rejected.to_value());
        m.insert("released".into(), self.released.to_value());
        m.insert("violations".into(), self.violations.to_value());
        m.insert("elapsed_seconds".into(), self.elapsed_seconds.to_value());
        m.insert("throughput".into(), self.throughput.to_value());
        m.insert("final_busy".into(), self.final_busy.to_value());
        Value::Object(m)
    }
}

/// Shared counters and the node claim table.
struct Shared {
    granted: AtomicU64,
    rejected: AtomicU64,
    released: AtomicU64,
    requests: AtomicU64,
    violations: AtomicU64,
    /// One flag per node: set while some connection believes it holds the
    /// node. Double allocation trips the swap and counts as a violation.
    claims: Vec<AtomicBool>,
    /// Node count of the live machine (from the daemon's own snapshot,
    /// which may differ from the `--mesh` flag when the machine already
    /// existed).
    total_nodes: usize,
}

impl Shared {
    fn claim(&self, nodes: &[commalloc_mesh::NodeId]) {
        for node in nodes {
            if self.claims[node.index()].swap(true, Ordering::SeqCst) {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    fn unclaim(&self, nodes: &[commalloc_mesh::NodeId]) {
        for node in nodes {
            if !self.claims[node.index()].swap(false, Ordering::SeqCst) {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Runs the load against a live daemon. Returns an error string on
/// connection/protocol failure.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    // Register the machine; racing with another loadgen (or a pre-registered
    // server machine) is fine. The claim table is then sized from the
    // daemon's own snapshot — the live machine may be larger or smaller
    // than the `--mesh` flag when it already existed.
    let total_nodes = {
        let mut client = ServiceClient::connect(&config.addr)
            .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;
        match client.register(
            &config.machine,
            &config.mesh,
            None,
            None,
            config.scheduler.as_deref(),
        ) {
            Ok(()) => {}
            Err(ClientError::Service(message)) if message.contains("already registered") => {}
            Err(e) => return Err(format!("register failed: {e}")),
        }
        client
            .query(&config.machine)
            .map_err(|e| format!("query failed: {e}"))?
            .get("nodes")
            .and_then(Value::as_u64)
            .ok_or_else(|| "query response lacks a node count".to_string())?
            .max(1) as usize
    };

    let shared = Arc::new(Shared {
        granted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        released: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        violations: AtomicU64::new(0),
        claims: (0..total_nodes).map(|_| AtomicBool::new(false)).collect(),
        total_nodes,
    });

    let connections = config.connections.max(1);
    let per_connection = config.requests.div_ceil(connections);
    let start = Instant::now();
    let mut failures: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                scope.spawn(move || drive_connection(&config, i, per_connection, &shared))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => failures.push(e),
                Err(_) => failures.push("connection thread panicked".to_string()),
            }
        }
    });
    if let Some(failure) = failures.into_iter().next() {
        return Err(failure);
    }
    let elapsed = start.elapsed().as_secs_f64();

    // After draining, the daemon must agree the machine is empty.
    let mut client = ServiceClient::connect(&config.addr)
        .map_err(|e| format!("cannot reconnect to {}: {e}", config.addr))?;
    let snapshot = client
        .query(&config.machine)
        .map_err(|e| format!("final query failed: {e}"))?;
    let final_busy = snapshot
        .get("busy")
        .and_then(Value::as_u64)
        .unwrap_or(u64::MAX);
    let local_claims = shared
        .claims
        .iter()
        .filter(|c| c.load(Ordering::SeqCst))
        .count() as u64;
    if final_busy != local_claims {
        shared.violations.fetch_add(1, Ordering::SeqCst);
    }

    let requests = shared.requests.load(Ordering::SeqCst);
    Ok(LoadgenReport {
        requests,
        granted: shared.granted.load(Ordering::SeqCst),
        rejected: shared.rejected.load(Ordering::SeqCst),
        released: shared.released.load(Ordering::SeqCst),
        violations: shared.violations.load(Ordering::SeqCst),
        elapsed_seconds: elapsed,
        throughput: requests as f64 / elapsed.max(1e-9),
        final_busy,
    })
}

/// One connection's closed loop plus final drain.
fn drive_connection(
    config: &LoadgenConfig,
    index: usize,
    budget: usize,
    shared: &Shared,
) -> Result<(), String> {
    let mut client =
        ServiceClient::connect(&config.addr).map_err(|e| format!("connection {index}: {e}"))?;
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(index as u64));
    // Job ids are partitioned per connection so they never collide.
    let mut next_job = (index as u64) << 40;
    let total_nodes = shared.total_nodes;
    let mut live: Vec<(u64, Vec<commalloc_mesh::NodeId>)> = Vec::new();
    let mut held = 0usize;
    let mut issued = 0usize;

    let fail = |e: ClientError| format!("connection {index}: {e}");

    while issued < budget {
        // Steer towards the per-connection share of the target occupancy.
        let target =
            (config.occupancy * total_nodes as f64 / config.connections.max(1) as f64) as usize;
        let allocate = live.is_empty() || (held < target && rng.gen_bool(0.7));
        if allocate {
            let size = rng.gen_range(1..=config.max_size.min(total_nodes));
            let walltime = config
                .max_walltime
                .map(|max| rng.gen_range(1.0..=max.max(1.0)));
            let job = next_job;
            next_job += 1;
            match client
                .alloc_with_walltime(&config.machine, job, size, false, walltime)
                .map_err(fail)?
            {
                ClientAllocOutcome::Granted(nodes) => {
                    shared.claim(&nodes);
                    shared.granted.fetch_add(1, Ordering::SeqCst);
                    held += nodes.len();
                    live.push((job, nodes));
                }
                ClientAllocOutcome::Rejected(_) => {
                    shared.rejected.fetch_add(1, Ordering::SeqCst);
                    // Backpressure: free something before trying again.
                    if let Some((job, nodes)) = pick_victim(&mut live, &mut rng) {
                        // Unclaim BEFORE the release reaches the daemon:
                        // once released, the nodes may be granted to
                        // another connection immediately, and a stale
                        // claim would read as a false violation.
                        shared.unclaim(&nodes);
                        client.release(&config.machine, job).map_err(fail)?;
                        shared.released.fetch_add(1, Ordering::SeqCst);
                        shared.requests.fetch_add(1, Ordering::SeqCst);
                        held -= nodes.len();
                        issued += 1;
                    }
                }
                ClientAllocOutcome::Queued(_) => {
                    return Err(format!(
                        "connection {index}: unexpected queue (loadgen never sets wait)"
                    ));
                }
            }
        } else if let Some((job, nodes)) = pick_victim(&mut live, &mut rng) {
            shared.unclaim(&nodes);
            client.release(&config.machine, job).map_err(fail)?;
            shared.released.fetch_add(1, Ordering::SeqCst);
            held -= nodes.len();
        }
        shared.requests.fetch_add(1, Ordering::SeqCst);
        issued += 1;
    }

    // Drain: return everything so the final snapshot must read empty.
    for (job, nodes) in live.drain(..) {
        shared.unclaim(&nodes);
        client.release(&config.machine, job).map_err(fail)?;
        shared.released.fetch_add(1, Ordering::SeqCst);
        shared.requests.fetch_add(1, Ordering::SeqCst);
    }
    Ok(())
}

fn pick_victim(
    live: &mut Vec<(u64, Vec<commalloc_mesh::NodeId>)>,
    rng: &mut StdRng,
) -> Option<(u64, Vec<commalloc_mesh::NodeId>)> {
    if live.is_empty() {
        return None;
    }
    let at = rng.gen_range(0..live.len());
    Some(live.swap_remove(at))
}
