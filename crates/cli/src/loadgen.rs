//! Closed-loop load generator for the allocation daemon.
//!
//! Each connection runs a closed loop steering the machine towards a
//! target occupancy: below target it allocates a random-size job, at or
//! above target it releases one of its live jobs. Every granted node is
//! claimed in a process-wide atomic claim table shared by all
//! connections, so a double-allocation by the daemon — including across
//! connections — is detected client-side as an occupancy-invariant
//! violation and reported in the summary.
//!
//! **Cluster mode:** a machine address of `"@pool"` routes every
//! allocation through the daemon's placement router. The claim tables
//! are then per pool member (discovered from the daemon's own pool
//! snapshot), grants are claimed on the member the daemon reports, and
//! two extra invariants are checked client-side: the reported member
//! must be a known pool member, and it must be large enough for the
//! request — a router that ever places a job on an undersized machine
//! is flagged as a violation, not an error to retry.
//!
//! The final drain sends releases as **batched** wire ops
//! (`Request::Batch`), cutting the drain's round trips by its batch
//! size.
//!
//! Detection window caveat: a node is unclaimed just *before* its
//! release is sent (the daemon cannot re-grant a node it still holds,
//! while unclaiming after the response races against legitimate
//! re-grants to other connections). A daemon bug that re-granted a node
//! during exactly its own release round trip would therefore go
//! unflagged by the claim table; the end-of-run reconciliation (daemon
//! busy count versus outstanding claims, and the drain leaving the
//! machine empty) still bounds such escapes.

use commalloc_service::client::{ClientAllocOutcome, ServiceClient};
use commalloc_service::{ClientError, Framing, JobRef, Request, Response};
use commalloc_workload::CommPattern;
use rand::prelude::*;
use serde::{Map, Serialize, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// How many releases ride in one wire line during the final drain.
const DRAIN_BATCH: usize = 64;

/// Configuration of one loadgen run (mirrors the CLI flags).
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Daemon address.
    pub addr: String,
    /// Machine to drive, or `"@pool"` to route across a cluster pool.
    pub machine: String,
    /// Mesh spec used when the machine does not exist yet (ignored in
    /// cluster mode — pool members are registered by the daemon).
    pub mesh: String,
    /// Scheduling policy used when the machine does not exist yet
    /// (`None` = the daemon's default, FCFS).
    pub scheduler: Option<String>,
    /// Total allocate/release requests to issue (across connections).
    pub requests: usize,
    /// Concurrent connections.
    pub connections: usize,
    /// Target occupancy in `(0, 1]`.
    pub occupancy: f64,
    /// Largest request size.
    pub max_size: usize,
    /// Largest walltime estimate attached to allocations, in seconds
    /// (estimates are drawn uniformly from `[1, max_walltime]`; `None`
    /// sends no estimates).
    pub max_walltime: Option<f64>,
    /// Routing policy to switch the pool to before driving (cluster
    /// mode only).
    pub router: Option<String>,
    /// Communication pattern every allocation declares (`None` sends
    /// unpatterned allocations, the pre-pattern wire form).
    pub pattern: Option<CommPattern>,
    /// Wire framing the driving connections speak (`ndjson` or
    /// `binary`; discovery and final reconciliation always use NDJSON).
    pub framing: Framing,
    /// RNG seed.
    pub seed: u64,
    /// Tenant every driving connection binds itself to with `hello`;
    /// allocations then inherit the binding server-side. `None` drives
    /// untenanted (the default-tenant books).
    pub tenant: Option<String>,
    /// Skip the final drain: granted jobs stay live on the daemon. The
    /// crash-recovery harness then kills the daemon and asserts the
    /// recovered occupancy matches the claim table exactly.
    pub no_drain: bool,
    /// Write the end-of-run claim table (live jobs with exact nodes) to
    /// this JSON file for `recovery-check`.
    pub claims_out: Option<String>,
}

/// Aggregated result of a loadgen run.
#[derive(Debug, Clone, Serialize)]
pub struct LoadgenReport {
    /// Requests actually issued (allocates + releases, including drain).
    pub requests: u64,
    /// Immediate grants.
    pub granted: u64,
    /// Rejections (treated as backpressure, not errors).
    pub rejected: u64,
    /// Releases issued.
    pub released: u64,
    /// Occupancy-invariant violations detected client-side (cluster
    /// mode adds misrouting violations: unknown or undersized members).
    pub violations: u64,
    /// Wall-clock seconds of the steady-state window: every connection
    /// established and past the start barrier before the clock starts,
    /// so connect storms at high connection counts don't skew req/s.
    pub elapsed_seconds: f64,
    /// Seconds spent establishing connections before the steady-state
    /// window opened (the excluded ramp).
    pub setup_seconds: f64,
    /// Requests per second over the steady-state window.
    pub throughput: f64,
    /// Final busy count reported by the daemon after draining (summed
    /// over pool members in cluster mode).
    pub final_busy: u64,
    /// Machines driven (1 for a direct machine, pool size in cluster
    /// mode).
    pub machines: u64,
}

impl LoadgenReport {
    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} requests in {:.2} s steady state ({:.0} req/s, \
             +{:.2} s ramp) across {} machine(s)\n\
             \x20 granted   {:>8}\n\
             \x20 rejected  {:>8}\n\
             \x20 released  {:>8}\n\
             \x20 violations{:>8}\n\
             \x20 final busy{:>8}\n",
            self.requests,
            self.elapsed_seconds,
            self.throughput,
            self.setup_seconds,
            self.machines,
            self.granted,
            self.rejected,
            self.released,
            self.violations,
            self.final_busy,
        )
    }

    /// JSON rendering (for `--json` and the service benchmark).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("requests".into(), self.requests.to_value());
        m.insert("granted".into(), self.granted.to_value());
        m.insert("rejected".into(), self.rejected.to_value());
        m.insert("released".into(), self.released.to_value());
        m.insert("violations".into(), self.violations.to_value());
        m.insert("elapsed_seconds".into(), self.elapsed_seconds.to_value());
        m.insert("setup_seconds".into(), self.setup_seconds.to_value());
        m.insert("throughput".into(), self.throughput.to_value());
        m.insert("final_busy".into(), self.final_busy.to_value());
        m.insert("machines".into(), self.machines.to_value());
        Value::Object(m)
    }
}

/// Shared counters and the per-machine node claim tables.
struct Shared {
    granted: AtomicU64,
    rejected: AtomicU64,
    released: AtomicU64,
    requests: AtomicU64,
    violations: AtomicU64,
    /// Jobs left live at end of run (`no_drain` mode): each connection
    /// parks its survivors here for the claim-table file.
    surviving: std::sync::Mutex<Vec<LiveJob>>,
    /// Per machine: one flag per node, set while some connection
    /// believes it holds the node. Double allocation trips the swap and
    /// counts as a violation.
    claims: HashMap<String, Vec<AtomicBool>>,
    /// Aggregate node count of the driven machines (from the daemon's
    /// own snapshots); steers the closed loop's occupancy target.
    total_nodes: usize,
    /// Node count of the largest driven machine: the cap on request
    /// sizes, so every request stays routable somewhere in the pool
    /// (an unroutable size is a hard service error, not backpressure).
    max_machine_nodes: usize,
}

impl Shared {
    /// Claims `nodes` on `machine`; an unknown machine or out-of-range
    /// node is itself a violation (the daemon reported a grant the
    /// client-side model cannot even represent).
    fn claim(&self, machine: &str, nodes: &[commalloc_mesh::NodeId]) {
        let Some(table) = self.claims.get(machine) else {
            self.violations.fetch_add(1, Ordering::SeqCst);
            return;
        };
        for node in nodes {
            match table.get(node.index()) {
                Some(flag) => {
                    if flag.swap(true, Ordering::SeqCst) {
                        self.violations.fetch_add(1, Ordering::SeqCst);
                    }
                }
                None => {
                    self.violations.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }

    fn unclaim(&self, machine: &str, nodes: &[commalloc_mesh::NodeId]) {
        let Some(table) = self.claims.get(machine) else {
            self.violations.fetch_add(1, Ordering::SeqCst);
            return;
        };
        for node in nodes {
            match table.get(node.index()) {
                Some(flag) => {
                    if !flag.swap(false, Ordering::SeqCst) {
                        self.violations.fetch_add(1, Ordering::SeqCst);
                    }
                }
                None => {
                    self.violations.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }

    /// Checks a routed placement: the daemon must have named a known
    /// member large enough for the request.
    fn check_placement(&self, machine: &str, size: usize) {
        match self.claims.get(machine) {
            Some(table) if size <= table.len() => {}
            _ => {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Discovers the machines behind `config.machine`: the pool members (in
/// cluster mode, optionally switching the routing policy first) or the
/// single machine itself (registered on demand). Returns `(name, nodes)`
/// pairs.
fn discover_machines(config: &LoadgenConfig) -> Result<Vec<(String, usize)>, String> {
    let mut client = ServiceClient::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;
    if let Some(pool) = config.machine.strip_prefix('@') {
        if let Some(router) = &config.router {
            client
                .set_router(pool, router)
                .map_err(|e| format!("set_router failed: {e}"))?;
        }
        let snapshot = client
            .query(&config.machine)
            .map_err(|e| format!("pool query failed: {e}"))?;
        let members = snapshot
            .get("machines")
            .and_then(Value::as_array)
            .ok_or_else(|| "pool snapshot lacks a machines array".to_string())?;
        let machines: Option<Vec<(String, usize)>> = members
            .iter()
            .map(|m| {
                Some((
                    m.get("machine")?.as_str()?.to_string(),
                    m.get("nodes")?.as_u64()? as usize,
                ))
            })
            .collect();
        machines
            .filter(|m| !m.is_empty())
            .ok_or_else(|| "pool snapshot has malformed member entries".to_string())
    } else {
        // Register the machine; racing with another loadgen (or a
        // pre-registered server machine) is fine. The claim table is
        // then sized from the daemon's own snapshot — the live machine
        // may differ from the `--mesh` flag when it already existed.
        match client.register(
            &config.machine,
            &config.mesh,
            None,
            None,
            config.scheduler.as_deref(),
        ) {
            Ok(()) => {}
            Err(ClientError::Service(message)) if message.contains("already registered") => {}
            Err(e) => return Err(format!("register failed: {e}")),
        }
        let nodes = client
            .query(&config.machine)
            .map_err(|e| format!("query failed: {e}"))?
            .get("nodes")
            .and_then(Value::as_u64)
            .ok_or_else(|| "query response lacks a node count".to_string())?
            .max(1) as usize;
        Ok(vec![(config.machine.clone(), nodes)])
    }
}

/// Runs the load against a live daemon. Returns an error string on
/// connection/protocol failure.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let machines = discover_machines(config)?;
    let shared = Arc::new(Shared {
        granted: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        released: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        violations: AtomicU64::new(0),
        surviving: std::sync::Mutex::new(Vec::new()),
        claims: machines
            .iter()
            .map(|(name, nodes)| {
                (
                    name.clone(),
                    (0..*nodes).map(|_| AtomicBool::new(false)).collect(),
                )
            })
            .collect(),
        total_nodes: machines
            .iter()
            .map(|(_, nodes)| nodes)
            .sum::<usize>()
            .max(1),
        max_machine_nodes: machines
            .iter()
            .map(|(_, nodes)| *nodes)
            .max()
            .unwrap_or(1)
            .max(1),
    });

    let connections = config.connections.max(1);
    let per_connection = config.requests.div_ceil(connections);
    // Steady-state window: every connection connects first, then all of
    // them (plus the timing thread here) meet at a barrier before the
    // first request moves. The reported throughput excludes the connect
    // ramp — at high connection counts the accept storm is setup cost,
    // not serving capacity.
    let start_barrier = Barrier::new(connections + 1);
    let setup_start = Instant::now();
    let mut failures: Vec<String> = Vec::new();
    let mut setup = 0.0f64;
    let mut elapsed = 0.0f64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let config = config.clone();
                let start_barrier = &start_barrier;
                scope.spawn(move || {
                    drive_connection(&config, i, per_connection, &shared, start_barrier)
                })
            })
            .collect();
        start_barrier.wait();
        setup = setup_start.elapsed().as_secs_f64();
        let steady_start = Instant::now();
        for handle in handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => failures.push(e),
                Err(_) => failures.push("connection thread panicked".to_string()),
            }
        }
        elapsed = steady_start.elapsed().as_secs_f64();
    });
    if let Some(failure) = failures.into_iter().next() {
        return Err(failure);
    }

    // After draining, the daemon must agree every machine is empty.
    let mut client = ServiceClient::connect(&config.addr)
        .map_err(|e| format!("cannot reconnect to {}: {e}", config.addr))?;
    let mut final_busy = 0u64;
    for (name, _) in &machines {
        match client
            .query(name)
            .map_err(|e| format!("final query of {name} failed: {e}"))?
            .get("busy")
            .and_then(Value::as_u64)
        {
            Some(busy) => final_busy += busy,
            // A snapshot without a numeric busy count is itself a
            // violation; do not poison the sum with a sentinel.
            None => {
                shared.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let local_claims: u64 = shared
        .claims
        .values()
        .map(|table| table.iter().filter(|c| c.load(Ordering::SeqCst)).count() as u64)
        .sum();
    if final_busy != local_claims {
        shared.violations.fetch_add(1, Ordering::SeqCst);
    }

    if let Some(path) = &config.claims_out {
        let survivors = shared.surviving.lock().expect("surviving table poisoned");
        let claims = claims_value(
            &config.machine,
            config.tenant.as_deref(),
            &machines,
            &survivors,
        );
        let json = serde_json::to_string_pretty(&claims)
            .map_err(|e| format!("cannot render claim table: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
    }

    let requests = shared.requests.load(Ordering::SeqCst);
    Ok(LoadgenReport {
        requests,
        granted: shared.granted.load(Ordering::SeqCst),
        rejected: shared.rejected.load(Ordering::SeqCst),
        released: shared.released.load(Ordering::SeqCst),
        violations: shared.violations.load(Ordering::SeqCst),
        elapsed_seconds: elapsed,
        setup_seconds: setup,
        throughput: requests as f64 / elapsed.max(1e-9),
        final_busy,
        machines: machines.len() as u64,
    })
}

/// One connection's closed loop plus final (batched) drain.
fn drive_connection(
    config: &LoadgenConfig,
    index: usize,
    budget: usize,
    shared: &Shared,
    start_barrier: &Barrier,
) -> Result<(), String> {
    // Connect before the barrier so the steady-state clock never counts
    // connection setup — and hit the barrier exactly once even on a
    // failed connect, or the timing thread would deadlock waiting.
    let connected = ServiceClient::connect_with_framing(&config.addr, config.framing);
    start_barrier.wait();
    let mut client = connected.map_err(|e| format!("connection {index}: {e}"))?;
    if let Some(tenant) = &config.tenant {
        client
            .hello(tenant)
            .map_err(|e| format!("connection {index}: hello {tenant}: {e}"))?;
    }
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(index as u64));
    // Job ids are partitioned per connection so they never collide.
    let mut next_job = (index as u64) << 40;
    let total_nodes = shared.total_nodes;
    let mut live: Vec<(String, u64, Vec<commalloc_mesh::NodeId>)> = Vec::new();
    let mut held = 0usize;
    let mut issued = 0usize;

    let fail = |e: ClientError| format!("connection {index}: {e}");

    while issued < budget {
        // Steer towards the per-connection share of the target occupancy.
        let target =
            (config.occupancy * total_nodes as f64 / config.connections.max(1) as f64) as usize;
        let allocate = live.is_empty() || (held < target && rng.gen_bool(0.7));
        if allocate {
            let size = rng.gen_range(1..=config.max_size.min(shared.max_machine_nodes));
            let walltime = config
                .max_walltime
                .map(|max| rng.gen_range(1.0..=max.max(1.0)));
            let job = next_job;
            next_job += 1;
            let (machine, outcome) = client
                .alloc_routed(&config.machine, job, size, false, walltime, config.pattern)
                .map_err(fail)?;
            match outcome {
                ClientAllocOutcome::Granted(nodes) => {
                    shared.check_placement(&machine, size);
                    shared.claim(&machine, &nodes);
                    shared.granted.fetch_add(1, Ordering::SeqCst);
                    held += nodes.len();
                    live.push((machine, job, nodes));
                }
                ClientAllocOutcome::Rejected(_) => {
                    shared.rejected.fetch_add(1, Ordering::SeqCst);
                    // Backpressure: free something before trying again.
                    if let Some((machine, job, nodes)) = pick_victim(&mut live, &mut rng) {
                        // Unclaim BEFORE the release reaches the daemon:
                        // once released, the nodes may be granted to
                        // another connection immediately, and a stale
                        // claim would read as a false violation.
                        shared.unclaim(&machine, &nodes);
                        client.release(&machine, job).map_err(fail)?;
                        shared.released.fetch_add(1, Ordering::SeqCst);
                        shared.requests.fetch_add(1, Ordering::SeqCst);
                        held -= nodes.len();
                        issued += 1;
                    }
                }
                ClientAllocOutcome::Queued(_) => {
                    return Err(format!(
                        "connection {index}: unexpected queue (loadgen never sets wait)"
                    ));
                }
            }
        } else if let Some((machine, job, nodes)) = pick_victim(&mut live, &mut rng) {
            shared.unclaim(&machine, &nodes);
            client.release(&machine, job).map_err(fail)?;
            shared.released.fetch_add(1, Ordering::SeqCst);
            held -= nodes.len();
        }
        shared.requests.fetch_add(1, Ordering::SeqCst);
        issued += 1;
    }

    if config.no_drain {
        // Leave the jobs live (claims stay set, so the end-of-run
        // reconciliation still holds) and park them for the claim-table
        // file — the state the crash harness expects recovery to rebuild.
        shared
            .surviving
            .lock()
            .expect("surviving table poisoned")
            .append(&mut live);
        return Ok(());
    }

    // Drain: return everything so the final snapshots must read empty.
    // Releases are batched onto single wire lines — the batch op exists
    // precisely to cut round trips in closed loops like this one.
    for chunk in live.chunks(DRAIN_BATCH) {
        let mut batch = Vec::with_capacity(chunk.len());
        for (machine, job, nodes) in chunk {
            shared.unclaim(machine, nodes);
            batch.push(Request::Release {
                machine: Some(machine.clone()),
                job: JobRef::Bare(*job),
            });
        }
        let responses = client.batch(batch).map_err(fail)?;
        for response in responses {
            match response {
                Response::Released { .. } => {
                    shared.released.fetch_add(1, Ordering::SeqCst);
                    shared.requests.fetch_add(1, Ordering::SeqCst);
                }
                other => {
                    return Err(format!(
                        "connection {index}: drain release answered {other:?}"
                    ))
                }
            }
        }
    }
    Ok(())
}

type LiveJob = (String, u64, Vec<commalloc_mesh::NodeId>);

fn pick_victim(live: &mut Vec<LiveJob>, rng: &mut StdRng) -> Option<LiveJob> {
    if live.is_empty() {
        return None;
    }
    let at = rng.gen_range(0..live.len());
    Some(live.swap_remove(at))
}

/// Renders the claim table: the machines driven and every job left live
/// with its exact nodes — the ground truth `recovery-check` holds a
/// recovered daemon to.
fn claims_value(
    machine_arg: &str,
    tenant: Option<&str>,
    machines: &[(String, usize)],
    live: &[LiveJob],
) -> Value {
    let mut m = Map::new();
    m.insert("machine_arg".into(), machine_arg.to_value());
    if let Some(tenant) = tenant {
        m.insert("tenant".into(), tenant.to_value());
    }
    m.insert(
        "machines".into(),
        Value::Array(
            machines
                .iter()
                .map(|(name, nodes)| {
                    let mut e = Map::new();
                    e.insert("machine".into(), name.to_value());
                    e.insert("nodes".into(), nodes.to_value());
                    Value::Object(e)
                })
                .collect(),
        ),
    );
    m.insert(
        "live".into(),
        Value::Array(
            live.iter()
                .map(|(machine, job, nodes)| {
                    let mut e = Map::new();
                    e.insert("machine".into(), machine.to_value());
                    e.insert("job".into(), Value::UInt(*job));
                    e.insert(
                        "nodes".into(),
                        Value::Array(nodes.iter().map(|n| Value::UInt(n.0 as u64)).collect()),
                    );
                    Value::Object(e)
                })
                .collect(),
        ),
    );
    Value::Object(m)
}

/// The `recovery-check` verdict.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryCheckReport {
    /// Machines compared.
    pub machines: u64,
    /// Live jobs verified.
    pub jobs: u64,
    /// Processors the claim table says are held.
    pub claimed_nodes: u64,
    /// Processors the recovered daemon reports busy.
    pub recovered_busy: u64,
    /// Divergences: lost grants (claimed job not running, or running on
    /// different nodes), resurrected state (busy count above the
    /// claims, queue entries that should not exist), pool-index
    /// misresolutions, and tenant-table losses.
    pub violations: u64,
    /// Extra checks performed: pool-index resolutions of live jobs (in
    /// cluster mode) plus tenant-table verifications (when the claims
    /// were driven under a tenant).
    pub extra_checks: u64,
}

impl RecoveryCheckReport {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "recovery-check: {} machines, {} live jobs\n\
             \x20 claimed nodes  {:>8}\n\
             \x20 recovered busy {:>8}\n\
             \x20 extra checks   {:>8}\n\
             \x20 violations     {:>8}\n",
            self.machines,
            self.jobs,
            self.claimed_nodes,
            self.recovered_busy,
            self.extra_checks,
            self.violations,
        )
    }
}

/// Compares a recovered daemon against a saved claim table: every live
/// job must still run on exactly its claimed nodes (zero lost grants),
/// every machine's busy count must equal the claims against it (zero
/// resurrected releases), and the queues must be empty (loadgen never
/// queues).
pub fn recovery_check(addr: &str, claims_path: &str) -> Result<RecoveryCheckReport, String> {
    use commalloc_service::registry::JobStatus;

    let text = std::fs::read_to_string(claims_path)
        .map_err(|e| format!("cannot read {claims_path}: {e}"))?;
    let claims: Value =
        serde_json::from_str(&text).map_err(|e| format!("{claims_path} is not JSON: {e}"))?;
    let machines = claims
        .get("machines")
        .and_then(Value::as_array)
        .ok_or_else(|| "claim table lacks a machines array".to_string())?;
    let live = claims
        .get("live")
        .and_then(Value::as_array)
        .ok_or_else(|| "claim table lacks a live array".to_string())?;

    let mut client =
        ServiceClient::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut violations = 0u64;
    let mut extra_checks = 0u64;
    let mut claimed_per_machine: HashMap<String, u64> = HashMap::new();
    // In cluster mode the claims were driven through "@pool": the
    // recovered pool job index must resolve every live bare id back to
    // the member the router placed it on.
    let pool_address = claims
        .get("machine_arg")
        .and_then(Value::as_str)
        .filter(|arg| arg.starts_with('@'))
        .map(str::to_string);

    // Every claimed job must have survived with its exact processors.
    for entry in live {
        let (Some(machine), Some(job)) = (
            entry.get("machine").and_then(Value::as_str),
            entry.get("job").and_then(Value::as_u64),
        ) else {
            return Err("claim table has a malformed live entry".to_string());
        };
        let want: Option<Vec<u64>> = entry
            .get("nodes")
            .and_then(Value::as_array)
            .map(|nodes| nodes.iter().filter_map(Value::as_u64).collect());
        let want = want.ok_or_else(|| "claim table has a malformed node list".to_string())?;
        *claimed_per_machine.entry(machine.to_string()).or_default() += want.len() as u64;
        let (resolved, status) = match &pool_address {
            // Poll through the pool address: the recovered index does
            // the bare-id → member resolution.
            Some(pool) => client
                .poll_ref(Some(pool), &JobRef::Bare(job))
                .map_err(|e| format!("poll of job {job} via {pool} failed: {e}"))?,
            None => {
                let status = client
                    .poll(machine, job)
                    .map_err(|e| format!("poll of job {job} on {machine} failed: {e}"))?;
                (None, status)
            }
        };
        if let Some(pool) = &pool_address {
            extra_checks += 1;
            if resolved.as_deref() != Some(machine) {
                eprintln!(
                    "recovery-check: {pool} resolved job {job} to {resolved:?}, claimed {machine}"
                );
                violations += 1;
            }
        }
        match status {
            JobStatus::Running(nodes) => {
                let got: Vec<u64> = nodes.iter().map(|n| n.0 as u64).collect();
                if got != want {
                    eprintln!(
                        "recovery-check: job {job} on {machine} holds {got:?}, claimed {want:?}"
                    );
                    violations += 1;
                }
            }
            other => {
                eprintln!("recovery-check: job {job} on {machine} is {other:?}, claimed running");
                violations += 1;
            }
        }
    }

    // Busy counts must equal the claims exactly: anything above is a
    // resurrected release, anything below a lost grant the poll loop
    // already flagged. Queues must be empty (loadgen never waits).
    let mut recovered_busy = 0u64;
    for entry in machines {
        let Some(name) = entry.get("machine").and_then(Value::as_str) else {
            return Err("claim table has a malformed machine entry".to_string());
        };
        let snapshot = client
            .query(name)
            .map_err(|e| format!("query of {name} failed: {e}"))?;
        let busy = snapshot
            .get("busy")
            .and_then(Value::as_u64)
            .unwrap_or(u64::MAX);
        let queue_len = snapshot
            .get("queue_len")
            .and_then(Value::as_u64)
            .unwrap_or(u64::MAX);
        let claimed = claimed_per_machine.get(name).copied().unwrap_or(0);
        recovered_busy += if busy == u64::MAX { 0 } else { busy };
        if busy != claimed {
            eprintln!("recovery-check: {name} reports {busy} busy, claim table says {claimed}");
            violations += 1;
        }
        if queue_len != 0 {
            eprintln!("recovery-check: {name} recovered {queue_len} queued requests from a queue-free run");
            violations += 1;
        }
    }

    // When the claims were driven under a tenant, the recovered tenant
    // table must carry that tenant with outstanding node-seconds that
    // match the survival of its jobs.
    if let Some(tenant) = claims.get("tenant").and_then(Value::as_str) {
        extra_checks += 1;
        let claimed_nodes: u64 = claimed_per_machine.values().sum();
        let tenants = client
            .tenants()
            .map_err(|e| format!("tenant table fetch failed: {e}"))?;
        match tenants.get(tenant) {
            None => {
                eprintln!("recovery-check: tenant {tenant} missing from the recovered table");
                violations += 1;
            }
            Some(row) => {
                let outstanding = row
                    .get("outstanding_node_seconds")
                    .and_then(Value::as_f64)
                    .unwrap_or(-1.0);
                if (claimed_nodes > 0) != (outstanding > 0.0) {
                    eprintln!(
                        "recovery-check: tenant {tenant} shows {outstanding} outstanding \
                         node-seconds against {claimed_nodes} claimed nodes"
                    );
                    violations += 1;
                }
            }
        }
    }

    Ok(RecoveryCheckReport {
        machines: machines.len() as u64,
        jobs: live.len() as u64,
        claimed_nodes: claimed_per_machine.values().sum(),
        recovered_busy,
        violations,
        extra_checks,
    })
}
