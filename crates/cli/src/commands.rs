//! Execution of the parsed CLI commands.
//!
//! Each command renders to a `String` (so the output is unit-testable) and
//! the binary simply prints it.

use crate::args::{
    Command, CurvesOptions, LoadgenOptions, RecoveryCheckOptions, ServeOptions, SimulateOptions,
    SweepOptions, TraceOptions, USAGE,
};
use crate::loadgen::{self, LoadgenConfig};
use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_mesh::locality::window_locality;
use commalloc_service::{
    open_journaled, AllocationService, FsyncPolicy, JournalConfig, Server, ServiceClient,
};
use commalloc_workload::analysis::TraceAnalysis;
use commalloc_workload::swf;
use serde::{Map, Value};
use std::fmt::Write as _;

/// Errors surfaced to the user by command execution.
#[derive(Debug)]
pub enum RunError {
    /// An SWF trace file could not be read or parsed.
    Swf(String),
    /// Results could not be serialised to JSON.
    Json(String),
    /// The allocation daemon could not start or failed while serving.
    Serve(String),
    /// The load generator could not reach or drive the daemon.
    Loadgen(String),
    /// The daemon's flight recorder could not be drained or toggled.
    Trace(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Swf(e) => write!(f, "could not load SWF trace: {e}"),
            RunError::Json(e) => write!(f, "could not serialise results: {e}"),
            RunError::Serve(e) => write!(f, "daemon failed: {e}"),
            RunError::Loadgen(e) => write!(f, "load generation failed: {e}"),
            RunError::Trace(e) => write!(f, "trace failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl Command {
    /// Executes the command and returns its rendered output.
    pub fn run(&self) -> Result<String, RunError> {
        match self {
            Command::Help => Ok(USAGE.to_string()),
            Command::List => Ok(render_list()),
            Command::Simulate(opts) => run_simulate(opts),
            Command::Sweep(opts) => run_sweep(opts),
            Command::Curves(opts) => Ok(run_curves(opts)),
            Command::Trace(opts) => run_trace(opts),
            Command::Serve(opts) => run_serve(opts),
            Command::Loadgen(opts) => run_loadgen(opts),
            Command::RecoveryCheck(opts) => run_recovery_check(opts),
        }
    }
}

/// Starts the allocation daemon and serves until the process is killed.
/// With `--journal`, an existing journal is recovered first and the
/// pre-registration of `--machine`/`--machines` skips machines the
/// journal already rebuilt (restarting with the same flags must not
/// fail on "already registered").
fn run_serve(opts: &ServeOptions) -> Result<String, RunError> {
    let service = match &opts.journal {
        None => AllocationService::new(),
        Some(dir) => {
            let mut config = JournalConfig::default();
            if let Some(fsync) = opts.fsync.as_deref().and_then(FsyncPolicy::parse) {
                config.fsync = fsync;
            }
            if let Some(every) = opts.snapshot_every {
                config.snapshot_every = every;
            }
            let (service, report) = open_journaled(std::path::Path::new(dir), config)
                .map_err(|e| RunError::Serve(format!("journal {dir}: {e}")))?;
            eprintln!(
                "commalloc-service journal at {dir}: epoch {}, {} machine(s) recovered \
                 ({} records applied, {} skipped{}{})",
                report.epoch,
                report.machines,
                report.applied,
                report.skipped,
                if report.snapshot_found {
                    ", from snapshot+tail"
                } else {
                    ""
                },
                if report.torn_tail {
                    "; torn tail dropped"
                } else {
                    ""
                },
            );
            service
        }
    };
    let recovered: std::collections::HashSet<String> = service.list().into_iter().collect();
    // Pools the journal rebuilt, captured before pre-registration adds
    // flag-declared ones: like recovered machines, a recovered pool
    // keeps its journaled routing policy — `--router` seeds only pools
    // the journal did not rebuild, so restarting with the original
    // flags cannot clobber a runtime `set_router` flip.
    let recovered_pools: std::collections::HashSet<String> =
        service.router().pool_names().into_iter().collect();
    let single = [(opts.machine.clone(), opts.mesh.clone())];
    let machines: &[(String, String)] = if opts.machines.is_empty() {
        &single
    } else {
        &opts.machines
    };
    for (name, mesh) in machines {
        if recovered.contains(name) {
            continue;
        }
        service
            .register_in_pool(
                name,
                mesh,
                opts.allocator.as_deref(),
                None,
                opts.scheduler.as_deref(),
                opts.pool.as_deref(),
            )
            .map_err(|e| RunError::Serve(e.to_string()))?;
    }
    if let (Some(pool), Some(router)) = (opts.pool.as_deref(), opts.router.as_deref()) {
        if !recovered_pools.contains(pool) {
            service
                .set_router(pool, router)
                .map_err(|e| RunError::Serve(e.to_string()))?;
        }
    }
    // The banner reports the pool's *active* policy (which on a
    // recovered journal may be a runtime flip, not the flag).
    let pool_banner = match opts.pool.as_deref() {
        Some(pool) => format!(
            "; pool @{pool} routed {}",
            service
                .router()
                .policy(pool)
                .map(|p| p.name().to_string())
                .unwrap_or_else(|_| "round-robin".to_string())
        ),
        None => String::new(),
    };
    if opts.trace {
        service.recorder().set_enabled(true);
    }
    let server = Server::bind(opts.addr.as_str(), service, opts.workers)
        .map_err(|e| RunError::Serve(format!("bind {}: {e}", opts.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| RunError::Serve(e.to_string()))?;
    let names: Vec<&str> = machines.iter().map(|(n, _)| n.as_str()).collect();
    eprintln!(
        "commalloc-service listening on {addr} ({} workers); machines [{}] ({}){}{}",
        opts.workers,
        names.join(", "),
        opts.scheduler.as_deref().unwrap_or("fcfs"),
        pool_banner,
        if opts.trace { "; tracing on" } else { "" },
    );
    server.run().map_err(|e| RunError::Serve(e.to_string()))?;
    Ok(String::new())
}

/// Drives a running daemon and reports throughput plus invariant checks.
fn run_loadgen(opts: &LoadgenOptions) -> Result<String, RunError> {
    let config = LoadgenConfig {
        addr: opts.addr.clone(),
        machine: opts.machine.clone(),
        mesh: opts.mesh.clone(),
        scheduler: opts.scheduler.clone(),
        requests: opts.requests,
        connections: opts.connections,
        occupancy: opts.occupancy,
        max_size: opts.max_size,
        max_walltime: opts.max_walltime,
        router: opts.router.clone(),
        pattern: opts
            .pattern
            .as_deref()
            .and_then(commalloc_workload::CommPattern::parse),
        seed: opts.seed,
        no_drain: opts.no_drain,
        claims_out: opts.claims_out.clone(),
    };
    let report = loadgen::run(&config).map_err(RunError::Loadgen)?;
    if report.violations > 0 {
        return Err(RunError::Loadgen(format!(
            "{} occupancy-invariant violations detected",
            report.violations
        )));
    }
    if opts.json {
        serde_json::to_string_pretty(&report.to_json()).map_err(|e| RunError::Json(e.to_string()))
    } else {
        Ok(report.render())
    }
}

/// Verifies a recovered daemon against a saved claim table; a non-zero
/// violation count is an error (the CI crash-recovery gate).
fn run_recovery_check(opts: &RecoveryCheckOptions) -> Result<String, RunError> {
    let report = loadgen::recovery_check(&opts.addr, &opts.claims).map_err(RunError::Loadgen)?;
    if report.violations > 0 {
        return Err(RunError::Loadgen(format!(
            "{} recovery violations (lost grants or resurrected state)",
            report.violations
        )));
    }
    if opts.json {
        serde_json::to_string_pretty(&report).map_err(|e| RunError::Json(e.to_string()))
    } else {
        Ok(report.render())
    }
}

fn load_trace(jobs: usize, seed: u64, swf_path: &Option<String>) -> Result<Trace, RunError> {
    match swf_path {
        Some(path) => swf::parse_file(path).map_err(|e| RunError::Swf(format!("{path}: {e:?}"))),
        None => Ok(if jobs >= 6087 {
            ParagonTraceModel::default().generate(seed)
        } else {
            ParagonTraceModel::scaled(jobs).generate(seed)
        }),
    }
}

fn render_list() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "allocators (paper set marked *):");
    for kind in AllocatorKind::all() {
        let marker = if AllocatorKind::paper_set().contains(&kind) {
            "*"
        } else {
            " "
        };
        let _ = writeln!(out, "  {marker} {}", kind.name());
    }
    let _ = writeln!(out, "\ncommunication patterns (paper set marked *):");
    for pattern in CommPattern::all() {
        let marker = if CommPattern::paper_patterns().contains(&pattern) {
            "*"
        } else {
            " "
        };
        let _ = writeln!(out, "  {marker} {}", pattern.name());
    }
    let _ = writeln!(out, "\ncurves:");
    for curve in CurveKind::all() {
        let _ = writeln!(out, "    {}", curve.name());
    }
    let _ = writeln!(out, "\nschedulers:");
    for scheduler in SchedulerKind::all() {
        let _ = writeln!(out, "    {}", scheduler.name());
    }
    out
}

fn run_simulate(opts: &SimulateOptions) -> Result<String, RunError> {
    let trace = load_trace(opts.jobs, opts.seed, &opts.swf)?
        .filter_fitting(opts.mesh.num_nodes())
        .with_load_factor(opts.load);
    let config = SimConfig::new(opts.mesh, opts.pattern, opts.allocator)
        .with_scheduler(opts.scheduler)
        .with_seed(opts.seed);
    let result = simulate(&trace, &config);
    if opts.json {
        return serde_json::to_string_pretty(&result.summary)
            .map_err(|e| RunError::Json(e.to_string()));
    }
    let profile = UtilizationProfile::from_records(&result.records, opts.mesh.num_nodes());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} jobs on {}x{} | pattern {} | allocator {} | scheduler {} | load {}",
        result.records.len(),
        opts.mesh.width(),
        opts.mesh.height(),
        opts.pattern,
        opts.allocator,
        opts.scheduler.name(),
        opts.load
    );
    let s = &result.summary;
    let _ = writeln!(
        out,
        "  mean response time   {:>12.0} s",
        s.mean_response_time
    );
    let _ = writeln!(out, "  mean waiting time    {:>12.0} s", s.mean_wait_time);
    let _ = writeln!(
        out,
        "  mean running time    {:>12.0} s",
        s.mean_running_time
    );
    let _ = writeln!(out, "  makespan             {:>12.0} s", s.makespan);
    let _ = writeln!(
        out,
        "  contiguous jobs      {:>11.1} %",
        s.percent_contiguous
    );
    let _ = writeln!(out, "  components per job   {:>12.2}", s.avg_components);
    let _ = writeln!(
        out,
        "  mean pairwise dist.  {:>12.2}",
        s.mean_pairwise_distance
    );
    let _ = writeln!(
        out,
        "  mean message dist.   {:>12.2}",
        s.mean_message_distance
    );
    let _ = writeln!(
        out,
        "  mean utilization     {:>11.1} %",
        100.0 * profile.mean_utilization()
    );
    let _ = writeln!(
        out,
        "  mean queue length    {:>12.2}",
        profile.mean_queue_length()
    );
    Ok(out)
}

fn run_sweep(opts: &SweepOptions) -> Result<String, RunError> {
    let trace = load_trace(opts.jobs, opts.seed, &None)?;
    let sweep = LoadSweep {
        mesh: opts.mesh,
        patterns: opts.patterns.clone(),
        allocators: opts.allocators.clone(),
        load_factors: opts.loads.clone(),
        ..LoadSweep::paper_figure(opts.mesh)
    };
    let result = sweep.run(&trace);
    if opts.json {
        return serde_json::to_string_pretty(&result).map_err(|e| RunError::Json(e.to_string()));
    }
    let mut out = String::new();
    for &pattern in &opts.patterns {
        let _ = writeln!(out, "{}", report::response_time_table(&result, pattern));
    }
    Ok(out)
}

fn run_curves(opts: &CurvesOptions) -> String {
    let kinds: Vec<CurveKind> = match opts.curve {
        Some(kind) => vec![kind],
        None => CurveKind::all().to_vec(),
    };
    let mut out = String::new();
    for kind in kinds {
        let curve = CurveOrder::build(kind, opts.mesh);
        let window = opts.window.min(curve.len());
        let locality = window_locality(&curve, window);
        let _ = writeln!(
            out,
            "{} on {}x{}: {} gaps, window-{} avg pairwise distance {:.2}, {:.1}% of windows contiguous",
            kind.name(),
            opts.mesh.width(),
            opts.mesh.height(),
            curve.discontinuities(),
            window,
            locality.mean_pairwise_distance,
            100.0 * locality.contiguous_fraction
        );
        // Rendering a big mesh is still readable (ranks are padded), but keep
        // the gallery output bounded.
        if opts.mesh.num_nodes() <= 1024 {
            let _ = writeln!(out, "{}", curve.render_ascii());
        }
    }
    out
}

/// Online mode of `trace`: toggles or drains the flight recorder of a
/// running daemon.
fn run_trace_online(addr: &str, opts: &TraceOptions) -> Result<String, RunError> {
    let mut client = ServiceClient::connect(addr)
        .map_err(|e| RunError::Trace(format!("connect {addr}: {e}")))?;
    if let Some(enabled) = opts.set {
        let state = client
            .set_trace(enabled)
            .map_err(|e| RunError::Trace(e.to_string()))?;
        return Ok(format!(
            "tracing {}\n",
            if state { "enabled" } else { "disabled" }
        ));
    }
    let dump = client
        .trace_events(opts.limit, opts.clear)
        .map_err(|e| RunError::Trace(e.to_string()))?;
    let rendered = match opts.format.as_str() {
        "chrome" => chrome_trace_json(&dump.events),
        _ => {
            let mut out = String::new();
            for event in &dump.events {
                let line =
                    serde_json::to_string(event).map_err(|e| RunError::Json(e.to_string()))?;
                let _ = writeln!(out, "{line}");
            }
            out
        }
    };
    match &opts.out {
        Some(path) => {
            std::fs::write(path, rendered)
                .map_err(|e| RunError::Trace(format!("write {path}: {e}")))?;
            Ok(format!(
                "wrote {} events to {path} ({} dropped; tracing {})\n",
                dump.events.len(),
                dump.dropped,
                if dump.enabled { "on" } else { "off" }
            ))
        }
        None => Ok(rendered),
    }
}

/// Renders drained span events as a Chrome trace-event JSON array
/// (loadable in `chrome://tracing` / Perfetto). Complete events
/// (`ph: "X"`) on one process, one thread per request id.
fn chrome_trace_json(events: &[Value]) -> String {
    let rendered: Vec<Value> = events
        .iter()
        .map(|event| {
            let mut m = Map::new();
            let stage = event
                .get("stage")
                .and_then(Value::as_str)
                .unwrap_or("event");
            m.insert("name".into(), Value::Str(stage.to_string()));
            m.insert("cat".into(), Value::Str("commalloc".to_string()));
            m.insert("ph".into(), Value::Str("X".to_string()));
            m.insert(
                "ts".into(),
                Value::UInt(event.get("ts_micros").and_then(Value::as_u64).unwrap_or(0)),
            );
            m.insert(
                "dur".into(),
                Value::UInt(event.get("dur_micros").and_then(Value::as_u64).unwrap_or(0)),
            );
            m.insert("pid".into(), Value::UInt(1));
            m.insert(
                "tid".into(),
                Value::UInt(event.get("request").and_then(Value::as_u64).unwrap_or(0)),
            );
            m.insert("args".into(), event.clone());
            Value::Object(m)
        })
        .collect();
    serde_json::to_string(&Value::Array(rendered)).unwrap_or_else(|_| "[]".to_string())
}

fn run_trace(opts: &TraceOptions) -> Result<String, RunError> {
    if let Some(addr) = &opts.addr {
        return run_trace_online(addr, opts);
    }
    let trace = load_trace(opts.jobs, opts.seed, &opts.swf)?;
    let summary = trace.summary();
    let analysis = TraceAnalysis::of(&trace, 12);
    if opts.json {
        return serde_json::to_string_pretty(&(summary, &analysis))
            .map_err(|e| RunError::Json(e.to_string()));
    }
    let mut out = String::new();
    let _ = writeln!(out, "trace: {} jobs", summary.jobs);
    let _ = writeln!(
        out,
        "  interarrival  mean {:>9.0} s   CV {:>5.2}   (paper: 1301 s, CV 3.7)",
        summary.mean_interarrival, summary.cv_interarrival
    );
    let _ = writeln!(
        out,
        "  size          mean {:>9.1}     CV {:>5.2}   (paper: 14.5, CV 1.5)",
        summary.mean_size, summary.cv_size
    );
    let _ = writeln!(
        out,
        "  runtime       mean {:>9.0} s   CV {:>5.2}   (paper: 10944 s, CV 1.13)",
        summary.mean_runtime, summary.cv_runtime
    );
    let _ = writeln!(
        out,
        "  power-of-two sizes: {:.0}% of jobs",
        100.0 * summary.power_of_two_fraction
    );
    let _ = writeln!(
        out,
        "\npower-of-two size spectrum (size: fraction of jobs):"
    );
    for (size, fraction) in &analysis.power_of_two_spectrum {
        let _ = writeln!(out, "  {size:>4}: {:>5.1}%", 100.0 * fraction);
    }
    let _ = writeln!(
        out,
        "\noffered load per window (processors kept busy by arriving work):"
    );
    for (start, load) in &analysis.offered_load {
        let _ = writeln!(out, "  t = {start:>12.0} s: {load:>8.1}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_command;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_list_render() {
        assert!(Command::Help.run().unwrap().contains("simulate"));
        let listing = Command::List.run().unwrap();
        assert!(listing.contains("Hilbert w/BF"));
        assert!(listing.contains("n-body"));
        assert!(listing.contains("EASY backfill"));
    }

    #[test]
    fn simulate_runs_a_tiny_workload() {
        let cmd = parse_command(&args(&[
            "simulate", "--jobs", "20", "--load", "0.8", "--seed", "5",
        ]))
        .unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("mean response time"));
        assert!(out.contains("simulated 20 jobs"));
    }

    #[test]
    fn simulate_json_output_is_parseable() {
        let cmd = parse_command(&args(&["simulate", "--jobs", "10", "--json"])).unwrap();
        let out = cmd.run().unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(value.get("mean_response_time").is_some());
    }

    #[test]
    fn sweep_renders_a_table_per_pattern() {
        let cmd = parse_command(&args(&[
            "sweep",
            "--jobs",
            "15",
            "--loads",
            "1.0",
            "--pattern",
            "all-to-all",
            "--allocator",
            "MC",
        ]))
        .unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("mean response time"));
        assert!(out.contains("MC"));
    }

    #[test]
    fn curves_render_ascii_and_stats() {
        let cmd = parse_command(&args(&["curves", "--mesh", "8x8", "--curve", "hilbert"])).unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("Hilbert on 8x8: 0 gaps"));
        assert!(out.lines().count() > 8, "ASCII grid expected");
    }

    #[test]
    fn trace_statistics_match_the_model() {
        let cmd = parse_command(&args(&["trace", "--jobs", "500", "--seed", "1"])).unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("trace: 500 jobs"));
        assert!(out.contains("power-of-two size spectrum"));
    }

    #[test]
    fn missing_swf_file_is_a_clean_error() {
        let cmd = parse_command(&args(&[
            "trace",
            "--swf",
            "/definitely/not/a/real/file.swf",
        ]))
        .unwrap();
        let err = cmd.run().unwrap_err();
        assert!(matches!(err, RunError::Swf(_)));
        assert!(err.to_string().contains("SWF"));
    }
}
