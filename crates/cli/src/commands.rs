//! Execution of the parsed CLI commands.
//!
//! Each command renders to a `String` (so the output is unit-testable) and
//! the binary simply prints it.

use crate::args::{
    CalibrationOptions, Command, CurvesOptions, FairShareOptions, JobOptions, LoadgenOptions,
    RecoveryCheckOptions, ServeOptions, SimulateOptions, SweepOptions, TenantOptions, TraceOptions,
    WatchOptions, USAGE,
};
use crate::loadgen::{self, LoadgenConfig};
use commalloc::experiment::LoadSweep;
use commalloc::prelude::*;
use commalloc::report;
use commalloc_mesh::locality::window_locality;
use commalloc_service::{
    open_journaled, AllocationService, FsyncPolicy, JournalConfig, Server, ServiceClient,
};
use commalloc_workload::analysis::TraceAnalysis;
use commalloc_workload::swf;
use serde::{Map, Value};
use std::fmt::Write as _;

/// Errors surfaced to the user by command execution.
#[derive(Debug)]
pub enum RunError {
    /// An SWF trace file could not be read or parsed.
    Swf(String),
    /// Results could not be serialised to JSON.
    Json(String),
    /// The allocation daemon could not start or failed while serving.
    Serve(String),
    /// The load generator could not reach or drive the daemon.
    Loadgen(String),
    /// The daemon's flight recorder could not be drained or toggled.
    Trace(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Swf(e) => write!(f, "could not load SWF trace: {e}"),
            RunError::Json(e) => write!(f, "could not serialise results: {e}"),
            RunError::Serve(e) => write!(f, "daemon failed: {e}"),
            RunError::Loadgen(e) => write!(f, "load generation failed: {e}"),
            RunError::Trace(e) => write!(f, "trace failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl Command {
    /// Executes the command and returns its rendered output.
    pub fn run(&self) -> Result<String, RunError> {
        match self {
            Command::Help => Ok(USAGE.to_string()),
            Command::List => Ok(render_list()),
            Command::Simulate(opts) => run_simulate(opts),
            Command::Sweep(opts) => run_sweep(opts),
            Command::Curves(opts) => Ok(run_curves(opts)),
            Command::Trace(opts) => run_trace(opts),
            Command::Serve(opts) => run_serve(opts),
            Command::Loadgen(opts) => run_loadgen(opts),
            Command::RecoveryCheck(opts) => run_recovery_check(opts),
            Command::Tenant(opts) => run_tenant(opts),
            Command::FairShare(opts) => run_fair_share(opts),
            Command::Release(opts) => run_job_op(opts, true),
            Command::Poll(opts) => run_job_op(opts, false),
            Command::Watch(opts) => run_watch(opts),
            Command::Calibration(opts) => run_calibration(opts),
        }
    }
}

/// Starts the allocation daemon and serves until the process is killed.
/// With `--journal`, an existing journal is recovered first and the
/// pre-registration of `--machine`/`--machines` skips machines the
/// journal already rebuilt (restarting with the same flags must not
/// fail on "already registered").
fn run_serve(opts: &ServeOptions) -> Result<String, RunError> {
    let service = match &opts.journal {
        None => AllocationService::new(),
        Some(dir) => {
            let mut config = JournalConfig::default();
            if let Some(fsync) = opts.fsync.as_deref().and_then(FsyncPolicy::parse) {
                config.fsync = fsync;
            }
            if let Some(every) = opts.snapshot_every {
                config.snapshot_every = every;
            }
            let (service, report) = open_journaled(std::path::Path::new(dir), config)
                .map_err(|e| RunError::Serve(format!("journal {dir}: {e}")))?;
            eprintln!(
                "commalloc-service journal at {dir}: epoch {}, {} machine(s) recovered \
                 ({} records applied, {} skipped{}{})",
                report.epoch,
                report.machines,
                report.applied,
                report.skipped,
                if report.snapshot_found {
                    ", from snapshot+tail"
                } else {
                    ""
                },
                if report.torn_tail {
                    "; torn tail dropped"
                } else {
                    ""
                },
            );
            service
        }
    };
    let recovered: std::collections::HashSet<String> = service.list().into_iter().collect();
    // Pools the journal rebuilt, captured before pre-registration adds
    // flag-declared ones: like recovered machines, a recovered pool
    // keeps its journaled routing policy — `--router` seeds only pools
    // the journal did not rebuild, so restarting with the original
    // flags cannot clobber a runtime `set_router` flip.
    let recovered_pools: std::collections::HashSet<String> =
        service.router().pool_names().into_iter().collect();
    let single = [(opts.machine.clone(), opts.mesh.clone())];
    let machines: &[(String, String)] = if opts.machines.is_empty() {
        &single
    } else {
        &opts.machines
    };
    for (name, mesh) in machines {
        if recovered.contains(name) {
            continue;
        }
        service
            .register_in_pool(
                name,
                mesh,
                opts.allocator.as_deref(),
                None,
                opts.scheduler.as_deref(),
                opts.pool.as_deref(),
            )
            .map_err(|e| RunError::Serve(e.to_string()))?;
    }
    if let (Some(pool), Some(router)) = (opts.pool.as_deref(), opts.router.as_deref()) {
        if !recovered_pools.contains(pool) {
            service
                .set_router(pool, router)
                .map_err(|e| RunError::Serve(e.to_string()))?;
        }
    }
    // The banner reports the pool's *active* policy (which on a
    // recovered journal may be a runtime flip, not the flag).
    let pool_banner = match opts.pool.as_deref() {
        Some(pool) => format!(
            "; pool @{pool} routed {}",
            service
                .router()
                .policy(pool)
                .map(|p| p.name().to_string())
                .unwrap_or_else(|_| "round-robin".to_string())
        ),
        None => String::new(),
    };
    if opts.trace {
        service.recorder().set_enabled(true);
    }
    if opts.calibration {
        service.calibration().set_enabled(true);
    }
    let server = Server::bind(opts.addr.as_str(), service, opts.workers)
        .map_err(|e| RunError::Serve(format!("bind {}: {e}", opts.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| RunError::Serve(e.to_string()))?;
    let names: Vec<&str> = machines.iter().map(|(n, _)| n.as_str()).collect();
    eprintln!(
        "commalloc-service listening on {addr} ({} workers); machines [{}] ({}){}{}{}",
        opts.workers,
        names.join(", "),
        opts.scheduler.as_deref().unwrap_or("fcfs"),
        pool_banner,
        if opts.trace { "; tracing on" } else { "" },
        if opts.calibration {
            "; calibration on"
        } else {
            ""
        },
    );
    server.run().map_err(|e| RunError::Serve(e.to_string()))?;
    Ok(String::new())
}

/// Drives a running daemon and reports throughput plus invariant checks.
fn run_loadgen(opts: &LoadgenOptions) -> Result<String, RunError> {
    let config = LoadgenConfig {
        addr: opts.addr.clone(),
        machine: opts.machine.clone(),
        mesh: opts.mesh.clone(),
        scheduler: opts.scheduler.clone(),
        requests: opts.requests,
        connections: opts.connections,
        occupancy: opts.occupancy,
        max_size: opts.max_size,
        max_walltime: opts.max_walltime,
        router: opts.router.clone(),
        pattern: opts
            .pattern
            .as_deref()
            .and_then(commalloc_workload::CommPattern::parse),
        framing: commalloc_service::Framing::parse(&opts.framing)
            .unwrap_or(commalloc_service::Framing::Ndjson),
        seed: opts.seed,
        tenant: opts.tenant.clone(),
        no_drain: opts.no_drain,
        claims_out: opts.claims_out.clone(),
    };
    let report = loadgen::run(&config).map_err(RunError::Loadgen)?;
    if report.violations > 0 {
        return Err(RunError::Loadgen(format!(
            "{} occupancy-invariant violations detected",
            report.violations
        )));
    }
    if opts.json {
        serde_json::to_string_pretty(&report.to_json()).map_err(|e| RunError::Json(e.to_string()))
    } else {
        Ok(report.render())
    }
}

/// Renders the daemon's tenant table as rows (pure for testability).
fn render_tenant_table(tenants: &Value) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>7} {:>12} {:>10} {:>9} {:>7} {:>7} {:>9} {:>12}",
        "tenant",
        "weight",
        "quota",
        "used",
        "admitted",
        "denied",
        "queued",
        "in-flight",
        "outstanding"
    );
    let Value::Object(entries) = tenants else {
        return out;
    };
    for (name, entry) in entries.iter() {
        let num = |key: &str| entry.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        let count = |key: &str| entry.get(key).and_then(Value::as_u64).unwrap_or(0);
        let quota = match entry.get("quota_node_seconds").and_then(Value::as_f64) {
            Some(q) => format!("{q:.0}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<12} {:>7.2} {:>12} {:>10.0} {:>9} {:>7} {:>7} {:>9} {:>12.0}",
            name,
            num("weight"),
            quota,
            num("consumed_node_seconds"),
            count("admitted"),
            count("denied"),
            count("queued"),
            count("in_flight"),
            num("outstanding_node_seconds"),
        );
    }
    out
}

/// `tenant`: configures a tenant (with `--name`) or prints the table.
fn run_tenant(opts: &TenantOptions) -> Result<String, RunError> {
    let mut client = ServiceClient::connect(&opts.addr)
        .map_err(|e| RunError::Trace(format!("connect {}: {e}", opts.addr)))?;
    if let Some(name) = &opts.name {
        let (weight, quota, cap) = client
            .set_tenant(name, opts.weight, opts.quota, opts.max_in_flight)
            .map_err(|e| RunError::Trace(e.to_string()))?;
        return Ok(format!(
            "tenant {name}: weight {weight}, quota {}, max in-flight {}\n",
            quota.map_or_else(|| "none".to_string(), |q| format!("{q}")),
            cap.map_or_else(|| "none".to_string(), |c| format!("{c}")),
        ));
    }
    let tenants = client
        .tenants()
        .map_err(|e| RunError::Trace(e.to_string()))?;
    if opts.json {
        serde_json::to_string_pretty(&tenants).map_err(|e| RunError::Json(e.to_string()))
    } else {
        Ok(render_tenant_table(&tenants))
    }
}

/// `fair-share`: flips weighted fair-share admission on a machine and
/// reports the jobs the re-drain admitted.
fn run_fair_share(opts: &FairShareOptions) -> Result<String, RunError> {
    let mut client = ServiceClient::connect(&opts.addr)
        .map_err(|e| RunError::Trace(format!("connect {}: {e}", opts.addr)))?;
    let granted = client
        .set_fair_share(&opts.machine, opts.enabled)
        .map_err(|e| RunError::Trace(e.to_string()))?;
    Ok(format!(
        "fair-share {} on {} ({} job(s) admitted by the re-drain)\n",
        if opts.enabled { "enabled" } else { "disabled" },
        opts.machine,
        granted.len(),
    ))
}

/// One-shot `release` / `poll` of a job reference (`7`, `m0/7`,
/// `grid/m0/7`) against a machine or `@pool` address.
fn run_job_op(opts: &JobOptions, release: bool) -> Result<String, RunError> {
    let job = commalloc_service::JobRef::parse_str(&opts.job)
        .map_err(|e| RunError::Trace(format!("bad job reference {:?}: {e}", opts.job)))?;
    let mut client = ServiceClient::connect(&opts.addr)
        .map_err(|e| RunError::Trace(format!("connect {}: {e}", opts.addr)))?;
    if release {
        let (machine, granted) = client
            .release_ref(opts.machine.as_deref(), &job)
            .map_err(|e| RunError::Trace(e.to_string()))?;
        let at = machine.map_or_else(String::new, |m| format!(" on {m}"));
        Ok(format!(
            "released job {}{at} ({} job(s) admitted from the queue)\n",
            job.id(),
            granted.len(),
        ))
    } else {
        let (machine, status) = client
            .poll_ref(opts.machine.as_deref(), &job)
            .map_err(|e| RunError::Trace(e.to_string()))?;
        let at = machine.map_or_else(String::new, |m| format!(" on {m}"));
        use commalloc_service::registry::JobStatus;
        Ok(match status {
            JobStatus::Running(nodes) => {
                format!("job {}{at}: running on {} node(s)\n", job.id(), nodes.len())
            }
            JobStatus::Queued(position) => {
                format!("job {}{at}: queued at position {position}\n", job.id())
            }
            JobStatus::Unknown => format!("job {}: unknown\n", job.id()),
        })
    }
}

/// Verifies a recovered daemon against a saved claim table; a non-zero
/// violation count is an error (the CI crash-recovery gate).
fn run_recovery_check(opts: &RecoveryCheckOptions) -> Result<String, RunError> {
    let report = loadgen::recovery_check(&opts.addr, &opts.claims).map_err(RunError::Loadgen)?;
    if report.violations > 0 {
        return Err(RunError::Loadgen(format!(
            "{} recovery violations (lost grants or resurrected state)",
            report.violations
        )));
    }
    if opts.json {
        serde_json::to_string_pretty(&report).map_err(|e| RunError::Json(e.to_string()))
    } else {
        Ok(report.render())
    }
}

fn load_trace(jobs: usize, seed: u64, swf_path: &Option<String>) -> Result<Trace, RunError> {
    match swf_path {
        Some(path) => swf::parse_file(path).map_err(|e| RunError::Swf(format!("{path}: {e:?}"))),
        None => Ok(if jobs >= 6087 {
            ParagonTraceModel::default().generate(seed)
        } else {
            ParagonTraceModel::scaled(jobs).generate(seed)
        }),
    }
}

fn render_list() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "allocators (paper set marked *):");
    for kind in AllocatorKind::all() {
        let marker = if AllocatorKind::paper_set().contains(&kind) {
            "*"
        } else {
            " "
        };
        let _ = writeln!(out, "  {marker} {}", kind.name());
    }
    let _ = writeln!(out, "\ncommunication patterns (paper set marked *):");
    for pattern in CommPattern::all() {
        let marker = if CommPattern::paper_patterns().contains(&pattern) {
            "*"
        } else {
            " "
        };
        let _ = writeln!(out, "  {marker} {}", pattern.name());
    }
    let _ = writeln!(out, "\ncurves:");
    for curve in CurveKind::all() {
        let _ = writeln!(out, "    {}", curve.name());
    }
    let _ = writeln!(out, "\nschedulers:");
    for scheduler in SchedulerKind::all() {
        let _ = writeln!(out, "    {}", scheduler.name());
    }
    out
}

fn run_simulate(opts: &SimulateOptions) -> Result<String, RunError> {
    let trace = load_trace(opts.jobs, opts.seed, &opts.swf)?
        .filter_fitting(opts.mesh.num_nodes())
        .with_load_factor(opts.load);
    let config = SimConfig::new(opts.mesh, opts.pattern, opts.allocator)
        .with_scheduler(opts.scheduler)
        .with_seed(opts.seed);
    let result = simulate(&trace, &config);
    if opts.json {
        return serde_json::to_string_pretty(&result.summary)
            .map_err(|e| RunError::Json(e.to_string()));
    }
    let profile = UtilizationProfile::from_records(&result.records, opts.mesh.num_nodes());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} jobs on {}x{} | pattern {} | allocator {} | scheduler {} | load {}",
        result.records.len(),
        opts.mesh.width(),
        opts.mesh.height(),
        opts.pattern,
        opts.allocator,
        opts.scheduler.name(),
        opts.load
    );
    let s = &result.summary;
    let _ = writeln!(
        out,
        "  mean response time   {:>12.0} s",
        s.mean_response_time
    );
    let _ = writeln!(out, "  mean waiting time    {:>12.0} s", s.mean_wait_time);
    let _ = writeln!(
        out,
        "  mean running time    {:>12.0} s",
        s.mean_running_time
    );
    let _ = writeln!(out, "  makespan             {:>12.0} s", s.makespan);
    let _ = writeln!(
        out,
        "  contiguous jobs      {:>11.1} %",
        s.percent_contiguous
    );
    let _ = writeln!(out, "  components per job   {:>12.2}", s.avg_components);
    let _ = writeln!(
        out,
        "  mean pairwise dist.  {:>12.2}",
        s.mean_pairwise_distance
    );
    let _ = writeln!(
        out,
        "  mean message dist.   {:>12.2}",
        s.mean_message_distance
    );
    let _ = writeln!(
        out,
        "  mean utilization     {:>11.1} %",
        100.0 * profile.mean_utilization()
    );
    let _ = writeln!(
        out,
        "  mean queue length    {:>12.2}",
        profile.mean_queue_length()
    );
    Ok(out)
}

fn run_sweep(opts: &SweepOptions) -> Result<String, RunError> {
    let trace = load_trace(opts.jobs, opts.seed, &None)?;
    let sweep = LoadSweep {
        mesh: opts.mesh,
        patterns: opts.patterns.clone(),
        allocators: opts.allocators.clone(),
        load_factors: opts.loads.clone(),
        ..LoadSweep::paper_figure(opts.mesh)
    };
    let result = sweep.run(&trace);
    if opts.json {
        return serde_json::to_string_pretty(&result).map_err(|e| RunError::Json(e.to_string()));
    }
    let mut out = String::new();
    for &pattern in &opts.patterns {
        let _ = writeln!(out, "{}", report::response_time_table(&result, pattern));
    }
    Ok(out)
}

fn run_curves(opts: &CurvesOptions) -> String {
    let kinds: Vec<CurveKind> = match opts.curve {
        Some(kind) => vec![kind],
        None => CurveKind::all().to_vec(),
    };
    let mut out = String::new();
    for kind in kinds {
        let curve = CurveOrder::build(kind, opts.mesh);
        let window = opts.window.min(curve.len());
        let locality = window_locality(&curve, window);
        let _ = writeln!(
            out,
            "{} on {}x{}: {} gaps, window-{} avg pairwise distance {:.2}, {:.1}% of windows contiguous",
            kind.name(),
            opts.mesh.width(),
            opts.mesh.height(),
            curve.discontinuities(),
            window,
            locality.mean_pairwise_distance,
            100.0 * locality.contiguous_fraction
        );
        // Rendering a big mesh is still readable (ranks are padded), but keep
        // the gallery output bounded.
        if opts.mesh.num_nodes() <= 1024 {
            let _ = writeln!(out, "{}", curve.render_ascii());
        }
    }
    out
}

/// Online mode of `trace`: toggles or drains the flight recorder of a
/// running daemon.
fn run_trace_online(addr: &str, opts: &TraceOptions) -> Result<String, RunError> {
    let mut client = ServiceClient::connect(addr)
        .map_err(|e| RunError::Trace(format!("connect {addr}: {e}")))?;
    if let Some(enabled) = opts.set {
        let state = client
            .set_trace(enabled)
            .map_err(|e| RunError::Trace(e.to_string()))?;
        return Ok(format!(
            "tracing {}\n",
            if state { "enabled" } else { "disabled" }
        ));
    }
    if opts.follow {
        return run_trace_follow(&mut client, opts);
    }
    let dump = client
        .trace_events(opts.limit, opts.clear)
        .map_err(|e| RunError::Trace(e.to_string()))?;
    let rendered = match opts.format.as_str() {
        "chrome" => chrome_trace_json(&dump.events),
        _ => ndjson_lines(dump.events.iter().chain(&dump.decisions))?,
    };
    match &opts.out {
        Some(path) => {
            std::fs::write(path, rendered)
                .map_err(|e| RunError::Trace(format!("write {path}: {e}")))?;
            Ok(format!(
                "wrote {} events and {} decisions to {path} ({} dropped; tracing {})\n",
                dump.events.len(),
                dump.decisions.len(),
                dump.dropped,
                if dump.enabled { "on" } else { "off" }
            ))
        }
        None => Ok(rendered),
    }
}

/// Renders wire values as NDJSON, one per line.
fn ndjson_lines<'a>(values: impl Iterator<Item = &'a Value>) -> Result<String, RunError> {
    let mut out = String::new();
    for value in values {
        let line = serde_json::to_string(value).map_err(|e| RunError::Json(e.to_string()))?;
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

/// `trace --follow`: polls the daemon at `--interval`, draining with
/// `clear` so each span event and decision record streams exactly once,
/// as NDJSON on stdout (or appended to `--out`). Runs until interrupted
/// or the daemon goes away.
fn run_trace_follow(client: &mut ServiceClient, opts: &TraceOptions) -> Result<String, RunError> {
    use std::io::Write as _;
    let interval = std::time::Duration::from_secs_f64(opts.interval);
    let mut sink: Box<dyn std::io::Write> = match &opts.out {
        Some(path) => Box::new(
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| RunError::Trace(format!("open {path}: {e}")))?,
        ),
        None => Box::new(std::io::stdout()),
    };
    loop {
        let dump = client
            .trace_events(opts.limit, true)
            .map_err(|e| RunError::Trace(e.to_string()))?;
        if !dump.events.is_empty() || !dump.decisions.is_empty() {
            let chunk = ndjson_lines(dump.events.iter().chain(&dump.decisions))?;
            sink.write_all(chunk.as_bytes())
                .map_err(|e| RunError::Trace(format!("write: {e}")))?;
            sink.flush()
                .map_err(|e| RunError::Trace(format!("flush: {e}")))?;
        }
        std::thread::sleep(interval);
    }
}

/// Renders drained span events as a Chrome trace-event JSON array
/// (loadable in `chrome://tracing` / Perfetto). Complete events
/// (`ph: "X"`) on one process, one thread per request id.
fn chrome_trace_json(events: &[Value]) -> String {
    let rendered: Vec<Value> = events
        .iter()
        .map(|event| {
            let mut m = Map::new();
            let stage = event
                .get("stage")
                .and_then(Value::as_str)
                .unwrap_or("event");
            m.insert("name".into(), Value::Str(stage.to_string()));
            m.insert("cat".into(), Value::Str("commalloc".to_string()));
            m.insert("ph".into(), Value::Str("X".to_string()));
            m.insert(
                "ts".into(),
                Value::UInt(event.get("ts_micros").and_then(Value::as_u64).unwrap_or(0)),
            );
            m.insert(
                "dur".into(),
                Value::UInt(event.get("dur_micros").and_then(Value::as_u64).unwrap_or(0)),
            );
            m.insert("pid".into(), Value::UInt(1));
            m.insert(
                "tid".into(),
                Value::UInt(event.get("request").and_then(Value::as_u64).unwrap_or(0)),
            );
            m.insert("args".into(), event.clone());
            Value::Object(m)
        })
        .collect();
    serde_json::to_string(&Value::Array(rendered)).unwrap_or_else(|_| "[]".to_string())
}

fn run_trace(opts: &TraceOptions) -> Result<String, RunError> {
    if let Some(addr) = &opts.addr {
        return run_trace_online(addr, opts);
    }
    let trace = load_trace(opts.jobs, opts.seed, &opts.swf)?;
    let summary = trace.summary();
    let analysis = TraceAnalysis::of(&trace, 12);
    if opts.json {
        return serde_json::to_string_pretty(&(summary, &analysis))
            .map_err(|e| RunError::Json(e.to_string()));
    }
    let mut out = String::new();
    let _ = writeln!(out, "trace: {} jobs", summary.jobs);
    let _ = writeln!(
        out,
        "  interarrival  mean {:>9.0} s   CV {:>5.2}   (paper: 1301 s, CV 3.7)",
        summary.mean_interarrival, summary.cv_interarrival
    );
    let _ = writeln!(
        out,
        "  size          mean {:>9.1}     CV {:>5.2}   (paper: 14.5, CV 1.5)",
        summary.mean_size, summary.cv_size
    );
    let _ = writeln!(
        out,
        "  runtime       mean {:>9.0} s   CV {:>5.2}   (paper: 10944 s, CV 1.13)",
        summary.mean_runtime, summary.cv_runtime
    );
    let _ = writeln!(
        out,
        "  power-of-two sizes: {:.0}% of jobs",
        100.0 * summary.power_of_two_fraction
    );
    let _ = writeln!(
        out,
        "\npower-of-two size spectrum (size: fraction of jobs):"
    );
    for (size, fraction) in &analysis.power_of_two_spectrum {
        let _ = writeln!(out, "  {size:>4}: {:>5.1}%", 100.0 * fraction);
    }
    let _ = writeln!(
        out,
        "\noffered load per window (processors kept busy by arriving work):"
    );
    for (start, load) in &analysis.offered_load {
        let _ = writeln!(out, "  t = {start:>12.0} s: {load:>8.1}");
    }
    Ok(out)
}

/// Summary scalars of a wire-serialized [`LogLinearHistogram`]:
/// `(count, mean, p99, max)`. The p99 is the nearest-rank estimate over
/// the sparse `[lower, upper, count]` bucket triples (midpoint of the
/// selected bucket), matching the server-side quantile definition.
fn hist_stats(value: &Value) -> (u64, f64, f64, f64) {
    let count = value.get("count").and_then(Value::as_u64).unwrap_or(0);
    if count == 0 {
        return (0, 0.0, 0.0, 0.0);
    }
    let sum = value.get("sum").and_then(Value::as_f64).unwrap_or(0.0);
    let max = value.get("max").and_then(Value::as_f64).unwrap_or(0.0);
    let mut p99 = max;
    if let Some(buckets) = value.get("buckets").and_then(Value::as_array) {
        let rank = ((0.99 * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for bucket in buckets {
            let Some(triple) = bucket.as_array() else {
                continue;
            };
            let lo = triple.first().and_then(Value::as_f64).unwrap_or(0.0);
            let hi = triple.get(1).and_then(Value::as_f64);
            let c = triple.get(2).and_then(Value::as_u64).unwrap_or(0);
            seen += c;
            if seen >= rank {
                p99 = match hi {
                    Some(hi) => (lo + hi) / 2.0,
                    None => lo,
                };
                break;
            }
        }
    }
    (count, sum / count as f64, p99, max)
}

/// Renders one `watch` dashboard frame from a windowed JSON metrics
/// snapshot. Pure so the layout is unit-testable.
fn render_watch_frame(metrics: &Value, addr: &str, window: &str, frame: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "commalloc watch  {addr}  window {window}  frame {frame}"
    );
    if let Some(server) = metrics.get("server") {
        let counter = |name: &str| server.get(name).and_then(Value::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "  server   requests {}  errors {}  protocol_errors {}  connections {}  \
             comm_fallbacks {}",
            counter("requests"),
            counter("errors"),
            counter("protocol_errors"),
            counter("connections"),
            counter("route_comm_fallbacks"),
        );
    }
    if let Some(tracing) = metrics.get("tracing") {
        let flag = |name: &str| {
            if tracing.get(name).and_then(Value::as_bool).unwrap_or(false) {
                "on"
            } else {
                "off"
            }
        };
        let _ = writeln!(
            out,
            "  tracing  {}  calibration {}  dropped_spans_total {}",
            flag("enabled"),
            flag("calibration"),
            tracing
                .get("dropped_spans_total")
                .and_then(Value::as_u64)
                .unwrap_or(0),
        );
    }
    if let Some(Value::Object(stages)) = metrics.get("stages") {
        let _ = writeln!(out, "  stages (latency, micros):");
        for (stage, histogram) in stages.iter() {
            let (count, mean, p99, max) = hist_stats(histogram);
            let _ = writeln!(
                out,
                "    {stage:<12} count {count:>8}  mean {mean:>10.1}  p99 {p99:>10.1}  \
                 max {max:>10.1}"
            );
        }
    }
    if let Some(Value::Object(tenants)) = metrics.get("tenants") {
        if !tenants.is_empty() {
            let _ = writeln!(out, "  tenants:");
            for (tenant, entry) in tenants.iter() {
                let count = |name: &str| entry.get(name).and_then(Value::as_u64).unwrap_or(0);
                let quota = match entry.get("quota_node_seconds").and_then(Value::as_f64) {
                    Some(q) => format!("{q:.0}"),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    out,
                    "    {tenant:<12} weight {:<6.2} quota {quota:<10} admitted {:>7}  \
                     denied {:>5}  queued {:>5}  in-flight {:>4}  outstanding {:>10.0}",
                    entry.get("weight").and_then(Value::as_f64).unwrap_or(1.0),
                    count("admitted"),
                    count("denied"),
                    count("queued"),
                    count("in_flight"),
                    entry
                        .get("outstanding_node_seconds")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0),
                );
            }
        }
    }
    if let Some(Value::Object(pools)) = metrics.get("pools") {
        if !pools.is_empty() {
            let _ = writeln!(out, "  pools (route latency, micros):");
            for (pool, entry) in pools.iter() {
                let policy = entry
                    .get("policy")
                    .and_then(Value::as_str)
                    .unwrap_or("round-robin");
                let (count, mean, p99, max) =
                    hist_stats(entry.get("route_latency_micros").unwrap_or(&Value::Null));
                let _ = writeln!(
                    out,
                    "    {pool:<12} policy {policy:<14} routed {count:>8}  mean {mean:>10.1}  \
                     p99 {p99:>10.1}  max {max:>10.1}"
                );
            }
        }
    }
    out
}

/// `watch`: polls a running daemon's windowed metrics and renders a
/// live text dashboard, one frame per `--interval`.
fn run_watch(opts: &WatchOptions) -> Result<String, RunError> {
    use std::io::Write as _;
    let mut client = ServiceClient::connect(&opts.addr)
        .map_err(|e| RunError::Trace(format!("connect {}: {e}", opts.addr)))?;
    let interval = std::time::Duration::from_secs_f64(opts.interval);
    let mut frame = 0usize;
    loop {
        let metrics = client
            .metrics_windowed("json", Some(&opts.window))
            .map_err(|e| RunError::Trace(e.to_string()))?;
        frame += 1;
        let rendered = render_watch_frame(&metrics, &opts.addr, &opts.window, frame);
        if opts.count == Some(frame) {
            // The final frame flows through the normal print path, so
            // bounded runs (tests, smoke checks) capture it cleanly.
            return Ok(rendered);
        }
        let mut stdout = std::io::stdout();
        let _ = writeln!(stdout, "{rendered}");
        let _ = stdout.flush();
        std::thread::sleep(interval);
    }
}

/// Renders the calibration report as a human-readable table. Pure so
/// the layout is unit-testable.
fn render_calibration_report(report: &Value) -> String {
    let mut out = String::new();
    let enabled = report
        .get("enabled")
        .and_then(Value::as_bool)
        .unwrap_or(false);
    let joined = report.get("joined").and_then(Value::as_u64).unwrap_or(0);
    let _ = writeln!(
        out,
        "placement calibration: {} ({} joined records)",
        if enabled { "recording" } else { "paused" },
        joined
    );
    let Some(cells) = report.get("cells").and_then(Value::as_array) else {
        return out;
    };
    if cells.is_empty() {
        let _ = writeln!(
            out,
            "  no cells yet (drive patterned allocations with calibration enabled)"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "  {:<12} {:<14} {:>7} {:>6} {:>9} {:>12} {:>12} {:>11}",
        "pattern", "policy", "joined", "cand", "rank-corr", "pred-mean", "held-mean", "disp-mean"
    );
    for cell in cells {
        let field = |name: &str| cell.get(name).and_then(Value::as_str).unwrap_or("?");
        let Some(c) = cell.get("calibration") else {
            continue;
        };
        let rho = match c.get("rank_correlation").and_then(Value::as_f64) {
            Some(rho) => format!("{rho:>9.3}"),
            None => format!("{:>9}", "-"),
        };
        let mean_of = |name: &str| {
            let (count, mean, _, _) = hist_stats(c.get(name).unwrap_or(&Value::Null));
            if count == 0 {
                "-".to_string()
            } else {
                format!("{mean:.2}")
            }
        };
        let _ = writeln!(
            out,
            "  {:<12} {:<14} {:>7} {:>6.1} {} {:>12} {:>12} {:>11}",
            field("pattern"),
            field("policy"),
            c.get("joined").and_then(Value::as_u64).unwrap_or(0),
            c.get("candidates_mean")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            rho,
            mean_of("predicted"),
            mean_of("realized_held"),
            mean_of("realized_dispersal"),
        );
    }
    out
}

/// `calibration`: prints a running daemon's placement calibration
/// report (predicted-vs-realized histograms and rank correlations).
fn run_calibration(opts: &CalibrationOptions) -> Result<String, RunError> {
    let mut client = ServiceClient::connect(&opts.addr)
        .map_err(|e| RunError::Trace(format!("connect {}: {e}", opts.addr)))?;
    let report = client
        .calibration()
        .map_err(|e| RunError::Trace(e.to_string()))?;
    if opts.json {
        serde_json::to_string_pretty(&report).map_err(|e| RunError::Json(e.to_string()))
    } else {
        Ok(render_calibration_report(&report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_command;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_list_render() {
        assert!(Command::Help.run().unwrap().contains("simulate"));
        let listing = Command::List.run().unwrap();
        assert!(listing.contains("Hilbert w/BF"));
        assert!(listing.contains("n-body"));
        assert!(listing.contains("EASY backfill"));
    }

    #[test]
    fn simulate_runs_a_tiny_workload() {
        let cmd = parse_command(&args(&[
            "simulate", "--jobs", "20", "--load", "0.8", "--seed", "5",
        ]))
        .unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("mean response time"));
        assert!(out.contains("simulated 20 jobs"));
    }

    #[test]
    fn simulate_json_output_is_parseable() {
        let cmd = parse_command(&args(&["simulate", "--jobs", "10", "--json"])).unwrap();
        let out = cmd.run().unwrap();
        let value: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(value.get("mean_response_time").is_some());
    }

    #[test]
    fn sweep_renders_a_table_per_pattern() {
        let cmd = parse_command(&args(&[
            "sweep",
            "--jobs",
            "15",
            "--loads",
            "1.0",
            "--pattern",
            "all-to-all",
            "--allocator",
            "MC",
        ]))
        .unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("mean response time"));
        assert!(out.contains("MC"));
    }

    #[test]
    fn curves_render_ascii_and_stats() {
        let cmd = parse_command(&args(&["curves", "--mesh", "8x8", "--curve", "hilbert"])).unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("Hilbert on 8x8: 0 gaps"));
        assert!(out.lines().count() > 8, "ASCII grid expected");
    }

    #[test]
    fn trace_statistics_match_the_model() {
        let cmd = parse_command(&args(&["trace", "--jobs", "500", "--seed", "1"])).unwrap();
        let out = cmd.run().unwrap();
        assert!(out.contains("trace: 500 jobs"));
        assert!(out.contains("power-of-two size spectrum"));
    }

    #[test]
    fn watch_frame_renders_counters_stages_and_pools() {
        let metrics: Value = serde_json::from_str(
            r#"{
                "server": {"requests": 12, "errors": 0, "protocol_errors": 0,
                           "connections": 2, "route_comm_fallbacks": 3},
                "tracing": {"enabled": true, "calibration": true,
                            "dropped_spans_total": 7},
                "window": "10s",
                "stages": {"parse": {"count": 4, "sum": 8.0, "min": 1.0,
                                     "max": 3.0, "scale": 1000.0,
                                     "buckets": [[1.0, 3.0, 4]]}},
                "pools": {"grid": {"policy": "comm-aware",
                                   "route_latency_micros": {"count": 2, "sum": 10.0,
                                       "min": 4.0, "max": 6.0, "scale": 1.0,
                                       "buckets": [[4.0, 6.0, 2]]}}}
            }"#,
        )
        .unwrap();
        let frame = render_watch_frame(&metrics, "h:1", "10s", 3);
        assert!(frame.contains("window 10s  frame 3"));
        assert!(frame.contains("requests 12"));
        assert!(frame.contains("comm_fallbacks 3"));
        assert!(frame.contains("dropped_spans_total 7"));
        assert!(frame.contains("calibration on"));
        assert!(frame.contains("parse"));
        assert!(frame.contains("policy comm-aware"));
        // Histogram summary math: mean 5.0, p99 = bucket midpoint.
        let (count, mean, p99, max) = hist_stats(
            metrics
                .get("pools")
                .and_then(|p| p.get("grid"))
                .and_then(|g| g.get("route_latency_micros"))
                .unwrap(),
        );
        assert_eq!(count, 2);
        assert_eq!(mean, 5.0);
        assert_eq!(p99, 5.0);
        assert_eq!(max, 6.0);
        assert_eq!(hist_stats(&Value::Null), (0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn calibration_report_renders_cells_and_handles_null_correlation() {
        let report: Value = serde_json::from_str(
            r#"{
                "enabled": true, "joined": 5,
                "cells": [{
                    "pattern": "ring", "policy": "comm-aware",
                    "calibration": {
                        "joined": 5, "candidates_mean": 2.4,
                        "rank_correlation": 0.75, "correlation_pairs": 5,
                        "predicted": {"count": 5, "sum": 10.0, "min": 1.0,
                                      "max": 3.0, "scale": 1000.0, "buckets": []},
                        "realized_held": {"count": 5, "sum": 50.0, "min": 5.0,
                                          "max": 15.0, "scale": 1000.0, "buckets": []},
                        "held_ratio": {"count": 0, "sum": 0.0, "min": 0.0,
                                       "max": 0.0, "scale": 1000.0, "buckets": []},
                        "queue_wait": {"count": 5, "sum": 0.0, "min": 0.0,
                                       "max": 0.0, "scale": 1000.0, "buckets": []},
                        "realized_dispersal": {"count": 5, "sum": 20.0, "min": 2.0,
                                               "max": 6.0, "scale": 1000.0, "buckets": []}
                    }
                }]
            }"#,
        )
        .unwrap();
        let rendered = render_calibration_report(&report);
        assert!(rendered.contains("recording (5 joined records)"));
        assert!(rendered.contains("ring"));
        assert!(rendered.contains("comm-aware"));
        assert!(rendered.contains("0.750"));

        let empty: Value =
            serde_json::from_str(r#"{"enabled": false, "joined": 0, "cells": []}"#).unwrap();
        let rendered = render_calibration_report(&empty);
        assert!(rendered.contains("paused (0 joined records)"));
        assert!(rendered.contains("no cells yet"));
    }

    #[test]
    fn missing_swf_file_is_a_clean_error() {
        let cmd = parse_command(&args(&[
            "trace",
            "--swf",
            "/definitely/not/a/real/file.swf",
        ]))
        .unwrap();
        let err = cmd.run().unwrap_err();
        assert!(matches!(err, RunError::Swf(_)));
        assert!(err.to_string().contains("SWF"));
    }
}
