//! The `commalloc` command-line driver.
//!
//! All behaviour lives in the library (`commalloc_cli`) so it can be tested;
//! this binary only wires arguments to [`commalloc_cli::parse_command`] and
//! prints the result.

use commalloc_cli::{parse_command, ParseError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_command(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("error: {err}");
            if !matches!(err, ParseError::MissingCommand) {
                eprintln!("run `commalloc help` for usage");
            } else {
                eprintln!("{}", commalloc_cli::args::USAGE);
            }
            std::process::exit(2);
        }
    };
    match command.run() {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
