//! System-utilization and queue-length accounting.
//!
//! The paper judges allocators by mean response time, but its motivation is
//! machine *throughput*: "The quality of an allocator is ultimately judged by
//! the throughput of the managed system." This module derives the
//! throughput-side view from the per-job records a simulation produces — the
//! time-weighted processor utilization, the queue-length profile, and the
//! loss of utilization caused by allocators that make jobs wait (the
//! contiguous baselines) — without requiring any extra instrumentation in
//! the engine.

use crate::stats::JobRecord;
use serde::{Deserialize, Serialize};

/// One breakpoint of a right-continuous step function over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepPoint {
    /// Time of the change.
    pub time: f64,
    /// Value from this time (inclusive) until the next breakpoint.
    pub value: f64,
}

/// A piecewise-constant time series (utilization or queue length).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepSeries {
    points: Vec<StepPoint>,
    end: f64,
}

impl StepSeries {
    /// Builds a step series from `(time, delta)` events: the value starts at
    /// zero and changes by `delta` at each event time. `end` bounds the
    /// series (events after `end` are still applied at their time but the
    /// integral stops at `end`).
    fn from_deltas(mut deltas: Vec<(f64, f64)>, end: f64) -> Self {
        deltas.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut points = Vec::with_capacity(deltas.len() + 1);
        let mut value = 0.0;
        let mut i = 0usize;
        points.push(StepPoint { time: 0.0, value });
        while i < deltas.len() {
            let t = deltas[i].0;
            while i < deltas.len() && deltas[i].0 == t {
                value += deltas[i].1;
                i += 1;
            }
            points.push(StepPoint { time: t, value });
        }
        StepSeries { points, end }
    }

    /// The breakpoints of the series.
    pub fn points(&self) -> &[StepPoint] {
        &self.points
    }

    /// The end of the observation window.
    pub fn end(&self) -> f64 {
        self.end
    }

    /// The value at time `t` (right-continuous).
    pub fn value_at(&self, t: f64) -> f64 {
        let mut value = 0.0;
        for p in &self.points {
            if p.time <= t {
                value = p.value;
            } else {
                break;
            }
        }
        value
    }

    /// The time-weighted mean of the series over `[0, end]`.
    pub fn time_weighted_mean(&self) -> f64 {
        if self.end <= 0.0 {
            return 0.0;
        }
        let mut integral = 0.0;
        for pair in self.points.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let to = b.time.min(self.end);
            if to > a.time {
                integral += a.value * (to - a.time);
            }
        }
        if let Some(last) = self.points.last() {
            if self.end > last.time {
                integral += last.value * (self.end - last.time);
            }
        }
        integral / self.end
    }

    /// The maximum value attained over the window.
    pub fn peak(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.time <= self.end)
            .map(|p| p.value)
            .fold(0.0f64, f64::max)
    }
}

/// Utilization and queueing profile of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationProfile {
    /// Number of processors of the machine.
    pub num_nodes: usize,
    /// Busy-processor count over time.
    pub busy: StepSeries,
    /// Number of queued (arrived but not yet started) jobs over time.
    pub queued: StepSeries,
}

impl UtilizationProfile {
    /// Builds the profile from per-job records. The observation window ends
    /// at the last completion (the makespan); an empty record set yields an
    /// all-zero profile.
    pub fn from_records(records: &[JobRecord], num_nodes: usize) -> Self {
        assert!(num_nodes > 0, "machine must have at least one processor");
        let makespan = records.iter().map(|r| r.completion).fold(0.0f64, f64::max);
        let mut busy_deltas = Vec::with_capacity(records.len() * 2);
        let mut queue_deltas = Vec::with_capacity(records.len() * 2);
        for r in records {
            busy_deltas.push((r.start, r.size as f64));
            busy_deltas.push((r.completion, -(r.size as f64)));
            queue_deltas.push((r.arrival, 1.0));
            queue_deltas.push((r.start, -1.0));
        }
        UtilizationProfile {
            num_nodes,
            busy: StepSeries::from_deltas(busy_deltas, makespan),
            queued: StepSeries::from_deltas(queue_deltas, makespan),
        }
    }

    /// Time-weighted mean utilization in `[0, 1]` over the makespan.
    pub fn mean_utilization(&self) -> f64 {
        self.busy.time_weighted_mean() / self.num_nodes as f64
    }

    /// Peak utilization in `[0, 1]`.
    pub fn peak_utilization(&self) -> f64 {
        self.busy.peak() / self.num_nodes as f64
    }

    /// Time-weighted mean number of queued jobs.
    pub fn mean_queue_length(&self) -> f64 {
        self.queued.time_weighted_mean()
    }

    /// Peak number of queued jobs.
    pub fn peak_queue_length(&self) -> f64 {
        self.queued.peak()
    }

    /// Total processor-seconds of demand (Σ size · running time) divided by
    /// the machine's capacity over the makespan — identical to
    /// [`UtilizationProfile::mean_utilization`] up to floating-point error,
    /// exposed as a cross-check for tests.
    pub fn demand_fraction(&self, records: &[JobRecord]) -> f64 {
        let demand: f64 = records
            .iter()
            .map(|r| r.size as f64 * r.running_time())
            .sum();
        let capacity = self.num_nodes as f64 * self.busy.end();
        if capacity <= 0.0 {
            0.0
        } else {
            demand / capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, arrival: f64, start: f64, completion: f64, size: usize) -> JobRecord {
        JobRecord {
            job_id: id,
            size,
            messages: 10,
            arrival,
            start,
            completion,
            avg_pairwise_distance: 1.0,
            avg_message_distance: 1.0,
            components: 1,
        }
    }

    #[test]
    fn single_job_profile() {
        // One 8-processor job busy from t=10 to t=110 on a 16-node machine;
        // makespan 110.
        let records = vec![record(0, 0.0, 10.0, 110.0, 8)];
        let profile = UtilizationProfile::from_records(&records, 16);
        assert_eq!(profile.busy.value_at(5.0), 0.0);
        assert_eq!(profile.busy.value_at(10.0), 8.0);
        assert_eq!(profile.busy.value_at(109.9), 8.0);
        assert_eq!(profile.busy.value_at(110.0), 0.0);
        // 8 busy processors for 100 of 110 seconds.
        let expected = 8.0 * 100.0 / (16.0 * 110.0);
        assert!((profile.mean_utilization() - expected).abs() < 1e-9);
        assert!((profile.peak_utilization() - 0.5).abs() < 1e-12);
        // The job queued from t=0 to t=10.
        assert!((profile.mean_queue_length() - 10.0 / 110.0).abs() < 1e-9);
        assert_eq!(profile.peak_queue_length(), 1.0);
        // Cross-check against direct demand accounting.
        assert!((profile.demand_fraction(&records) - profile.mean_utilization()).abs() < 1e-9);
    }

    #[test]
    fn overlapping_jobs_stack() {
        let records = vec![
            record(0, 0.0, 0.0, 100.0, 4),
            record(1, 0.0, 50.0, 150.0, 4),
        ];
        let profile = UtilizationProfile::from_records(&records, 8);
        assert_eq!(profile.busy.value_at(25.0), 4.0);
        assert_eq!(profile.busy.value_at(75.0), 8.0);
        assert_eq!(profile.busy.value_at(125.0), 4.0);
        assert!((profile.peak_utilization() - 1.0).abs() < 1e-12);
        // Integral: 4*50 + 8*50 + 4*50 = 800 over 8 * 150 capacity.
        assert!((profile.mean_utilization() - 800.0 / 1200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_records_give_a_zero_profile() {
        let profile = UtilizationProfile::from_records(&[], 64);
        assert_eq!(profile.mean_utilization(), 0.0);
        assert_eq!(profile.peak_utilization(), 0.0);
        assert_eq!(profile.mean_queue_length(), 0.0);
        assert_eq!(profile.demand_fraction(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_node_machine_is_rejected() {
        UtilizationProfile::from_records(&[], 0);
    }

    #[test]
    fn queue_length_counts_simultaneous_waiters() {
        // Three jobs arrive at t=0 but start back-to-back.
        let records = vec![
            record(0, 0.0, 0.0, 10.0, 8),
            record(1, 0.0, 10.0, 20.0, 8),
            record(2, 0.0, 20.0, 30.0, 8),
        ];
        let profile = UtilizationProfile::from_records(&records, 8);
        assert_eq!(profile.peak_queue_length(), 2.0);
        assert_eq!(profile.queued.value_at(5.0), 2.0);
        assert_eq!(profile.queued.value_at(15.0), 1.0);
        assert_eq!(profile.queued.value_at(25.0), 0.0);
        assert!((profile.mean_utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn step_series_value_and_peak_are_consistent() {
        let s = StepSeries::from_deltas(vec![(1.0, 2.0), (3.0, -1.0), (5.0, 4.0)], 6.0);
        assert_eq!(s.value_at(0.0), 0.0);
        assert_eq!(s.value_at(1.0), 2.0);
        assert_eq!(s.value_at(4.0), 1.0);
        assert_eq!(s.value_at(5.5), 5.0);
        assert_eq!(s.peak(), 5.0);
        // Integral 0*1 + 2*2 + 1*2 + 5*1 = 11 over 6.
        assert!((s.time_weighted_mean() - 11.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.end(), 6.0);
        assert!(!s.points().is_empty());
    }
}
