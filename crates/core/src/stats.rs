//! Per-job records and simulation summaries.

use commalloc_alloc::metrics::ContiguityStats;
use serde::{Deserialize, Serialize};

/// Everything recorded about one simulated job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Trace identifier.
    pub job_id: u64,
    /// Processors used.
    pub size: usize,
    /// Message quota (one message per second of trace runtime).
    pub messages: u64,
    /// Arrival time (seconds).
    pub arrival: f64,
    /// Time the job started running (allocation time).
    pub start: f64,
    /// Time the job finished.
    pub completion: f64,
    /// Average pairwise Manhattan distance of the allocation (the dispersion
    /// metric of Figures 1 and 9).
    pub avg_pairwise_distance: f64,
    /// Average hops travelled by the job's messages (the metric of Figure 10).
    pub avg_message_distance: f64,
    /// Number of rectilinear components of the allocation.
    pub components: usize,
}

impl JobRecord {
    /// Queueing delay: `start − arrival`.
    pub fn wait_time(&self) -> f64 {
        self.start - self.arrival
    }

    /// Running time: `completion − start` (what Figures 9 and 10 plot).
    pub fn running_time(&self) -> f64 {
        self.completion - self.start
    }

    /// Response time: `completion − arrival` (what Figures 7 and 8 plot).
    pub fn response_time(&self) -> f64 {
        self.completion - self.arrival
    }

    /// True when the allocation was a single rectilinear component.
    pub fn contiguous(&self) -> bool {
        self.components == 1
    }

    /// Slowdown of the communication phase relative to the contention-free
    /// duration (the message quota in seconds).
    pub fn comm_slowdown(&self) -> f64 {
        self.running_time() / self.messages as f64
    }
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Number of jobs simulated.
    pub jobs: usize,
    /// Mean response time over all jobs (seconds) — the paper's headline
    /// metric.
    pub mean_response_time: f64,
    /// Mean queueing delay (seconds).
    pub mean_wait_time: f64,
    /// Mean running time (seconds).
    pub mean_running_time: f64,
    /// Mean allocation dispersion (average pairwise distance).
    pub mean_pairwise_distance: f64,
    /// Mean message distance.
    pub mean_message_distance: f64,
    /// Percentage of jobs allocated contiguously (Figure 11, column 1).
    pub percent_contiguous: f64,
    /// Average number of components per job (Figure 11, column 2).
    pub avg_components: f64,
    /// Completion time of the last job (makespan).
    pub makespan: f64,
}

impl SimSummary {
    /// Builds the summary from per-job records.
    pub fn from_records(records: &[JobRecord]) -> Self {
        let n = records.len();
        if n == 0 {
            return SimSummary {
                jobs: 0,
                mean_response_time: 0.0,
                mean_wait_time: 0.0,
                mean_running_time: 0.0,
                mean_pairwise_distance: 0.0,
                mean_message_distance: 0.0,
                percent_contiguous: 0.0,
                avg_components: 0.0,
                makespan: 0.0,
            };
        }
        let nf = n as f64;
        let mut contiguity = ContiguityStats::new();
        for r in records {
            contiguity.record(&commalloc_alloc::AllocationQuality {
                size: r.size,
                avg_pairwise_distance: r.avg_pairwise_distance,
                components: r.components,
                contiguous: r.contiguous(),
            });
        }
        SimSummary {
            jobs: n,
            mean_response_time: records.iter().map(JobRecord::response_time).sum::<f64>() / nf,
            mean_wait_time: records.iter().map(JobRecord::wait_time).sum::<f64>() / nf,
            mean_running_time: records.iter().map(JobRecord::running_time).sum::<f64>() / nf,
            mean_pairwise_distance: records.iter().map(|r| r.avg_pairwise_distance).sum::<f64>()
                / nf,
            mean_message_distance: records.iter().map(|r| r.avg_message_distance).sum::<f64>() / nf,
            percent_contiguous: contiguity.percent_contiguous(),
            avg_components: contiguity.avg_components(),
            makespan: records.iter().map(|r| r.completion).fold(0.0f64, f64::max),
        }
    }
}

/// Pearson correlation coefficient between two equally long series — used to
/// quantify the Figure 9 vs Figure 10 contrast (running time correlates with
/// message distance but not with pairwise distance).
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "series must have equal length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, arrival: f64, start: f64, completion: f64, components: usize) -> JobRecord {
        JobRecord {
            job_id: id,
            size: 4,
            messages: 100,
            arrival,
            start,
            completion,
            avg_pairwise_distance: 2.0,
            avg_message_distance: 1.5,
            components,
        }
    }

    #[test]
    fn job_record_derived_times() {
        let r = record(1, 10.0, 30.0, 130.0, 1);
        assert_eq!(r.wait_time(), 20.0);
        assert_eq!(r.running_time(), 100.0);
        assert_eq!(r.response_time(), 120.0);
        assert!(r.contiguous());
        assert!((r.comm_slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn summary_aggregates_means_and_contiguity() {
        let records = vec![
            record(1, 0.0, 0.0, 100.0, 1),
            record(2, 0.0, 50.0, 250.0, 2),
        ];
        let s = SimSummary::from_records(&records);
        assert_eq!(s.jobs, 2);
        assert!((s.mean_response_time - (100.0 + 250.0) / 2.0).abs() < 1e-9);
        assert!((s.mean_wait_time - 25.0).abs() < 1e-9);
        assert!((s.percent_contiguous - 50.0).abs() < 1e-9);
        assert!((s.avg_components - 1.5).abs() < 1e-9);
        assert_eq!(s.makespan, 250.0);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = SimSummary::from_records(&[]);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.mean_response_time, 0.0);
    }

    #[test]
    fn pearson_correlation_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson_correlation(&xs, &ys) - 1.0).abs() < 1e-12);
        let inv = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&xs, &inv) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson_correlation(&xs, &flat), 0.0);
        assert_eq!(pearson_correlation(&[1.0], &[2.0]), 0.0);
    }
}
