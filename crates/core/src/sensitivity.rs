//! Sensitivity of the allocator ranking to the calibration knobs.
//!
//! The paper's claims are *ordinal*: which allocator is best for which
//! pattern, not how many seconds it saves. Our fluid contention model has
//! two calibration knobs (`link_capacity` and `per_hop_overhead`, see
//! DESIGN.md §2), so EXPERIMENTS.md must show that the reported orderings do
//! not hinge on the exact values chosen. This module provides the machinery:
//! run the same (pattern, allocators, load) experiment across a sweep of one
//! knob and report the rank correlation (Kendall's τ) between each setting's
//! allocator ranking and the baseline's. τ close to 1 means the ordering is
//! insensitive to the knob; τ near 0 means the conclusion would be an
//! artefact of calibration.

use crate::engine::{simulate, SimConfig};
use commalloc_alloc::AllocatorKind;
use commalloc_workload::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Kendall's τ-a rank correlation between two paired samples.
///
/// Returns a value in `[-1, 1]`; 1 for identical orderings, −1 for reversed
/// orderings, and 0 when the samples have fewer than two pairs or either
/// sample is constant. Ties contribute zero to the numerator (τ-a).
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples must be paired");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in i + 1..n {
            let dx = xs[i] - xs[j];
            let dy = ys[i] - ys[j];
            let product = dx * dy;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    if pairs == 0.0 {
        return 0.0;
    }
    (concordant - discordant) as f64 / pairs
}

/// Kendall's τ between two allocator rankings expressed as
/// `(allocator, mean response time)` lists. Only allocators present in both
/// rankings are compared.
pub fn ranking_correlation(a: &[(AllocatorKind, f64)], b: &[(AllocatorKind, f64)]) -> f64 {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &(kind, value_a) in a {
        if let Some(&(_, value_b)) = b.iter().find(|(k, _)| *k == kind) {
            xs.push(value_a);
            ys.push(value_b);
        }
    }
    kendall_tau(&xs, &ys)
}

/// Which calibration knob a sensitivity study varies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Knob {
    /// The fluid model's link capacity (message-crossings per second).
    LinkCapacity,
    /// The per-hop overhead charged against each message.
    PerHopOverhead,
}

impl Knob {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Knob::LinkCapacity => "link capacity",
            Knob::PerHopOverhead => "per-hop overhead",
        }
    }
}

/// One row of a sensitivity study: the knob value, the allocator ranking it
/// produces, and that ranking's correlation with the baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// The knob value used for this row.
    pub value: f64,
    /// Allocators with their mean response times, sorted best (lowest) first.
    pub ranking: Vec<(AllocatorKind, f64)>,
    /// Kendall's τ against the baseline ranking.
    pub tau_vs_baseline: f64,
}

/// A sensitivity study of the allocator ranking against one knob.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityStudy {
    /// The knob varied.
    pub knob: Knob,
    /// The baseline configuration's knob value.
    pub baseline_value: f64,
    /// The baseline ranking.
    pub baseline_ranking: Vec<(AllocatorKind, f64)>,
    /// One point per alternative knob value.
    pub points: Vec<SensitivityPoint>,
}

impl SensitivityStudy {
    /// Runs the study: simulates `trace` under `base` for every allocator in
    /// `allocators`, once per knob `value` (plus the baseline value already
    /// in `base`), and correlates each resulting ranking with the baseline's.
    pub fn run(
        base: &SimConfig,
        allocators: &[AllocatorKind],
        trace: &Trace,
        knob: Knob,
        values: &[f64],
    ) -> Self {
        let baseline_value = match knob {
            Knob::LinkCapacity => base.link_capacity,
            Knob::PerHopOverhead => base.per_hop_overhead,
        };
        let baseline_ranking = Self::ranking(base, allocators, trace);
        let points: Vec<SensitivityPoint> = values
            .iter()
            .map(|&value| {
                let mut config = *base;
                match knob {
                    Knob::LinkCapacity => config.link_capacity = value,
                    Knob::PerHopOverhead => config.per_hop_overhead = value,
                }
                let ranking = Self::ranking(&config, allocators, trace);
                let tau = ranking_correlation(&baseline_ranking, &ranking);
                SensitivityPoint {
                    value,
                    ranking,
                    tau_vs_baseline: tau,
                }
            })
            .collect();
        SensitivityStudy {
            knob,
            baseline_value,
            baseline_ranking,
            points,
        }
    }

    /// The minimum τ over all studied values: how badly the ordering can
    /// degrade within the studied range.
    pub fn worst_tau(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.tau_vs_baseline)
            .fold(1.0f64, f64::min)
    }

    fn ranking(
        config: &SimConfig,
        allocators: &[AllocatorKind],
        trace: &Trace,
    ) -> Vec<(AllocatorKind, f64)> {
        let mut ranking: Vec<(AllocatorKind, f64)> = allocators
            .par_iter()
            .map(|&allocator| {
                let config = SimConfig {
                    allocator,
                    ..*config
                };
                let result = simulate(trace, &config);
                (allocator, result.summary.mean_response_time)
            })
            .collect();
        ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
        ranking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Mesh2D;
    use commalloc_workload::synthetic::ParagonTraceModel;
    use commalloc_workload::CommPattern;

    #[test]
    fn kendall_tau_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&xs, &[2.0, 4.0, 6.0, 8.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&xs, &[8.0, 6.0, 4.0, 2.0]) + 1.0).abs() < 1e-12);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
        assert_eq!(kendall_tau(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
        // One swapped adjacent pair out of six: tau = (5 - 1) / 6.
        let tau = kendall_tau(&xs, &[1.0, 2.0, 4.0, 3.0]);
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn kendall_tau_requires_equal_lengths() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn ranking_correlation_uses_common_allocators_only() {
        let a = vec![
            (AllocatorKind::HilbertBestFit, 1.0),
            (AllocatorKind::Mc, 2.0),
            (AllocatorKind::GenAlg, 3.0),
        ];
        let b = vec![
            (AllocatorKind::Mc, 5.0),
            (AllocatorKind::HilbertBestFit, 4.0),
        ];
        // Over the two common allocators the orderings agree.
        assert!((ranking_correlation(&a, &b) - 1.0).abs() < 1e-12);
        let b_reversed = vec![
            (AllocatorKind::Mc, 1.0),
            (AllocatorKind::HilbertBestFit, 4.0),
        ];
        assert!((ranking_correlation(&a, &b_reversed) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn study_reports_tau_one_for_identical_knob_values() {
        let trace = ParagonTraceModel::scaled(25).generate(3);
        let base = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        );
        let allocators = [AllocatorKind::HilbertBestFit, AllocatorKind::Mc1x1];
        let study = SensitivityStudy::run(
            &base,
            &allocators,
            &trace,
            Knob::LinkCapacity,
            &[base.link_capacity],
        );
        assert_eq!(study.points.len(), 1);
        assert!((study.points[0].tau_vs_baseline - 1.0).abs() < 1e-12);
        assert!((study.worst_tau() - 1.0).abs() < 1e-12);
        assert_eq!(study.baseline_ranking.len(), 2);
    }

    #[test]
    fn study_varies_the_requested_knob() {
        let trace = ParagonTraceModel::scaled(15).generate(9);
        let base = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::NBody,
            AllocatorKind::HilbertBestFit,
        );
        let allocators = [AllocatorKind::HilbertBestFit, AllocatorKind::Random];
        let study = SensitivityStudy::run(
            &base,
            &allocators,
            &trace,
            Knob::PerHopOverhead,
            &[0.0, 0.2],
        );
        assert_eq!(study.knob.name(), "per-hop overhead");
        assert_eq!(study.points.len(), 2);
        assert_eq!(study.baseline_value, base.per_hop_overhead);
        for p in &study.points {
            assert_eq!(p.ranking.len(), 2);
            assert!(p.tau_vs_baseline >= -1.0 && p.tau_vs_baseline <= 1.0);
        }
    }
}
