//! Rendering and persisting experiment results.
//!
//! The figure binaries print the same rows/series the paper plots and also
//! write machine-readable JSON under `target/experiments/` so EXPERIMENTS.md
//! numbers can be regenerated and re-plotted externally.

use crate::experiment::{ExperimentPoint, SweepResult};
use commalloc_alloc::AllocatorKind;
use commalloc_workload::CommPattern;
use serde::Serialize;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Renders one pattern's response-time series as a text table:
/// one row per allocator, one column per load factor (the layout of
/// Figures 7 and 8).
pub fn response_time_table(result: &SweepResult, pattern: CommPattern) -> String {
    let mut loads: Vec<f64> = result
        .points
        .iter()
        .filter(|p| p.pattern == pattern)
        .map(|p| p.load_factor)
        .collect();
    loads.sort_by(|a, b| a.total_cmp(b));
    loads.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut allocators: Vec<AllocatorKind> = result
        .points
        .iter()
        .filter(|p| p.pattern == pattern)
        .map(|p| p.allocator)
        .collect();
    allocators.sort_by_key(|a| a.name());
    allocators.dedup();

    let mut out = String::new();
    out.push_str(&format!(
        "mean response time (seconds), pattern = {pattern}\n"
    ));
    out.push_str(&format!("{:<16}", "allocator"));
    for load in &loads {
        out.push_str(&format!("  load {load:<6.1}"));
    }
    out.push('\n');
    for allocator in &allocators {
        out.push_str(&format!("{:<16}", allocator.name()));
        for load in &loads {
            match result.response_time(pattern, *allocator, *load) {
                Some(rt) => out.push_str(&format!("  {rt:>11.0}")),
                None => out.push_str(&format!("  {:>11}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the Figure 11 table: percent of jobs allocated contiguously and
/// average number of components, per allocator, for the given pattern and
/// load factor.
pub fn contiguity_table(result: &SweepResult, pattern: CommPattern, load_factor: f64) -> String {
    let mut rows: Vec<&ExperimentPoint> = result
        .points
        .iter()
        .filter(|p| p.pattern == pattern && (p.load_factor - load_factor).abs() < 1e-9)
        .collect();
    // The paper sorts Figure 11 by percent contiguous, best first.
    rows.sort_by(|a, b| b.percent_contiguous.total_cmp(&a.percent_contiguous));
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16}{:>14}{:>18}\n",
        "Algorithm", "% contiguous", "Ave. components"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<16}{:>13.1}%{:>18.2}\n",
            row.allocator.name(),
            row.percent_contiguous,
            row.avg_components
        ));
    }
    out
}

/// The directory experiment artefacts are written to
/// (`target/experiments/` relative to the workspace root, honouring
/// `CARGO_TARGET_DIR` when set).
pub fn experiments_dir() -> PathBuf {
    let target = std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_string());
    Path::new(&target).join("experiments")
}

/// Serialises `value` as pretty JSON to `target/experiments/<name>.json`,
/// creating the directory when needed, and returns the path written.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    file.write_all(json.as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

/// Writes a simple CSV with the given header and rows.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<PathBuf> {
    let dir = experiments_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{header}")?;
    for row in rows {
        writeln!(file, "{row}")?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_mesh::Mesh2D;

    fn fake_result() -> SweepResult {
        let mk = |allocator, load, rt, pc, ac| ExperimentPoint {
            pattern: CommPattern::AllToAll,
            allocator,
            load_factor: load,
            mean_response_time: rt,
            mean_running_time: rt / 2.0,
            percent_contiguous: pc,
            avg_components: ac,
            mean_pairwise_distance: 2.0,
            mean_message_distance: 1.5,
        };
        SweepResult {
            mesh: Mesh2D::square_16x16(),
            points: vec![
                mk(AllocatorKind::HilbertBestFit, 1.0, 1000.0, 81.3, 1.33),
                mk(AllocatorKind::HilbertBestFit, 0.2, 5000.0, 80.0, 1.40),
                mk(AllocatorKind::Mc, 1.0, 1200.0, 68.5, 1.91),
                mk(AllocatorKind::Mc, 0.2, 6000.0, 67.0, 2.00),
            ],
        }
    }

    #[test]
    fn response_table_contains_all_allocators_and_loads() {
        let table = response_time_table(&fake_result(), CommPattern::AllToAll);
        assert!(table.contains("Hilbert w/BF"));
        assert!(table.contains("MC"));
        assert!(table.contains("load 0.2"));
        assert!(table.contains("load 1.0"));
        assert!(table.contains("5000"));
    }

    #[test]
    fn contiguity_table_is_sorted_best_first() {
        let table = contiguity_table(&fake_result(), CommPattern::AllToAll, 1.0);
        let hilbert_pos = table.find("Hilbert w/BF").unwrap();
        let mc_pos = table.find("MC").unwrap();
        assert!(hilbert_pos < mc_pos, "higher contiguity must come first");
        assert!(table.contains("81.3%"));
    }

    #[test]
    fn write_json_and_csv_round_trip() {
        let dir = tempdir();
        std::env::set_var("CARGO_TARGET_DIR", &dir);
        let path = write_json("unit_test_report", &vec![1, 2, 3]).unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains('1'));
        let csv = write_csv("unit_test_report", "a,b", &["1,2".to_string()]).unwrap();
        let contents = std::fs::read_to_string(&csv).unwrap();
        assert!(contents.starts_with("a,b"));
        std::env::remove_var("CARGO_TARGET_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn tempdir() -> String {
        let dir =
            std::env::temp_dir().join(format!("commalloc-report-test-{}", std::process::id()));
        dir.to_string_lossy().into_owned()
    }
}
