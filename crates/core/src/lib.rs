//! # commalloc
//!
//! A trace-driven microsimulator for studying how processor-allocation
//! strategies interact with job communication patterns on space-shared mesh
//! machines — a Rust reproduction of *Communication Patterns and Allocation
//! Strategies* (Leung, Bunde & Mache, SAND2003-4522 / IPPS 2004).
//!
//! The crate ties together the substrates of the workspace:
//!
//! * [`commalloc_mesh`] — mesh topology and space-filling curves;
//! * [`commalloc_alloc`] — the allocation algorithms the paper evaluates
//!   (curve-based one-dimensional reduction, Gen-Alg, MC, MC1x1);
//! * [`commalloc_workload`] — the SDSC-Paragon-like trace and the
//!   communication patterns (all-to-all, n-body, random);
//! * [`commalloc_net`] — the contention models (flit-level wormhole,
//!   message-level, fluid max-min fair).
//!
//! and adds the pieces the experiments need on top: a First-Come-First-Serve
//! [`scheduler`], the event-driven [`engine`] that replays a trace against a
//! chosen allocator/pattern/fidelity, per-job [`stats`], and an
//! [`experiment`] layer that runs the paper's parameter sweeps in parallel
//! and renders their tables ([`report`]).
//!
//! # Quickstart
//!
//! ```
//! use commalloc::prelude::*;
//!
//! // A small synthetic trace, the square machine, all-to-all traffic,
//! // allocated with Hilbert + Best Fit.
//! let trace = ParagonTraceModel::scaled(60).generate(7);
//! let config = SimConfig::new(Mesh2D::square_16x16(), CommPattern::AllToAll,
//!                             AllocatorKind::HilbertBestFit);
//! let result = simulate(&trace, &config);
//! assert_eq!(result.records.len(), 60);
//! println!("mean response time: {:.0} s", result.summary.mean_response_time);
//! ```

pub mod engine;
pub mod experiment;
pub mod report;
pub mod scheduler;
pub mod sensitivity;
pub mod stats;
pub mod utilization;

/// Convenience re-exports for examples and binaries.
pub mod prelude {
    pub use crate::engine::{
        simulate, simulate_logged, Fidelity, GrantEvent, SimConfig, SimResult,
    };
    pub use crate::experiment::{ExperimentPoint, LoadSweep, SweepResult};
    pub use crate::scheduler::SchedulerKind;
    pub use crate::sensitivity::{kendall_tau, Knob, SensitivityStudy};
    pub use crate::stats::{JobRecord, SimSummary};
    pub use crate::utilization::UtilizationProfile;
    pub use commalloc_alloc::{AllocatorKind, MachineState};
    pub use commalloc_mesh::{curve::CurveKind, curve::CurveOrder, Mesh2D};
    pub use commalloc_workload::synthetic::ParagonTraceModel;
    pub use commalloc_workload::{CommPattern, Trace};
}

pub use engine::{simulate, simulate_logged, Fidelity, GrantEvent, SimConfig, SimResult};
pub use scheduler::SchedulerKind;
pub use stats::{JobRecord, SimSummary};
pub use utilization::UtilizationProfile;
