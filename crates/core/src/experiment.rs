//! Parameter sweeps over loads, allocators and patterns.
//!
//! This is the layer the figure-regeneration binaries and the benchmark
//! harness call into: a [`LoadSweep`] describes one of the paper's response-
//! time experiments (a mesh, a set of communication patterns, a set of
//! allocators and the five load factors) and [`LoadSweep::run`] executes
//! every combination — in parallel with rayon, since the individual
//! simulations are deterministic and independent.

use crate::engine::{simulate, Fidelity, SimConfig, SimResult};
use crate::scheduler::SchedulerKind;
use commalloc_alloc::AllocatorKind;
use commalloc_mesh::Mesh2D;
use commalloc_workload::{CommPattern, Trace};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The paper's five load factors, highest load (0.2) first as plotted.
pub const PAPER_LOAD_FACTORS: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

/// One configuration point of a sweep and its headline results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Communication pattern.
    pub pattern: CommPattern,
    /// Allocation algorithm.
    pub allocator: AllocatorKind,
    /// Load factor applied to the trace (smaller = heavier load).
    pub load_factor: f64,
    /// Mean response time in seconds (the y-axis of Figures 7 and 8).
    pub mean_response_time: f64,
    /// Mean running (communication) time in seconds.
    pub mean_running_time: f64,
    /// Percentage of jobs allocated contiguously (Figure 11).
    pub percent_contiguous: f64,
    /// Average number of components per allocation (Figure 11).
    pub avg_components: f64,
    /// Mean allocation dispersion.
    pub mean_pairwise_distance: f64,
    /// Mean message distance.
    pub mean_message_distance: f64,
}

impl ExperimentPoint {
    /// Builds the point from a finished simulation.
    pub fn from_result(load_factor: f64, result: &SimResult) -> Self {
        ExperimentPoint {
            pattern: result.config.pattern,
            allocator: result.config.allocator,
            load_factor,
            mean_response_time: result.summary.mean_response_time,
            mean_running_time: result.summary.mean_running_time,
            percent_contiguous: result.summary.percent_contiguous,
            avg_components: result.summary.avg_components,
            mean_pairwise_distance: result.summary.mean_pairwise_distance,
            mean_message_distance: result.summary.mean_message_distance,
        }
    }
}

/// A full sweep: the cross product of patterns, allocators and load factors
/// on one mesh and one base trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSweep {
    /// The machine.
    pub mesh: Mesh2D,
    /// Patterns to simulate (the paper uses all-to-all, n-body and random).
    pub patterns: Vec<CommPattern>,
    /// Allocators to compare.
    pub allocators: Vec<AllocatorKind>,
    /// Load factors (arrival-time contraction factors).
    pub load_factors: Vec<f64>,
    /// Scheduler (FCFS in the paper).
    pub scheduler: SchedulerKind,
    /// Contention model.
    pub fidelity: Fidelity,
    /// Link capacity for the fluid model.
    pub link_capacity: f64,
    /// Per-hop overhead charged against each job's message pacing.
    pub per_hop_overhead: f64,
    /// Simulation seed.
    pub seed: u64,
}

impl LoadSweep {
    /// The paper's Figure 7/8 sweep on `mesh`: three patterns, the nine
    /// plotted allocators, five load factors.
    pub fn paper_figure(mesh: Mesh2D) -> Self {
        LoadSweep {
            mesh,
            patterns: CommPattern::paper_patterns().to_vec(),
            allocators: AllocatorKind::paper_set().to_vec(),
            load_factors: PAPER_LOAD_FACTORS.to_vec(),
            scheduler: SchedulerKind::Fcfs,
            fidelity: Fidelity::Fluid,
            link_capacity: crate::engine::DEFAULT_LINK_CAPACITY,
            per_hop_overhead: crate::engine::DEFAULT_PER_HOP_OVERHEAD,
            seed: 0x1eaf,
        }
    }

    /// Number of simulation runs the sweep will execute.
    pub fn num_runs(&self) -> usize {
        self.patterns.len() * self.allocators.len() * self.load_factors.len()
    }

    /// Runs every configuration against `trace` (the *unscaled* trace; load
    /// factors are applied per point). Configurations run in parallel.
    ///
    /// Jobs that do not fit the mesh are removed first, exactly as the paper
    /// removes the 320-node jobs for the 16 × 16 machine.
    pub fn run(&self, trace: &Trace) -> SweepResult {
        let base = trace.filter_fitting(self.mesh.num_nodes());
        let configs: Vec<(CommPattern, AllocatorKind, f64)> = self
            .patterns
            .iter()
            .flat_map(|&p| {
                self.allocators
                    .iter()
                    .flat_map(move |&a| self.load_factors.iter().map(move |&l| (p, a, l)))
            })
            .collect();
        let points: Vec<ExperimentPoint> = configs
            .par_iter()
            .map(|&(pattern, allocator, load)| {
                let scaled = base.with_load_factor(load);
                let config = SimConfig {
                    mesh: self.mesh,
                    pattern,
                    allocator,
                    scheduler: self.scheduler,
                    fidelity: self.fidelity,
                    link_capacity: self.link_capacity,
                    per_hop_overhead: self.per_hop_overhead,
                    seed: self.seed,
                };
                let result = simulate(&scaled, &config);
                ExperimentPoint::from_result(load, &result)
            })
            .collect();
        SweepResult {
            mesh: self.mesh,
            points,
        }
    }
}

/// The collected points of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// The machine the sweep ran on.
    pub mesh: Mesh2D,
    /// One point per (pattern, allocator, load factor).
    pub points: Vec<ExperimentPoint>,
}

impl SweepResult {
    /// The points for one pattern, sorted by allocator then load.
    pub fn for_pattern(&self, pattern: CommPattern) -> Vec<&ExperimentPoint> {
        let mut points: Vec<&ExperimentPoint> = self
            .points
            .iter()
            .filter(|p| p.pattern == pattern)
            .collect();
        points.sort_by(|a, b| {
            a.allocator
                .name()
                .cmp(b.allocator.name())
                .then(a.load_factor.total_cmp(&b.load_factor))
        });
        points
    }

    /// The mean response time of a specific configuration, if present.
    pub fn response_time(
        &self,
        pattern: CommPattern,
        allocator: AllocatorKind,
        load_factor: f64,
    ) -> Option<f64> {
        self.points
            .iter()
            .find(|p| {
                p.pattern == pattern
                    && p.allocator == allocator
                    && (p.load_factor - load_factor).abs() < 1e-9
            })
            .map(|p| p.mean_response_time)
    }

    /// Ranks allocators (best first) by mean response time averaged over all
    /// load factors for `pattern` — the ordering the paper reports in prose.
    pub fn ranking(&self, pattern: CommPattern) -> Vec<(AllocatorKind, f64)> {
        use std::collections::HashMap;
        let mut sums: HashMap<AllocatorKind, (f64, usize)> = HashMap::new();
        for p in self.points.iter().filter(|p| p.pattern == pattern) {
            let entry = sums.entry(p.allocator).or_insert((0.0, 0));
            entry.0 += p.mean_response_time;
            entry.1 += 1;
        }
        let mut ranking: Vec<(AllocatorKind, f64)> = sums
            .into_iter()
            .map(|(a, (sum, n))| (a, sum / n as f64))
            .collect();
        ranking.sort_by(|a, b| a.1.total_cmp(&b.1));
        ranking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_workload::synthetic::ParagonTraceModel;

    fn small_sweep() -> LoadSweep {
        LoadSweep {
            mesh: Mesh2D::square_16x16(),
            patterns: vec![CommPattern::AllToAll, CommPattern::NBody],
            allocators: vec![AllocatorKind::HilbertBestFit, AllocatorKind::Mc],
            load_factors: vec![1.0, 0.5],
            scheduler: SchedulerKind::Fcfs,
            fidelity: Fidelity::Fluid,
            link_capacity: 1.0,
            per_hop_overhead: 0.05,
            seed: 1,
        }
    }

    #[test]
    fn sweep_produces_one_point_per_configuration() {
        let trace = ParagonTraceModel::scaled(40).generate(2);
        let sweep = small_sweep();
        assert_eq!(sweep.num_runs(), 8);
        let result = sweep.run(&trace);
        assert_eq!(result.points.len(), 8);
        assert_eq!(result.for_pattern(CommPattern::AllToAll).len(), 4);
        assert!(result
            .response_time(CommPattern::NBody, AllocatorKind::Mc, 0.5)
            .is_some());
        assert!(result
            .response_time(CommPattern::Random, AllocatorKind::Mc, 0.5)
            .is_none());
    }

    #[test]
    fn higher_load_never_improves_response_time() {
        let trace = ParagonTraceModel::scaled(80).generate(9);
        let sweep = LoadSweep {
            patterns: vec![CommPattern::AllToAll],
            allocators: vec![AllocatorKind::HilbertBestFit],
            load_factors: vec![1.0, 0.2],
            ..small_sweep()
        };
        let result = sweep.run(&trace);
        let light = result
            .response_time(CommPattern::AllToAll, AllocatorKind::HilbertBestFit, 1.0)
            .unwrap();
        let heavy = result
            .response_time(CommPattern::AllToAll, AllocatorKind::HilbertBestFit, 0.2)
            .unwrap();
        assert!(
            heavy >= light,
            "contracting arrivals (load 0.2) should not reduce response time: {heavy} < {light}"
        );
    }

    #[test]
    fn ranking_orders_by_mean_response() {
        let trace = ParagonTraceModel::scaled(40).generate(4);
        let result = small_sweep().run(&trace);
        let ranking = result.ranking(CommPattern::AllToAll);
        assert_eq!(ranking.len(), 2);
        assert!(ranking[0].1 <= ranking[1].1);
    }

    #[test]
    fn paper_figure_sweep_has_135_points() {
        let sweep = LoadSweep::paper_figure(Mesh2D::paragon_16x22());
        assert_eq!(sweep.num_runs(), 3 * 9 * 5);
    }
}
