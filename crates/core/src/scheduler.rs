//! Job scheduling policies.
//!
//! The paper deliberately fixes the scheduler: "Since our focus is on
//! allocation rather than scheduling, we scheduled using First Come, First
//! Serve (FCFS) in all our simulations." FCFS is therefore the default and
//! the policy used by every figure reproduction; an aggressive-backfill
//! variant is provided as an extension to test whether the allocator ranking
//! is sensitive to the scheduling policy (see DESIGN.md §5).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A job waiting in the scheduler queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuedJob {
    /// Trace identifier of the job.
    pub job_id: u64,
    /// Processors requested.
    pub size: usize,
    /// Arrival time (for bookkeeping; FCFS keeps the queue in arrival order).
    pub arrival: f64,
    /// The job's runtime estimate in seconds, used only by the EASY
    /// backfilling extension (FCFS ignores it). The simulator supplies the
    /// trace runtime, i.e. a perfect estimate.
    pub estimate: f64,
}

/// A snapshot of one running job, as seen by the reservation-based
/// schedulers: when it is expected to finish and how many processors it will
/// release.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningSnapshot {
    /// Predicted completion time given current network rates.
    pub completion: f64,
    /// Processors the job will release.
    pub size: usize,
}

/// Scheduling policies available to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedulerKind {
    /// Strict First Come, First Serve: the head of the queue blocks all jobs
    /// behind it until enough processors are free (the paper's policy).
    #[default]
    Fcfs,
    /// Aggressive backfilling: the first queued job that fits starts, even if
    /// earlier jobs are still waiting (extension, not used by the paper).
    FirstFitBackfill,
    /// EASY backfilling: the head of the queue holds a reservation at the
    /// earliest time enough processors will be free; later jobs may only
    /// start if they fit now *and* do not delay that reservation (extension,
    /// not used by the paper).
    EasyBackfill,
    /// Conservative backfilling: *every* queued job holds a reservation in
    /// a shared [`ReservationTable`], assigned in queue order; a candidate
    /// may only start now if doing so cannot delay the reservation of any
    /// job ahead of it (extension, not used by the paper). Strictly fairer
    /// than EASY — jobs deep in the queue are protected, not just the head
    /// — at the cost of fewer backfill opportunities.
    Conservative,
}

impl SchedulerKind {
    /// Number of scheduling policies, derived from an exhaustive match:
    /// adding a `SchedulerKind` variant fails to compile here, which in
    /// turn forces [`SchedulerKind::all`] (whose array length is this
    /// constant) to be extended — the test matrices that iterate `all()`
    /// can never silently narrow.
    pub const COUNT: usize = match SchedulerKind::Fcfs {
        SchedulerKind::Fcfs
        | SchedulerKind::FirstFitBackfill
        | SchedulerKind::EasyBackfill
        | SchedulerKind::Conservative => 4,
    };

    /// The scheduling policies implemented, in presentation order. The
    /// length is [`SchedulerKind::COUNT`], which an exhaustive match pins
    /// to the variant count — see there.
    pub fn all() -> [SchedulerKind; SchedulerKind::COUNT] {
        [
            SchedulerKind::Fcfs,
            SchedulerKind::FirstFitBackfill,
            SchedulerKind::EasyBackfill,
            SchedulerKind::Conservative,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FirstFitBackfill => "first-fit backfill",
            SchedulerKind::EasyBackfill => "EASY backfill",
            SchedulerKind::Conservative => "conservative backfill",
        }
    }

    /// True when the policy's start decision reads the running-job
    /// snapshots (the reservation-based policies). Callers that build
    /// the snapshot list lazily key on this — the match is exhaustive so
    /// a new variant forces a decision here, not a silent empty input.
    pub fn uses_running_snapshots(&self) -> bool {
        match self {
            SchedulerKind::Fcfs | SchedulerKind::FirstFitBackfill => false,
            SchedulerKind::EasyBackfill | SchedulerKind::Conservative => true,
        }
    }

    /// True when the policy may start a job other than the queue head
    /// (so callers must present the whole queue, not just the head).
    pub fn scans_whole_queue(&self) -> bool {
        match self {
            SchedulerKind::Fcfs => false,
            SchedulerKind::FirstFitBackfill
            | SchedulerKind::EasyBackfill
            | SchedulerKind::Conservative => true,
        }
    }

    /// Parses a scheduler spec: the full [`SchedulerKind::name`]
    /// (case-insensitive) or the short aliases `fcfs`, `backfill`,
    /// `easy` and `conservative` used by the CLI and the service
    /// protocol.
    pub fn parse(spec: &str) -> Option<SchedulerKind> {
        let spec = spec.trim();
        SchedulerKind::all()
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(spec))
            .or(match spec.to_ascii_lowercase().as_str() {
                "fcfs" => Some(SchedulerKind::Fcfs),
                "backfill" | "first-fit" | "firstfit" => Some(SchedulerKind::FirstFitBackfill),
                "easy" => Some(SchedulerKind::EasyBackfill),
                "conservative" | "cons" => Some(SchedulerKind::Conservative),
                _ => None,
            })
    }

    /// Selects the index of the next queued job to start given `free`
    /// processors, or `None` if nothing may start.
    ///
    /// The reservation-based policies (EASY, conservative) need the
    /// running-job snapshots and the current time to compute their
    /// reservations; use [`SchedulerKind::select_with_context`] for them.
    /// Calling `select` on either falls back to the conservative FCFS
    /// decision (only the head may start).
    pub fn select(&self, queue: &[QueuedJob], free: usize) -> Option<usize> {
        match self {
            SchedulerKind::Fcfs | SchedulerKind::EasyBackfill | SchedulerKind::Conservative => {
                match queue.first() {
                    Some(head) if head.size <= free => Some(0),
                    _ => None,
                }
            }
            SchedulerKind::FirstFitBackfill => queue.iter().position(|j| j.size <= free),
        }
    }

    /// Selects the index of the next queued job to start, given the current
    /// time and the predicted completions of the running jobs.
    ///
    /// For FCFS and aggressive backfilling this is identical to
    /// [`SchedulerKind::select`]; EASY backfilling uses the extra context to
    /// compute the head job's reservation (shadow time) and backfills only
    /// jobs that cannot delay it; conservative backfilling reserves a start
    /// for *every* queued job in queue order and starts the first job whose
    /// reservation is due now — which, by construction, cannot delay the
    /// reservation of any job ahead of it.
    pub fn select_with_context(
        &self,
        queue: &[QueuedJob],
        free: usize,
        running: &[RunningSnapshot],
        now: f64,
    ) -> Option<usize> {
        match self {
            SchedulerKind::Fcfs | SchedulerKind::FirstFitBackfill => self.select(queue, free),
            SchedulerKind::EasyBackfill => {
                let head = queue.first()?;
                if head.size <= free {
                    return Some(0);
                }
                let (shadow_time, extra) = Self::reservation(head.size, free, running)?;
                queue
                    .iter()
                    .skip(1)
                    .position(|candidate| {
                        candidate.size <= free
                            && (now + candidate.estimate <= shadow_time || candidate.size <= extra)
                    })
                    // `position` on the skipped iterator is relative to index 1.
                    .map(|i| i + 1)
            }
            SchedulerKind::Conservative => {
                let mut table = ReservationTable::new(free, running, now);
                for (at, job) in queue.iter().enumerate() {
                    let start = table.earliest_start(job.size, job.estimate);
                    if start <= now && job.size <= free {
                        // The job's reservation is due right now and the
                        // processors really are free (the profile can
                        // predict capacity at `now` that an overrunning
                        // job has not actually released yet — the extra
                        // `size <= free` check keeps the pick honest).
                        // Every job ahead already holds its carved
                        // reservation, so starting this one cannot delay
                        // any of them.
                        return Some(at);
                    }
                    if !start.is_finite() {
                        // This job's start depends on terminations the
                        // profile cannot predict (jobs running without a
                        // finite estimate). Like EASY's unbounded
                        // reservation, everything behind it is denied —
                        // letting later jobs leapfrog an unplannable
                        // reservation is exactly the starvation
                        // conservative backfilling exists to prevent.
                        return None;
                    }
                    table.reserve_at(start, job.size, job.estimate);
                }
                None
            }
        }
    }

    /// The start-time guarantee conservative backfilling assigns to every
    /// queued job: job `i`'s reservation is the earliest start that fits
    /// the availability profile *after* jobs `0..i` carved theirs, in
    /// queue order. `f64::INFINITY` marks a job whose start depends on
    /// unplannable terminations (a running job without a finite
    /// estimate); every job behind such a reservation is unplannable too.
    ///
    /// This is the table the property tests pin the no-delay/no-starvation
    /// guarantees against, and the introspection hook for dashboards; the
    /// select path ([`SchedulerKind::select_with_context`]) recomputes the
    /// same table per decision because predicted completions drift with
    /// network rates — a cached table would go stale between events.
    pub fn reservations(
        queue: &[QueuedJob],
        free: usize,
        running: &[RunningSnapshot],
        now: f64,
    ) -> Vec<f64> {
        let mut table = ReservationTable::new(free, running, now);
        let mut starts = Vec::with_capacity(queue.len());
        let mut unplannable = false;
        for job in queue {
            let start = if unplannable {
                f64::INFINITY
            } else {
                table.earliest_start(job.size, job.estimate)
            };
            if start.is_finite() {
                table.reserve_at(start, job.size, job.estimate);
            } else {
                unplannable = true;
            }
            starts.push(start);
        }
        starts
    }

    /// Computes the EASY reservation for a head job of `head_size`
    /// processors: the *shadow time* at which enough processors will have
    /// been released for it to start, and the number of `extra` processors
    /// that remain free at that moment (backfill jobs no larger than `extra`
    /// can never delay the reservation, whatever their runtime).
    ///
    /// Returns `None` when even draining every running job would not free
    /// enough processors (the head job can then only start thanks to future
    /// arrivals terminating, which EASY treats as an unbounded reservation —
    /// no backfill is allowed). The same applies when the decisive release
    /// has a non-finite predicted completion (a running job without a
    /// walltime estimate, as the online service models it): a reservation
    /// at `t = ∞` is no reservation, so backfill is denied rather than
    /// allowed to starve the head.
    ///
    /// This is public as the reusable core of EASY: the online service's
    /// admission queue calls it with live running-job estimates, and the
    /// property tests pin its no-delay/no-starvation guarantees directly.
    /// The sort is stable, so jobs with equal predicted completions keep
    /// their input order — callers that replicate the engine's running-set
    /// ordering get bit-identical decisions.
    ///
    /// **Precondition:** the head must not already fit
    /// (`head_size > free`). A head that fits needs no reservation — it
    /// simply starts — and asking for one anyway yields `None`, which
    /// callers must not read as "deny backfill" in that case (every EASY
    /// path here checks `head.size <= free` first).
    pub fn reservation(
        head_size: usize,
        free: usize,
        running: &[RunningSnapshot],
    ) -> Option<(f64, usize)> {
        let mut releases: Vec<RunningSnapshot> = running.to_vec();
        releases.sort_by(|a, b| a.completion.total_cmp(&b.completion));
        let mut available = free;
        for release in &releases {
            available += release.size;
            if available >= head_size {
                if !release.completion.is_finite() {
                    return None;
                }
                return Some((release.completion, available - head_size));
            }
        }
        None
    }

    /// Explains why the queued job at `index` is *not* starting right
    /// now under this policy: which constraint — free processors, the
    /// FCFS head, EASY's shadow reservation, or a conservative
    /// reservation held by a job ahead — binds it. Returns `None` when
    /// the job could start (or `index` is out of range), so callers
    /// should only ask about jobs that stayed queued after a scheduling
    /// pass.
    ///
    /// For conservative backfilling the blocker reported is the job
    /// ahead holding the *earliest finite* reserved start: the binding
    /// reservation at `now`. (When the candidate fits the free
    /// processors but is still held back, starting it would push at
    /// least one carved window later, and the earliest window is the
    /// first to collide — an approximation of the full collision set,
    /// chosen so the explain is one job, not a list.) A job behind an
    /// unplannable (infinite) reservation reports that job with an
    /// infinite `reserved_start`.
    pub fn explain(
        &self,
        queue: &[QueuedJob],
        index: usize,
        free: usize,
        running: &[RunningSnapshot],
        now: f64,
    ) -> Option<BlockReason> {
        let job = queue.get(index)?;
        let insufficient = BlockReason::InsufficientFree {
            free,
            needed: job.size,
        };
        match self {
            SchedulerKind::Fcfs => {
                if index == 0 {
                    (job.size > free).then_some(insufficient)
                } else {
                    Some(BlockReason::HeadOfLine {
                        blocking_job: queue[0].job_id,
                    })
                }
            }
            SchedulerKind::FirstFitBackfill => (job.size > free).then_some(insufficient),
            SchedulerKind::EasyBackfill => {
                let head = queue[0];
                if index == 0 {
                    return (job.size > free).then_some(insufficient);
                }
                if job.size > free {
                    return Some(insufficient);
                }
                // The job fits now, so only the head's shadow reservation
                // can be holding it back; an unbounded reservation (no
                // predictable release covers the head) blocks at t = ∞.
                let shadow_time = Self::reservation(head.size, free, running)
                    .map(|(shadow, _)| shadow)
                    .unwrap_or(f64::INFINITY);
                Some(BlockReason::WouldDelayShadow {
                    blocking_job: head.job_id,
                    shadow_time,
                })
            }
            SchedulerKind::Conservative => {
                if job.size > free {
                    return Some(insufficient);
                }
                if index == 0 {
                    // A fitting head starts immediately under conservative
                    // backfilling (the fresh profile is non-decreasing, so
                    // its earliest start is `now`): nothing blocks it.
                    return None;
                }
                let starts = Self::reservations(&queue[..index], free, running, now);
                let binding = starts
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_finite())
                    .min_by(|(_, a), (_, b)| a.total_cmp(b));
                match binding {
                    Some((ahead, &reserved_start)) => Some(BlockReason::WouldDelayReservation {
                        blocking_job: queue[ahead].job_id,
                        reserved_start,
                    }),
                    // No job ahead holds a finite reservation: the first
                    // unplannable one blocks everything behind it.
                    None => Some(BlockReason::WouldDelayReservation {
                        blocking_job: queue[0].job_id,
                        reserved_start: f64::INFINITY,
                    }),
                }
            }
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a queued job is not starting right now — the machine-readable
/// deny/backfill explain produced by [`SchedulerKind::explain`], attached
/// to trace events and surfaced through `poll`. `Copy` and fieldwise so
/// the flight recorder can carry it without allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlockReason {
    /// Not enough free processors for the job itself, under any policy.
    InsufficientFree {
        /// Processors free at decision time.
        free: usize,
        /// Processors the job asked for.
        needed: usize,
    },
    /// FCFS: a job ahead in the queue must start first, whatever the
    /// free count.
    HeadOfLine {
        /// The queue head the policy refuses to overtake.
        blocking_job: u64,
    },
    /// EASY: starting the job now would (or could) delay the head's
    /// shadow reservation. An infinite `shadow_time` means the head's
    /// reservation is unbounded (no predictable release covers it), so
    /// no backfill is allowed at all.
    WouldDelayShadow {
        /// The head job holding the shadow reservation.
        blocking_job: u64,
        /// When the head is promised to start.
        shadow_time: f64,
    },
    /// Conservative: starting the job now would delay a reservation
    /// carved by a job ahead of it. An infinite `reserved_start` means
    /// the blocking job itself is unplannable, which blocks everything
    /// behind it.
    WouldDelayReservation {
        /// The job ahead whose reservation binds (earliest finite
        /// reserved start).
        blocking_job: u64,
        /// That job's promised start time.
        reserved_start: f64,
    },
}

impl BlockReason {
    /// Stable machine-readable tag for wire responses and trace events.
    pub fn code(&self) -> &'static str {
        match self {
            BlockReason::InsufficientFree { .. } => "insufficient_free",
            BlockReason::HeadOfLine { .. } => "head_of_line",
            BlockReason::WouldDelayShadow { .. } => "would_delay_shadow",
            BlockReason::WouldDelayReservation { .. } => "would_delay_reservation",
        }
    }

    /// The job whose presence blocks this one, when one exists
    /// (`InsufficientFree` blames capacity, not a job).
    pub fn blocking_job(&self) -> Option<u64> {
        match self {
            BlockReason::InsufficientFree { .. } => None,
            BlockReason::HeadOfLine { blocking_job }
            | BlockReason::WouldDelayShadow { blocking_job, .. }
            | BlockReason::WouldDelayReservation { blocking_job, .. } => Some(*blocking_job),
        }
    }

    /// The time constraint attached to the block, when one exists: the
    /// shadow time or the reserved start.
    pub fn until(&self) -> Option<f64> {
        match self {
            BlockReason::InsufficientFree { .. } | BlockReason::HeadOfLine { .. } => None,
            BlockReason::WouldDelayShadow { shadow_time, .. } => Some(*shadow_time),
            BlockReason::WouldDelayReservation { reserved_start, .. } => Some(*reserved_start),
        }
    }
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::InsufficientFree { free, needed } => {
                write!(f, "{needed} processors requested, {free} free")
            }
            BlockReason::HeadOfLine { blocking_job } => {
                write!(f, "FCFS: waiting behind job {blocking_job}")
            }
            BlockReason::WouldDelayShadow {
                blocking_job,
                shadow_time,
            } => {
                if shadow_time.is_finite() {
                    write!(
                        f,
                        "would delay job {blocking_job}'s reservation at t={shadow_time}"
                    )
                } else {
                    write!(f, "job {blocking_job}'s reservation is unbounded")
                }
            }
            BlockReason::WouldDelayReservation {
                blocking_job,
                reserved_start,
            } => {
                if reserved_start.is_finite() {
                    write!(
                        f,
                        "would delay job {blocking_job}'s reservation at t={reserved_start}"
                    )
                } else {
                    write!(f, "job {blocking_job}'s reservation is unplannable")
                }
            }
        }
    }
}

/// The availability profile conservative backfilling plans against: a
/// step function of *predicted free processors over future time*, seeded
/// from the current free count and the running jobs' predicted releases,
/// then progressively carved as each queued job claims its reservation
/// window.
///
/// Bookkeeping model: releases *collapse into* the baseline — a table is
/// rebuilt from live state at every decision point (starts and releases
/// change the free count and the running set; cancellations drop a
/// queued job before its carve), because predicted completions drift
/// with network rates and a table cached across events would plan
/// against stale releases. The per-decision cost is
/// `O(queue · points²)` with `points ≤ running + 2·queue`, which is
/// dwarfed by the allocator search that follows a grant.
///
/// Conventions, shared with [`SchedulerKind::reservation`] (EASY's
/// two-point special case):
///
/// * running jobs without a finite predicted completion never release —
///   their processors simply never enter the profile;
/// * predicted completions in the past (a job overrunning its estimate)
///   are clamped to `now` — "any moment now" is the best the prediction
///   can say;
/// * a reservation of infinite duration (a queued job without a walltime
///   estimate) holds its processors from its start forever.
#[derive(Debug, Clone, PartialEq)]
pub struct ReservationTable {
    now: f64,
    /// `(time, available)` steps, strictly increasing in time, with
    /// `points[0].0 == now`; `available` holds on `[time_i, time_{i+1})`
    /// and the last step extends to infinity.
    points: Vec<(f64, usize)>,
}

impl ReservationTable {
    /// Builds the profile from `free` processors available now plus every
    /// finite predicted release among `running`.
    pub fn new(free: usize, running: &[RunningSnapshot], now: f64) -> Self {
        let mut releases: Vec<(f64, usize)> = running
            .iter()
            .filter(|r| r.completion.is_finite())
            .map(|r| (r.completion.max(now), r.size))
            .collect();
        // Stable, like EASY's release sort: equal predicted completions
        // keep their running-set order (tie-breaking parity online and
        // offline is what makes the grant-log equivalence byte-exact).
        releases.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut points = vec![(now, free)];
        for (time, size) in releases {
            let last = points.last_mut().expect("profile starts non-empty");
            if last.0 == time {
                last.1 += size;
            } else {
                let available = last.1 + size;
                points.push((time, available));
            }
        }
        ReservationTable { now, points }
    }

    /// The time the profile starts at.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Predicted free processors at time `t` (clamped to the profile
    /// start).
    pub fn available_at(&self, t: f64) -> usize {
        self.points
            .iter()
            .take_while(|p| p.0 <= t)
            .last()
            .map(|p| p.1)
            .unwrap_or_else(|| self.points[0].1)
    }

    /// The earliest time `>= now` at which `size` processors are
    /// continuously available for `duration` seconds (infinite duration:
    /// forever), or `f64::INFINITY` when the profile never provides them.
    ///
    /// The earliest feasible start is always one of the profile's step
    /// points — the feasible set is the complement of finitely many
    /// half-open intervals whose right endpoints are steps — so scanning
    /// the points in order and returning the first that can host the
    /// whole window is exact, not a heuristic.
    pub fn earliest_start(&self, size: usize, duration: f64) -> f64 {
        'candidate: for (i, &(start, available)) in self.points.iter().enumerate() {
            if available < size {
                continue;
            }
            let end = start + duration;
            for &(time, later) in &self.points[i + 1..] {
                if time >= end {
                    break;
                }
                if later < size {
                    continue 'candidate;
                }
            }
            return start;
        }
        f64::INFINITY
    }

    /// Reserves `size` processors for `duration` seconds at the earliest
    /// feasible start, carving the window out of the profile; returns the
    /// reserved start (`f64::INFINITY`, carving nothing, when the profile
    /// can never host the job).
    pub fn reserve(&mut self, size: usize, duration: f64) -> f64 {
        let start = self.earliest_start(size, duration);
        if start.is_finite() {
            self.reserve_at(start, size, duration);
        }
        start
    }

    /// Carves `size` processors over `[start, start + duration)` out of
    /// the profile — the insert half of the bookkeeping, used after
    /// [`ReservationTable::earliest_start`] confirmed the window fits.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the window really had `size` processors
    /// available (a mis-carved profile would promise the same processors
    /// to two reservations).
    pub fn reserve_at(&mut self, start: f64, size: usize, duration: f64) {
        let end = start + duration;
        self.ensure_point(start);
        if end.is_finite() {
            self.ensure_point(end);
        }
        for point in &mut self.points {
            if point.0 >= start && point.0 < end {
                debug_assert!(
                    point.1 >= size,
                    "reservation window [{start}, {end}) oversubscribes the profile"
                );
                point.1 = point.1.saturating_sub(size);
            }
        }
    }

    /// Splits the step containing `t` so `t` itself becomes a step
    /// boundary (no-op when it already is, or when `t` precedes the
    /// profile).
    fn ensure_point(&mut self, t: f64) {
        match self.points.binary_search_by(|p| p.0.total_cmp(&t)) {
            Ok(_) => {}
            Err(0) => {}
            Err(i) => {
                let available = self.points[i - 1].1;
                self.points.insert(i, (t, available));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(job_id: u64, size: usize, arrival: f64, estimate: f64) -> QueuedJob {
        QueuedJob {
            job_id,
            size,
            arrival,
            estimate,
        }
    }

    fn queue() -> Vec<QueuedJob> {
        vec![
            queued(1, 10, 0.0, 100.0),
            queued(2, 2, 1.0, 50.0),
            queued(3, 4, 2.0, 500.0),
        ]
    }

    #[test]
    fn fcfs_blocks_behind_large_head() {
        let q = queue();
        assert_eq!(SchedulerKind::Fcfs.select(&q, 12), Some(0));
        assert_eq!(SchedulerKind::Fcfs.select(&q, 8), None);
        assert_eq!(SchedulerKind::Fcfs.select(&[], 100), None);
    }

    #[test]
    fn backfill_skips_the_blocked_head() {
        let q = queue();
        assert_eq!(SchedulerKind::FirstFitBackfill.select(&q, 8), Some(1));
        assert_eq!(SchedulerKind::FirstFitBackfill.select(&q, 3), Some(1));
        assert_eq!(SchedulerKind::FirstFitBackfill.select(&q, 1), None);
    }

    #[test]
    fn explains_name_the_binding_constraint_per_policy() {
        let q = queue(); // job 1 needs 10, job 2 needs 2, job 3 needs 4
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 6,
        }];

        // FCFS: the head is short of processors; everyone else is behind it.
        assert_eq!(
            SchedulerKind::Fcfs.explain(&q, 0, 4, &running, 0.0),
            Some(BlockReason::InsufficientFree {
                free: 4,
                needed: 10
            })
        );
        assert_eq!(
            SchedulerKind::Fcfs.explain(&q, 1, 4, &running, 0.0),
            Some(BlockReason::HeadOfLine { blocking_job: 1 })
        );
        assert_eq!(
            SchedulerKind::Fcfs.explain(&q, 0, 12, &running, 0.0),
            None,
            "a head that fits is not blocked"
        );

        // First-fit backfill only ever blocks on capacity.
        assert_eq!(
            SchedulerKind::FirstFitBackfill.explain(&q, 2, 3, &running, 0.0),
            Some(BlockReason::InsufficientFree { free: 3, needed: 4 })
        );
        assert_eq!(
            SchedulerKind::FirstFitBackfill.explain(&q, 1, 3, &running, 0.0),
            None
        );

        // EASY: job 3 fits the 4 free processors but its 500-second
        // estimate runs past the shadow time (t = 100, extra = 0).
        assert_eq!(
            SchedulerKind::EasyBackfill.explain(&q, 2, 4, &running, 0.0),
            Some(BlockReason::WouldDelayShadow {
                blocking_job: 1,
                shadow_time: 100.0,
            })
        );
        // An unbounded head reservation explains as an infinite shadow.
        let big_head = vec![queued(9, 100, 0.0, 10.0), queued(2, 1, 1.0, 1.0)];
        match SchedulerKind::EasyBackfill.explain(&big_head, 1, 4, &running, 0.0) {
            Some(BlockReason::WouldDelayShadow {
                blocking_job: 9,
                shadow_time,
            }) => assert!(shadow_time.is_infinite()),
            other => panic!("unexpected explain: {other:?}"),
        }

        // Conservative: job 3 fits the free processors but starting its
        // 500-second run now would delay the head's reservation at t=100
        // (the earliest finite carve ahead of it). Job 2 is dropped from
        // the queue here because a real scheduling pass would have
        // started it — explain is only asked about jobs left queued.
        let q_cons = vec![q[0], q[2]];
        assert_eq!(
            SchedulerKind::Conservative.explain(&q_cons, 1, 4, &running, 0.0),
            Some(BlockReason::WouldDelayReservation {
                blocking_job: 1,
                reserved_start: 100.0,
            })
        );
        assert_eq!(
            SchedulerKind::Conservative.explain(&q, 0, 12, &running, 0.0),
            None,
            "a fitting head starts immediately under conservative"
        );

        // Accessor and rendering sanity on one representative reason.
        let reason = SchedulerKind::Conservative
            .explain(&q_cons, 1, 4, &running, 0.0)
            .unwrap();
        assert_eq!(reason.code(), "would_delay_reservation");
        assert_eq!(reason.blocking_job(), Some(1));
        assert_eq!(reason.until(), Some(100.0));
        assert!(reason.to_string().contains("job 1"));
        assert_eq!(
            BlockReason::InsufficientFree { free: 3, needed: 4 }.blocking_job(),
            None
        );
    }

    #[test]
    fn default_is_fcfs() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Fcfs);
        assert_eq!(SchedulerKind::Fcfs.to_string(), "FCFS");
        assert_eq!(SchedulerKind::all().len(), SchedulerKind::COUNT);
        // `all()` lists each variant exactly once (COUNT pins the length;
        // this pins the contents).
        let mut seen = std::collections::HashSet::new();
        for kind in SchedulerKind::all() {
            assert!(seen.insert(kind), "{kind} listed twice in all()");
        }
    }

    #[test]
    fn easy_starts_the_head_when_it_fits() {
        let q = queue();
        let running = [RunningSnapshot {
            completion: 40.0,
            size: 6,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 12, &running, 0.0),
            Some(0)
        );
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&[], 12, &running, 0.0),
            None
        );
    }

    #[test]
    fn easy_backfills_short_jobs_that_finish_before_the_reservation() {
        // Head needs 10, only 4 free; the running job releases 6 at t = 100,
        // so the reservation (shadow time) is 100. Job 2 (size 2, estimate
        // 50) finishes by t = 50 < 100 and may backfill; job 3 (size 4,
        // estimate 500) would run past the reservation, but it also fits in
        // the `extra` processors (4 free + 6 released − 10 = 0 extra), so it
        // may not.
        let q = queue();
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 6,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 4, &running, 0.0),
            Some(1)
        );
        // Remove job 2: job 3 is too long and too big to backfill.
        let q2 = vec![q[0], q[2]];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q2, 4, &running, 0.0),
            None
        );
    }

    #[test]
    fn easy_allows_long_backfill_into_extra_processors() {
        // Head needs 10; the running job releases 12 at t = 100, leaving 2
        // extra processors at the shadow time. Job 3 (size 4) does not fit in
        // the extras, but a size-2 job does — even with a huge estimate.
        let q = vec![queued(1, 10, 0.0, 100.0), queued(5, 2, 1.0, 1.0e9)];
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 12,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 0, &running, 0.0),
            None,
            "nothing free: even the backfill candidate cannot start"
        );
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 2, &running, 0.0),
            Some(1),
            "size-2 job fits in the extra processors at the shadow time"
        );
    }

    #[test]
    fn easy_denies_backfill_when_the_reservation_is_unbounded() {
        // Even draining the running jobs cannot free enough processors for
        // the head, so EASY refuses to backfill anything.
        let q = vec![queued(1, 100, 0.0, 10.0), queued(2, 1, 1.0, 1.0)];
        let running = [RunningSnapshot {
            completion: 10.0,
            size: 5,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 3, &running, 0.0),
            None
        );
    }

    #[test]
    fn parse_accepts_names_and_aliases() {
        for kind in SchedulerKind::all() {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
            assert_eq!(
                SchedulerKind::parse(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(SchedulerKind::parse(" fcfs "), Some(SchedulerKind::Fcfs));
        assert_eq!(
            SchedulerKind::parse("backfill"),
            Some(SchedulerKind::FirstFitBackfill)
        );
        assert_eq!(
            SchedulerKind::parse("EASY"),
            Some(SchedulerKind::EasyBackfill)
        );
        assert_eq!(
            SchedulerKind::parse("conservative"),
            Some(SchedulerKind::Conservative)
        );
        assert_eq!(SchedulerKind::parse("round-robin"), None);
    }

    #[test]
    fn infinite_completions_deny_the_reservation() {
        // The decisive release has no (finite) completion estimate: EASY
        // must refuse to backfill rather than promise the head a start at
        // t = infinity and let everything jump it.
        let running = [
            RunningSnapshot {
                completion: 10.0,
                size: 2,
            },
            RunningSnapshot {
                completion: f64::INFINITY,
                size: 8,
            },
        ];
        assert_eq!(SchedulerKind::reservation(10, 0, &running), None);
        // A finite release that crosses the threshold first is unaffected.
        assert_eq!(SchedulerKind::reservation(2, 0, &running), Some((10.0, 0)));
    }

    #[test]
    fn plain_select_on_easy_is_conservative_fcfs() {
        let q = queue();
        for kind in [SchedulerKind::EasyBackfill, SchedulerKind::Conservative] {
            assert_eq!(kind.select(&q, 12), Some(0), "{kind}");
            assert_eq!(kind.select(&q, 8), None, "{kind}");
        }
    }

    #[test]
    fn conservative_starts_a_fitting_head_and_backfills_safe_jobs() {
        // Head needs 10, only 4 free; a running job releases 6 at t = 100.
        // Head's reservation: t = 100 (all 10 available). Job 2 (size 2,
        // estimate 50) finishes by t = 50 and its window never touches
        // the head's carve — it backfills. Job 3 (size 4, estimate 500)
        // would still hold 4 of the head's 10 processors at t = 100.
        let q = queue();
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 6,
        }];
        assert_eq!(
            SchedulerKind::Conservative.select_with_context(&q, 12, &running, 0.0),
            Some(0),
            "a fitting head starts first"
        );
        assert_eq!(
            SchedulerKind::Conservative.select_with_context(&q, 4, &running, 0.0),
            Some(1)
        );
        let q2 = vec![q[0], q[2]];
        assert_eq!(
            SchedulerKind::Conservative.select_with_context(&q2, 4, &running, 0.0),
            None
        );
        assert_eq!(
            SchedulerKind::Conservative.select_with_context(&[], 12, &running, 0.0),
            None
        );
    }

    #[test]
    fn conservative_protects_mid_queue_reservations_where_easy_does_not() {
        // 3 processors free; one running job releases 10 at t = 100.
        // Head (size 10, est 100) is reserved at t = 100, carving the
        // profile to 3 over [100, 200). Mid (size 12, est 100) is
        // reserved at t = 200 — the head's window end — carving
        // [200, 300) down to 1.
        let head = queued(1, 10, 0.0, 100.0);
        let mid = queued(2, 12, 1.0, 100.0);
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 10,
        }];
        // A short tail (size 3, est 90) runs inside [0, 90): it delays
        // neither carve, so both policies backfill it.
        let short = vec![head, mid, queued(3, 3, 2.0, 90.0)];
        for kind in [SchedulerKind::EasyBackfill, SchedulerKind::Conservative] {
            assert_eq!(
                kind.select_with_context(&short, 3, &running, 0.0),
                Some(2),
                "{kind}"
            );
        }
        // A long tail (size 3, est 500) holds its 3 processors through
        // mid's [200, 300) window, where only 1 is spare. EASY protects
        // only the head (shadow 100, extra 3: the tail fits the extras)
        // and lets it through; conservative refuses — this is exactly
        // the fairness gap between the two policies.
        let long = vec![head, mid, queued(3, 3, 2.0, 500.0)];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&long, 3, &running, 0.0),
            Some(2),
            "EASY protects only the head"
        );
        assert_eq!(
            SchedulerKind::Conservative.select_with_context(&long, 3, &running, 0.0),
            None,
            "conservative protects every earlier reservation"
        );
    }

    #[test]
    fn conservative_denies_everything_behind_an_unplannable_job() {
        // The head can only start when a no-estimate job terminates;
        // conservative refuses to let anything leapfrog it.
        let q = vec![queued(1, 10, 0.0, 10.0), queued(2, 1, 1.0, 1.0)];
        let running = [RunningSnapshot {
            completion: f64::INFINITY,
            size: 20,
        }];
        assert_eq!(
            SchedulerKind::Conservative.select_with_context(&q, 3, &running, 0.0),
            None
        );
        let starts = SchedulerKind::reservations(&q, 3, &running, 0.0);
        assert!(starts.iter().all(|s| s.is_infinite()));
    }

    #[test]
    fn reservations_assign_queue_order_start_guarantees() {
        // 4 free now; 6 more at t = 100. Head (10, est 100) reserved at
        // t = 100 carving everything; job 2 (2, est 50) fits the 4 free
        // now; job 3 (4, est 10) also wants the free-now processors but
        // job 2's carve leaves only 2 until t = 50, so it starts then.
        let q = vec![
            queued(1, 10, 0.0, 100.0),
            queued(2, 2, 1.0, 50.0),
            queued(3, 4, 2.0, 10.0),
        ];
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 6,
        }];
        let starts = SchedulerKind::reservations(&q, 4, &running, 0.0);
        assert_eq!(starts, vec![100.0, 0.0, 50.0]);
    }

    #[test]
    fn reservation_table_carves_and_recovers_windows() {
        let running = [
            RunningSnapshot {
                completion: 10.0,
                size: 4,
            },
            RunningSnapshot {
                completion: 20.0,
                size: 4,
            },
        ];
        let mut table = ReservationTable::new(2, &running, 0.0);
        assert_eq!(table.available_at(0.0), 2);
        assert_eq!(table.available_at(10.0), 6);
        assert_eq!(table.available_at(25.0), 10);
        // A size-6 job for 5 s fits at t = 10.
        assert_eq!(table.earliest_start(6, 5.0), 10.0);
        // An infinite-duration job needs its processors forever: size 6
        // cannot start until t = 10 holds 6 for good — but the window
        // check sees the t = 20 rise too, so 10 works (availability only
        // grows). Carve it and the next size-6 job must wait forever.
        assert_eq!(table.reserve(6, f64::INFINITY), 10.0);
        assert_eq!(table.available_at(10.0), 0);
        assert_eq!(table.available_at(20.0), 4);
        assert_eq!(table.earliest_start(6, 1.0), f64::INFINITY);
        assert_eq!(table.reserve(6, 1.0), f64::INFINITY, "carves nothing");
        assert_eq!(table.earliest_start(4, 1.0), 20.0);
        // Finite carve in the middle restores capacity after its end.
        table.reserve_at(20.0, 4, 2.0);
        assert_eq!(table.available_at(21.0), 0);
        assert_eq!(table.available_at(22.0), 4);
        // Past-due releases clamp to now rather than predating the table.
        let overdue = [RunningSnapshot {
            completion: -5.0,
            size: 3,
        }];
        let table = ReservationTable::new(1, &overdue, 0.0);
        assert_eq!(table.available_at(0.0), 4);
        assert_eq!(table.now(), 0.0);
    }

    #[test]
    fn select_with_context_matches_select_for_fcfs_and_backfill() {
        let q = queue();
        let running = [RunningSnapshot {
            completion: 7.0,
            size: 3,
        }];
        for kind in [SchedulerKind::Fcfs, SchedulerKind::FirstFitBackfill] {
            for free in [0usize, 3, 8, 12] {
                assert_eq!(
                    kind.select_with_context(&q, free, &running, 5.0),
                    kind.select(&q, free)
                );
            }
        }
    }
}
