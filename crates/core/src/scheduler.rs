//! Job scheduling policies.
//!
//! The paper deliberately fixes the scheduler: "Since our focus is on
//! allocation rather than scheduling, we scheduled using First Come, First
//! Serve (FCFS) in all our simulations." FCFS is therefore the default and
//! the policy used by every figure reproduction; an aggressive-backfill
//! variant is provided as an extension to test whether the allocator ranking
//! is sensitive to the scheduling policy (see DESIGN.md §5).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A job waiting in the scheduler queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuedJob {
    /// Trace identifier of the job.
    pub job_id: u64,
    /// Processors requested.
    pub size: usize,
    /// Arrival time (for bookkeeping; FCFS keeps the queue in arrival order).
    pub arrival: f64,
    /// The job's runtime estimate in seconds, used only by the EASY
    /// backfilling extension (FCFS ignores it). The simulator supplies the
    /// trace runtime, i.e. a perfect estimate.
    pub estimate: f64,
}

/// A snapshot of one running job, as seen by the reservation-based
/// schedulers: when it is expected to finish and how many processors it will
/// release.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningSnapshot {
    /// Predicted completion time given current network rates.
    pub completion: f64,
    /// Processors the job will release.
    pub size: usize,
}

/// Scheduling policies available to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SchedulerKind {
    /// Strict First Come, First Serve: the head of the queue blocks all jobs
    /// behind it until enough processors are free (the paper's policy).
    #[default]
    Fcfs,
    /// Aggressive backfilling: the first queued job that fits starts, even if
    /// earlier jobs are still waiting (extension, not used by the paper).
    FirstFitBackfill,
    /// EASY backfilling: the head of the queue holds a reservation at the
    /// earliest time enough processors will be free; later jobs may only
    /// start if they fit now *and* do not delay that reservation (extension,
    /// not used by the paper).
    EasyBackfill,
}

impl SchedulerKind {
    /// The scheduling policies implemented.
    pub fn all() -> [SchedulerKind; 3] {
        [
            SchedulerKind::Fcfs,
            SchedulerKind::FirstFitBackfill,
            SchedulerKind::EasyBackfill,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::Fcfs => "FCFS",
            SchedulerKind::FirstFitBackfill => "first-fit backfill",
            SchedulerKind::EasyBackfill => "EASY backfill",
        }
    }

    /// True when the policy's start decision reads the running-job
    /// snapshots (the reservation-based policies). Callers that build
    /// the snapshot list lazily key on this — the match is exhaustive so
    /// a new variant forces a decision here, not a silent empty input.
    pub fn uses_running_snapshots(&self) -> bool {
        match self {
            SchedulerKind::Fcfs | SchedulerKind::FirstFitBackfill => false,
            SchedulerKind::EasyBackfill => true,
        }
    }

    /// True when the policy may start a job other than the queue head
    /// (so callers must present the whole queue, not just the head).
    pub fn scans_whole_queue(&self) -> bool {
        match self {
            SchedulerKind::Fcfs => false,
            SchedulerKind::FirstFitBackfill | SchedulerKind::EasyBackfill => true,
        }
    }

    /// Parses a scheduler spec: the full [`SchedulerKind::name`]
    /// (case-insensitive) or the short aliases `fcfs`, `backfill` and
    /// `easy` used by the CLI and the service protocol.
    pub fn parse(spec: &str) -> Option<SchedulerKind> {
        let spec = spec.trim();
        SchedulerKind::all()
            .into_iter()
            .find(|s| s.name().eq_ignore_ascii_case(spec))
            .or(match spec.to_ascii_lowercase().as_str() {
                "fcfs" => Some(SchedulerKind::Fcfs),
                "backfill" | "first-fit" | "firstfit" => Some(SchedulerKind::FirstFitBackfill),
                "easy" => Some(SchedulerKind::EasyBackfill),
                _ => None,
            })
    }

    /// Selects the index of the next queued job to start given `free`
    /// processors, or `None` if nothing may start.
    ///
    /// EASY backfilling needs the running-job snapshots and the current time
    /// to compute its reservation; use [`SchedulerKind::select_with_context`]
    /// for it. Calling `select` on EASY falls back to the conservative FCFS
    /// decision (only the head may start).
    pub fn select(&self, queue: &[QueuedJob], free: usize) -> Option<usize> {
        match self {
            SchedulerKind::Fcfs | SchedulerKind::EasyBackfill => match queue.first() {
                Some(head) if head.size <= free => Some(0),
                _ => None,
            },
            SchedulerKind::FirstFitBackfill => queue.iter().position(|j| j.size <= free),
        }
    }

    /// Selects the index of the next queued job to start, given the current
    /// time and the predicted completions of the running jobs.
    ///
    /// For FCFS and aggressive backfilling this is identical to
    /// [`SchedulerKind::select`]; EASY backfilling uses the extra context to
    /// compute the head job's reservation (shadow time) and backfills only
    /// jobs that cannot delay it.
    pub fn select_with_context(
        &self,
        queue: &[QueuedJob],
        free: usize,
        running: &[RunningSnapshot],
        now: f64,
    ) -> Option<usize> {
        match self {
            SchedulerKind::Fcfs | SchedulerKind::FirstFitBackfill => self.select(queue, free),
            SchedulerKind::EasyBackfill => {
                let head = queue.first()?;
                if head.size <= free {
                    return Some(0);
                }
                let (shadow_time, extra) = Self::reservation(head.size, free, running)?;
                queue
                    .iter()
                    .skip(1)
                    .position(|candidate| {
                        candidate.size <= free
                            && (now + candidate.estimate <= shadow_time || candidate.size <= extra)
                    })
                    // `position` on the skipped iterator is relative to index 1.
                    .map(|i| i + 1)
            }
        }
    }

    /// Computes the EASY reservation for a head job of `head_size`
    /// processors: the *shadow time* at which enough processors will have
    /// been released for it to start, and the number of `extra` processors
    /// that remain free at that moment (backfill jobs no larger than `extra`
    /// can never delay the reservation, whatever their runtime).
    ///
    /// Returns `None` when even draining every running job would not free
    /// enough processors (the head job can then only start thanks to future
    /// arrivals terminating, which EASY treats as an unbounded reservation —
    /// no backfill is allowed). The same applies when the decisive release
    /// has a non-finite predicted completion (a running job without a
    /// walltime estimate, as the online service models it): a reservation
    /// at `t = ∞` is no reservation, so backfill is denied rather than
    /// allowed to starve the head.
    ///
    /// This is public as the reusable core of EASY: the online service's
    /// admission queue calls it with live running-job estimates, and the
    /// property tests pin its no-delay/no-starvation guarantees directly.
    /// The sort is stable, so jobs with equal predicted completions keep
    /// their input order — callers that replicate the engine's running-set
    /// ordering get bit-identical decisions.
    ///
    /// **Precondition:** the head must not already fit
    /// (`head_size > free`). A head that fits needs no reservation — it
    /// simply starts — and asking for one anyway yields `None`, which
    /// callers must not read as "deny backfill" in that case (every EASY
    /// path here checks `head.size <= free` first).
    pub fn reservation(
        head_size: usize,
        free: usize,
        running: &[RunningSnapshot],
    ) -> Option<(f64, usize)> {
        let mut releases: Vec<RunningSnapshot> = running.to_vec();
        releases.sort_by(|a, b| a.completion.total_cmp(&b.completion));
        let mut available = free;
        for release in &releases {
            available += release.size;
            if available >= head_size {
                if !release.completion.is_finite() {
                    return None;
                }
                return Some((release.completion, available - head_size));
            }
        }
        None
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(job_id: u64, size: usize, arrival: f64, estimate: f64) -> QueuedJob {
        QueuedJob {
            job_id,
            size,
            arrival,
            estimate,
        }
    }

    fn queue() -> Vec<QueuedJob> {
        vec![
            queued(1, 10, 0.0, 100.0),
            queued(2, 2, 1.0, 50.0),
            queued(3, 4, 2.0, 500.0),
        ]
    }

    #[test]
    fn fcfs_blocks_behind_large_head() {
        let q = queue();
        assert_eq!(SchedulerKind::Fcfs.select(&q, 12), Some(0));
        assert_eq!(SchedulerKind::Fcfs.select(&q, 8), None);
        assert_eq!(SchedulerKind::Fcfs.select(&[], 100), None);
    }

    #[test]
    fn backfill_skips_the_blocked_head() {
        let q = queue();
        assert_eq!(SchedulerKind::FirstFitBackfill.select(&q, 8), Some(1));
        assert_eq!(SchedulerKind::FirstFitBackfill.select(&q, 3), Some(1));
        assert_eq!(SchedulerKind::FirstFitBackfill.select(&q, 1), None);
    }

    #[test]
    fn default_is_fcfs() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Fcfs);
        assert_eq!(SchedulerKind::Fcfs.to_string(), "FCFS");
        assert_eq!(SchedulerKind::all().len(), 3);
    }

    #[test]
    fn easy_starts_the_head_when_it_fits() {
        let q = queue();
        let running = [RunningSnapshot {
            completion: 40.0,
            size: 6,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 12, &running, 0.0),
            Some(0)
        );
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&[], 12, &running, 0.0),
            None
        );
    }

    #[test]
    fn easy_backfills_short_jobs_that_finish_before_the_reservation() {
        // Head needs 10, only 4 free; the running job releases 6 at t = 100,
        // so the reservation (shadow time) is 100. Job 2 (size 2, estimate
        // 50) finishes by t = 50 < 100 and may backfill; job 3 (size 4,
        // estimate 500) would run past the reservation, but it also fits in
        // the `extra` processors (4 free + 6 released − 10 = 0 extra), so it
        // may not.
        let q = queue();
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 6,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 4, &running, 0.0),
            Some(1)
        );
        // Remove job 2: job 3 is too long and too big to backfill.
        let q2 = vec![q[0], q[2]];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q2, 4, &running, 0.0),
            None
        );
    }

    #[test]
    fn easy_allows_long_backfill_into_extra_processors() {
        // Head needs 10; the running job releases 12 at t = 100, leaving 2
        // extra processors at the shadow time. Job 3 (size 4) does not fit in
        // the extras, but a size-2 job does — even with a huge estimate.
        let q = vec![queued(1, 10, 0.0, 100.0), queued(5, 2, 1.0, 1.0e9)];
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 12,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 0, &running, 0.0),
            None,
            "nothing free: even the backfill candidate cannot start"
        );
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 2, &running, 0.0),
            Some(1),
            "size-2 job fits in the extra processors at the shadow time"
        );
    }

    #[test]
    fn easy_denies_backfill_when_the_reservation_is_unbounded() {
        // Even draining the running jobs cannot free enough processors for
        // the head, so EASY refuses to backfill anything.
        let q = vec![queued(1, 100, 0.0, 10.0), queued(2, 1, 1.0, 1.0)];
        let running = [RunningSnapshot {
            completion: 10.0,
            size: 5,
        }];
        assert_eq!(
            SchedulerKind::EasyBackfill.select_with_context(&q, 3, &running, 0.0),
            None
        );
    }

    #[test]
    fn parse_accepts_names_and_aliases() {
        for kind in SchedulerKind::all() {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
            assert_eq!(
                SchedulerKind::parse(&kind.name().to_ascii_uppercase()),
                Some(kind)
            );
        }
        assert_eq!(SchedulerKind::parse(" fcfs "), Some(SchedulerKind::Fcfs));
        assert_eq!(
            SchedulerKind::parse("backfill"),
            Some(SchedulerKind::FirstFitBackfill)
        );
        assert_eq!(
            SchedulerKind::parse("EASY"),
            Some(SchedulerKind::EasyBackfill)
        );
        assert_eq!(SchedulerKind::parse("round-robin"), None);
    }

    #[test]
    fn infinite_completions_deny_the_reservation() {
        // The decisive release has no (finite) completion estimate: EASY
        // must refuse to backfill rather than promise the head a start at
        // t = infinity and let everything jump it.
        let running = [
            RunningSnapshot {
                completion: 10.0,
                size: 2,
            },
            RunningSnapshot {
                completion: f64::INFINITY,
                size: 8,
            },
        ];
        assert_eq!(SchedulerKind::reservation(10, 0, &running), None);
        // A finite release that crosses the threshold first is unaffected.
        assert_eq!(SchedulerKind::reservation(2, 0, &running), Some((10.0, 0)));
    }

    #[test]
    fn plain_select_on_easy_is_conservative_fcfs() {
        let q = queue();
        assert_eq!(SchedulerKind::EasyBackfill.select(&q, 12), Some(0));
        assert_eq!(SchedulerKind::EasyBackfill.select(&q, 8), None);
    }

    #[test]
    fn select_with_context_matches_select_for_fcfs_and_backfill() {
        let q = queue();
        let running = [RunningSnapshot {
            completion: 7.0,
            size: 3,
        }];
        for kind in [SchedulerKind::Fcfs, SchedulerKind::FirstFitBackfill] {
            for free in [0usize, 3, 8, 12] {
                assert_eq!(
                    kind.select_with_context(&q, free, &running, 5.0),
                    kind.select(&q, free)
                );
            }
        }
    }
}
