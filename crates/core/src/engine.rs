//! The trace-driven simulation engine.
//!
//! Replays a job trace against a machine, a scheduler, an allocator and a
//! communication pattern, and produces per-job [`JobRecord`]s. The engine is
//! event-driven: state only changes when a job arrives, starts or completes.
//! While the set of running jobs is fixed, each job delivers messages at the
//! constant rate assigned by the contention model, so the next completion
//! time is known in closed form — this is the fluid approximation described
//! in DESIGN.md that makes whole-trace sweeps tractable.
//!
//! Timeline of one job (matching Section 3 of the paper):
//!
//! 1. the job arrives and enters the FCFS queue;
//! 2. when it reaches the head of the queue and enough processors are free,
//!    the allocator immediately places it (processors are dedicated until it
//!    terminates);
//! 3. the job must deliver one message per second of its trace runtime;
//!    its message rate is its max-min fair share of link capacity given every
//!    other running job's traffic;
//! 4. when the quota is met the job terminates and its processors are freed.

use crate::scheduler::{QueuedJob, SchedulerKind};
use crate::stats::{JobRecord, SimSummary};
use commalloc_alloc::{AllocRequest, Allocation, Allocator, AllocatorKind, MachineState};
use commalloc_mesh::Mesh2D;
use commalloc_net::fluid::{FluidNetwork, RateModel, ZeroContentionModel};
use commalloc_net::traffic::{JobTraffic, RankTraffic};
use commalloc_net::LinkTable;
use commalloc_workload::{CommPattern, Trace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which contention model drives job progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Fidelity {
    /// Max-min fair fluid sharing of link capacity (default; used for every
    /// figure reproduction).
    #[default]
    Fluid,
    /// Per-link proportional sharing without max-min redistribution — an
    /// ablation of the fairness discipline itself (see
    /// `commalloc_net::fluid::ProportionalShareModel`).
    ProportionalShare,
    /// Infinitely fast network: job durations equal trace runtimes, isolating
    /// pure queueing effects. Useful as a control.
    ZeroContention,
}

/// Default link capacity (message-crossings per second) used by
/// [`SimConfig::new`] and the figure sweeps; see the field documentation on
/// [`SimConfig::link_capacity`] for the calibration rationale.
pub const DEFAULT_LINK_CAPACITY: f64 = 0.25;

/// Default per-hop overhead (seconds of extra service per message per hop)
/// used by [`SimConfig::new`]; see [`SimConfig::per_hop_overhead`].
pub const DEFAULT_PER_HOP_OVERHEAD: f64 = 0.05;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The machine.
    pub mesh: Mesh2D,
    /// The communication pattern every job uses (the paper assumes all jobs
    /// share one pattern to maximise the interaction with the allocator).
    pub pattern: CommPattern,
    /// The allocation algorithm.
    pub allocator: AllocatorKind,
    /// The scheduling policy (FCFS in the paper).
    pub scheduler: SchedulerKind,
    /// The contention model.
    pub fidelity: Fidelity,
    /// Link capacity in message-crossings per second (fluid model knob).
    ///
    /// The default of 0.25 is calibrated so that a *compact* allocation of a
    /// typical trace job (~15 processors) runs at or near full rate while
    /// dispersed allocations that overlap other jobs' routes are slowed
    /// several-fold — the contention regime the paper's flit-level
    /// experiments operate in. See EXPERIMENTS.md for the calibration note.
    pub link_capacity: f64,
    /// Extra service time per message per hop, in seconds, charged against
    /// the job's nominal one-message-per-second pacing: a job whose messages
    /// travel `D` hops on average can sustain at most `1 / (1 + overhead·D)`
    /// messages per second even on an idle network. This models the per-hop
    /// routing/serialisation cost that ProcSimity's flit-level simulation
    /// charges every message and is what makes running time track *message
    /// distance* (the paper's Figure 10) rather than only link sharing.
    pub per_hop_overhead: f64,
    /// Seed for the per-job randomness (random pattern realisations).
    pub seed: u64,
}

impl SimConfig {
    /// Creates a configuration with the paper's defaults (FCFS, fluid model,
    /// unit link capacity).
    pub fn new(mesh: Mesh2D, pattern: CommPattern, allocator: AllocatorKind) -> Self {
        SimConfig {
            mesh,
            pattern,
            allocator,
            scheduler: SchedulerKind::Fcfs,
            fidelity: Fidelity::Fluid,
            link_capacity: DEFAULT_LINK_CAPACITY,
            per_hop_overhead: DEFAULT_PER_HOP_OVERHEAD,
            seed: 0x1eaf,
        }
    }

    /// Returns a copy with a different per-hop overhead (0.0 disables the
    /// distance-dependent base cost entirely).
    pub fn with_per_hop_overhead(mut self, overhead: f64) -> Self {
        self.per_hop_overhead = overhead;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different fidelity.
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Returns a copy with a different link capacity.
    pub fn with_link_capacity(mut self, capacity: f64) -> Self {
        self.link_capacity = capacity;
        self
    }

    /// Returns a copy with a different scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// The configuration that produced this result.
    pub config: SimConfig,
    /// Per-job records, in completion order.
    pub records: Vec<JobRecord>,
    /// Aggregate summary.
    pub summary: SimSummary,
}

/// One job start exactly as the engine performed it: which job started,
/// when, and on which processors. The sequence of grant events is the
/// engine's *grant log* — the ground truth the online service's
/// sim-equivalence harness compares against (same trace, same policy,
/// same allocator ⇒ byte-identical log).
#[derive(Debug, Clone, PartialEq)]
pub struct GrantEvent {
    /// The started job.
    pub job_id: u64,
    /// Simulated start time.
    pub time: f64,
    /// Processors requested (and granted).
    pub size: usize,
    /// The granted processors, in rank order.
    pub nodes: Vec<commalloc_mesh::NodeId>,
}

/// A job currently running on the machine.
struct RunningJob {
    job_id: u64,
    size: usize,
    arrival: f64,
    start: f64,
    messages: u64,
    remaining: f64,
    rate: f64,
    traffic: JobTraffic,
    nodes: Vec<commalloc_mesh::NodeId>,
    avg_pairwise_distance: f64,
    components: usize,
}

impl RunningJob {
    fn predicted_completion(&self, now: f64) -> f64 {
        debug_assert!(self.rate > 0.0);
        now + self.remaining / self.rate
    }
}

/// Simulates `trace` under `config` and returns per-job records.
///
/// Jobs larger than the machine are skipped with a warning record omitted
/// entirely (the paper removes them from the trace before simulating; use
/// [`Trace::filter_fitting`] to do the same explicitly).
pub fn simulate(trace: &Trace, config: &SimConfig) -> SimResult {
    simulate_impl(trace, config, None)
}

/// Like [`simulate`], but also returns the grant log: every job start in
/// the order the scheduler performed it, with its time and placement.
pub fn simulate_logged(trace: &Trace, config: &SimConfig) -> (SimResult, Vec<GrantEvent>) {
    let mut log = Vec::new();
    let result = simulate_impl(trace, config, Some(&mut log));
    (result, log)
}

/// The engine proper. `grant_log` is filled only when a caller wants the
/// log — the plain [`simulate`] path (parameter sweeps run thousands of
/// these) skips the per-start node-vector clones entirely.
fn simulate_impl(
    trace: &Trace,
    config: &SimConfig,
    mut grant_log: Option<&mut Vec<GrantEvent>>,
) -> SimResult {
    let mesh = config.mesh;
    let links = LinkTable::new(mesh);
    let fluid = FluidNetwork::with_capacity(links.num_slots(), config.link_capacity);
    let proportional = commalloc_net::fluid::ProportionalShareModel::with_capacity(
        links.num_slots(),
        config.link_capacity,
    );
    let zero = ZeroContentionModel;
    let model: &dyn RateModel = match config.fidelity {
        Fidelity::Fluid => &fluid,
        Fidelity::ProportionalShare => &proportional,
        Fidelity::ZeroContention => &zero,
    };

    let mut allocator: Box<dyn Allocator> = config.allocator.build(mesh);
    let mut machine = MachineState::new(mesh);
    let mut queue: Vec<QueuedJob> = Vec::new();
    let mut running: Vec<RunningJob> = Vec::new();
    let mut records: Vec<JobRecord> = Vec::new();

    // Jobs that can never fit are dropped up front, mirroring the paper's
    // removal of the 320-node jobs on the 16 x 16 machine.
    let jobs: Vec<_> = trace
        .jobs()
        .iter()
        .copied()
        .filter(|j| j.size <= mesh.num_nodes())
        .collect();

    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    // Advances every running job's remaining work to `now`.
    fn settle(running: &mut [RunningJob], last: f64, now: f64) {
        let dt = now - last;
        if dt <= 0.0 {
            return;
        }
        for job in running.iter_mut() {
            job.remaining = (job.remaining - job.rate * dt).max(0.0);
        }
    }

    // Recomputes fair rates after any change to the running set.
    fn recompute_rates(running: &mut [RunningJob], model: &dyn RateModel) {
        if running.is_empty() {
            return;
        }
        let traffics: Vec<&JobTraffic> = running.iter().map(|j| &j.traffic).collect();
        let rates = model.rates(&traffics);
        for (job, rate) in running.iter_mut().zip(rates) {
            job.rate = rate.max(1e-9);
        }
    }

    let mut last_event = 0.0f64;

    loop {
        // Next arrival and next completion.
        let arrival_time = jobs.get(next_arrival).map(|j| j.arrival);
        let completion = running
            .iter()
            .enumerate()
            .map(|(i, j)| (j.predicted_completion(now), i))
            .min_by(|a, b| a.0.total_cmp(&b.0));

        let (event_time, is_arrival) = match (arrival_time, &completion) {
            (Some(a), Some((c, _))) => {
                if a <= *c {
                    (a, true)
                } else {
                    (*c, false)
                }
            }
            (Some(a), None) => (a, true),
            (None, Some((c, _))) => (*c, false),
            (None, None) => break,
        };

        // Advance simulated time and job progress.
        now = event_time.max(now);
        settle(&mut running, last_event, now);
        last_event = now;

        if is_arrival {
            let job = jobs[next_arrival];
            next_arrival += 1;
            queue.push(QueuedJob {
                job_id: job.id,
                size: job.size,
                arrival: job.arrival,
                estimate: job.runtime,
            });
        } else {
            let (_, idx) = completion.expect("completion event requires a running job");
            let done = running.swap_remove(idx);
            machine.release(&done.nodes);
            allocator.release(&Allocation::new(done.job_id, done.nodes.clone()), &machine);
            records.push(JobRecord {
                job_id: done.job_id,
                size: done.size,
                messages: done.messages,
                arrival: done.arrival,
                start: done.start,
                completion: now,
                avg_pairwise_distance: done.avg_pairwise_distance,
                avg_message_distance: done.traffic.avg_message_distance,
                components: done.components,
            });
        }

        // Start as many queued jobs as the scheduler allows.
        let mut started_any = false;
        loop {
            // Reservation-based schedulers (EASY) need the predicted
            // completion of every running job.
            let snapshots: Vec<crate::scheduler::RunningSnapshot> = running
                .iter()
                .map(|j| crate::scheduler::RunningSnapshot {
                    completion: j.predicted_completion(now),
                    size: j.size,
                })
                .collect();
            let Some(pos) =
                config
                    .scheduler
                    .select_with_context(&queue, machine.num_free(), &snapshots, now)
            else {
                break;
            };
            let queued = queue.remove(pos);
            let trace_job = jobs
                .iter()
                .find(|j| j.id == queued.job_id)
                .expect("queued job comes from the trace");
            let request = AllocRequest::new(queued.job_id, queued.size);
            let Some(allocation) = allocator.allocate(&request, &machine) else {
                // Contiguous-only strategies may refuse a request even though
                // enough processors are free (no suitable rectangle/block).
                if machine.num_busy() == 0 {
                    // The machine is empty, so this job can never be placed
                    // by this allocator; drop it rather than deadlocking the
                    // queue (the paper's traces never trigger this for the
                    // algorithms it evaluates).
                    continue;
                }
                // Otherwise the job waits for a future release to open up a
                // suitable region; put it back and stop starting jobs at this
                // event.
                queue.insert(pos, queued);
                break;
            };
            machine.occupy(&allocation.nodes);

            // Per-job RNG so the random pattern realisation is reproducible
            // and independent of simulation interleaving.
            let mut job_rng = StdRng::seed_from_u64(
                config.seed ^ queued.job_id.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let quota = trace_job.message_quota();
            let rank_traffic: Vec<RankTraffic> = config
                .pattern
                .traffic(queued.size, quota, &mut job_rng)
                .into_iter()
                .map(|e| RankTraffic {
                    src: e.src,
                    dst: e.dst,
                    weight: e.weight,
                })
                .collect();
            let mut traffic = JobTraffic::new(
                mesh,
                &links,
                queued.job_id,
                &allocation.nodes,
                &rank_traffic,
                1.0,
            );
            // Charge the per-hop routing cost against the nominal pacing:
            // longer routes mean fewer messages per second even uncontended.
            if config.fidelity != Fidelity::ZeroContention {
                traffic.nominal_rate =
                    1.0 / (1.0 + config.per_hop_overhead * traffic.avg_message_distance);
            }
            let quality = commalloc_alloc::metrics::quality(mesh, &allocation.nodes);
            if let Some(log) = grant_log.as_deref_mut() {
                log.push(GrantEvent {
                    job_id: queued.job_id,
                    time: now,
                    size: queued.size,
                    nodes: allocation.nodes.clone(),
                });
            }
            running.push(RunningJob {
                job_id: queued.job_id,
                size: queued.size,
                arrival: queued.arrival,
                start: now,
                messages: quota,
                remaining: quota as f64,
                rate: 1.0,
                traffic,
                nodes: allocation.nodes.clone(),
                avg_pairwise_distance: quality.avg_pairwise_distance,
                components: quality.components,
            });
            started_any = true;
        }

        // Rates change whenever the running set changes (a start or a
        // completion); arrivals that only queue do not disturb the network.
        if started_any || !is_arrival {
            recompute_rates(&mut running, model);
        }
    }

    records.sort_by(|a, b| a.completion.total_cmp(&b.completion));
    let summary = SimSummary::from_records(&records);
    SimResult {
        config: *config,
        records,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use commalloc_workload::synthetic::ParagonTraceModel;
    use commalloc_workload::Job;

    fn tiny_trace() -> Trace {
        Trace::new(vec![
            Job::new(0, 0.0, 4, 100.0),
            Job::new(1, 10.0, 8, 200.0),
            Job::new(2, 20.0, 16, 50.0),
        ])
    }

    #[test]
    fn all_jobs_complete_and_processors_are_returned() {
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        );
        let result = simulate(&tiny_trace(), &config);
        assert_eq!(result.records.len(), 3);
        for r in &result.records {
            assert!(r.start >= r.arrival);
            assert!(r.completion > r.start);
        }
    }

    #[test]
    fn zero_contention_durations_equal_trace_runtimes() {
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        )
        .with_fidelity(Fidelity::ZeroContention);
        let result = simulate(&tiny_trace(), &config);
        for r in &result.records {
            assert!(
                (r.running_time() - r.messages as f64).abs() < 1e-6,
                "job {} ran {} s for {} messages",
                r.job_id,
                r.running_time(),
                r.messages
            );
        }
    }

    #[test]
    fn uncontended_fluid_matches_zero_contention() {
        // A lone small job can never saturate a link, so with the per-hop
        // overhead disabled the fluid model must agree with the
        // zero-contention control.
        let trace = Trace::new(vec![Job::new(0, 0.0, 9, 500.0)]);
        let base = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        )
        .with_per_hop_overhead(0.0);
        let fluid = simulate(&trace, &base);
        let zero = simulate(&trace, &base.with_fidelity(Fidelity::ZeroContention));
        assert!((fluid.records[0].running_time() - zero.records[0].running_time()).abs() < 1e-6);
    }

    #[test]
    fn per_hop_overhead_charges_longer_routes() {
        // A lone job on an idle machine: its running time must equal
        // quota * (1 + overhead * avg_message_distance).
        let trace = Trace::new(vec![Job::new(0, 0.0, 16, 1000.0)]);
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        )
        .with_per_hop_overhead(0.1);
        let result = simulate(&trace, &config);
        let r = &result.records[0];
        let expected = r.messages as f64 * (1.0 + 0.1 * r.avg_message_distance);
        assert!(
            (r.running_time() - expected).abs() < 1e-6,
            "running {} vs expected {}",
            r.running_time(),
            expected
        );
        // And a dispersion-oblivious allocation of the same job runs longer.
        let random = simulate(
            &trace,
            &SimConfig::new(
                Mesh2D::square_16x16(),
                CommPattern::AllToAll,
                AllocatorKind::Random,
            )
            .with_per_hop_overhead(0.1),
        );
        assert!(random.records[0].running_time() > r.running_time());
    }

    #[test]
    fn fcfs_makes_late_small_jobs_wait_behind_a_blocked_head() {
        // Job 0 fills the whole machine; job 1 (huge) blocks; job 2 is small
        // but must wait behind job 1 under FCFS.
        let trace = Trace::new(vec![
            Job::new(0, 0.0, 256, 100.0),
            Job::new(1, 1.0, 200, 100.0),
            Job::new(2, 2.0, 1, 10.0),
        ]);
        let fcfs = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        );
        let result = simulate(&trace, &fcfs);
        let job2 = result.records.iter().find(|r| r.job_id == 2).unwrap();
        let job1 = result.records.iter().find(|r| r.job_id == 1).unwrap();
        assert!(
            job2.start >= job1.start,
            "FCFS must not let job 2 jump ahead"
        );

        // With backfilling, the small job starts immediately after arrival
        // (it fits alongside nothing being free? no — machine is full) — so
        // instead check it starts no later than under FCFS.
        let bf = result.summary.mean_response_time;
        let backfill = simulate(
            &trace,
            &fcfs.with_scheduler(SchedulerKind::FirstFitBackfill),
        );
        assert!(backfill.summary.mean_response_time <= bf + 1e-9);
    }

    #[test]
    fn jobs_too_large_for_the_machine_are_dropped() {
        let trace = Trace::new(vec![
            Job::new(0, 0.0, 320, 100.0),
            Job::new(1, 1.0, 4, 100.0),
        ]);
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::NBody,
            AllocatorKind::Mc,
        );
        let result = simulate(&trace, &config);
        assert_eq!(result.records.len(), 1);
        assert_eq!(result.records[0].job_id, 1);
    }

    #[test]
    fn grant_log_matches_the_job_records() {
        let trace = ParagonTraceModel::scaled(40).generate(9);
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        )
        .with_scheduler(SchedulerKind::EasyBackfill);
        let (result, log) = simulate_logged(&trace, &config);
        assert_eq!(log.len(), result.records.len());
        // Every record's start time and size appear in the log, and the log
        // is sorted by time (jobs start in grant order).
        for r in &result.records {
            let g = log.iter().find(|g| g.job_id == r.job_id).unwrap();
            assert!((g.time - r.start).abs() < 1e-12);
            assert_eq!(g.size, r.size);
            assert_eq!(g.nodes.len(), g.size);
        }
        for pair in log.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        // And `simulate` is exactly the logged run minus the log.
        assert_eq!(simulate(&trace, &config).records, result.records);
    }

    #[test]
    fn simulation_is_deterministic() {
        let trace = ParagonTraceModel::scaled(40).generate(3);
        let config = SimConfig::new(
            Mesh2D::paragon_16x22(),
            CommPattern::Random,
            AllocatorKind::Mc1x1,
        );
        let a = simulate(&trace, &config);
        let b = simulate(&trace, &config);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn contention_never_speeds_jobs_up() {
        let trace = ParagonTraceModel::scaled(60).generate(11);
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::SCurveFreeList,
        );
        let fluid = simulate(&trace, &config);
        for r in &fluid.records {
            assert!(
                r.running_time() >= r.messages as f64 - 1e-6,
                "job {} finished faster than its quota allows",
                r.job_id
            );
        }
    }

    #[test]
    fn every_paper_allocator_completes_a_small_trace() {
        let trace = ParagonTraceModel::scaled(30).generate(5);
        for allocator in AllocatorKind::paper_set() {
            for pattern in CommPattern::paper_patterns() {
                let config = SimConfig::new(Mesh2D::square_16x16(), pattern, allocator);
                let result = simulate(&trace, &config);
                assert_eq!(
                    result.records.len(),
                    trace.len(),
                    "{allocator}/{pattern} lost jobs"
                );
            }
        }
    }

    #[test]
    fn extended_allocators_complete_a_small_trace() {
        // The extension allocators (contiguous, buddy, MBS, hybrid, ablation
        // curves) also drive the engine to completion; the contiguous-only
        // strategies may make jobs wait, but every job eventually runs
        // because every trace job fits the empty 16 x 16 machine.
        let trace = ParagonTraceModel::scaled(25)
            .generate(17)
            .filter_fitting(256);
        for allocator in AllocatorKind::extended_set() {
            let config = SimConfig::new(Mesh2D::square_16x16(), CommPattern::NBody, allocator);
            let result = simulate(&trace, &config);
            assert_eq!(result.records.len(), trace.len(), "{allocator} lost jobs");
            for r in &result.records {
                assert!(r.start >= r.arrival, "{allocator} started a job early");
            }
        }
    }

    #[test]
    fn contiguous_allocation_makes_jobs_wait_for_rectangles() {
        // Two 8-processor jobs fill the 4 x 4 machine; a third 4-processor
        // job arrives while the machine is fragmented. Under the contiguous
        // strategy it must wait for a free 2 x 2 rectangle, so its response
        // time is at least as large as under Hilbert Best Fit (which can use
        // scattered processors immediately).
        let trace = Trace::new(vec![
            Job::new(0, 0.0, 6, 400.0),
            Job::new(1, 1.0, 6, 400.0),
            Job::new(2, 2.0, 4, 50.0),
        ]);
        let mesh = Mesh2D::new(4, 4);
        let contiguous = simulate(
            &trace,
            &SimConfig::new(
                mesh,
                CommPattern::AllToAll,
                AllocatorKind::ContiguousFirstFit,
            ),
        );
        let hilbert = simulate(
            &trace,
            &SimConfig::new(mesh, CommPattern::AllToAll, AllocatorKind::HilbertBestFit),
        );
        assert_eq!(contiguous.records.len(), 3);
        let job2_contig = contiguous.records.iter().find(|r| r.job_id == 2).unwrap();
        let job2_hilbert = hilbert.records.iter().find(|r| r.job_id == 2).unwrap();
        assert!(
            job2_contig.start + 1e-9 >= job2_hilbert.start,
            "contiguous allocation cannot start job 2 earlier than a noncontiguous one"
        );
    }

    #[test]
    fn easy_backfill_lets_small_jobs_jump_a_blocked_head() {
        // Job 0 occupies the whole machine for a long time; job 1 needs the
        // whole machine too and blocks the FCFS queue; job 2 is tiny. Under
        // EASY, job 2 fits in the processors job 1 cannot use yet only if
        // some are free — here none are, so instead check the schedule is
        // no worse than FCFS and every job completes.
        let trace = Trace::new(vec![
            Job::new(0, 0.0, 200, 1000.0),
            Job::new(1, 1.0, 256, 100.0),
            Job::new(2, 2.0, 8, 10.0),
        ]);
        let mesh = Mesh2D::square_16x16();
        let fcfs = SimConfig::new(mesh, CommPattern::AllToAll, AllocatorKind::HilbertBestFit);
        let easy = fcfs.with_scheduler(SchedulerKind::EasyBackfill);
        let fcfs_result = simulate(&trace, &fcfs);
        let easy_result = simulate(&trace, &easy);
        assert_eq!(easy_result.records.len(), 3);
        let job2_fcfs = fcfs_result.records.iter().find(|r| r.job_id == 2).unwrap();
        let job2_easy = easy_result.records.iter().find(|r| r.job_id == 2).unwrap();
        // Job 0 leaves 56 processors free, and job 2 (8 processors, short)
        // finishes long before job 0 releases the rest, so EASY backfills it
        // while FCFS keeps it waiting behind job 1.
        assert!(
            job2_easy.start < job2_fcfs.start,
            "EASY should backfill the small job ({} vs {})",
            job2_easy.start,
            job2_fcfs.start
        );
    }

    #[test]
    fn proportional_share_fidelity_completes_jobs_and_respects_quotas() {
        // The proportional-share ablation drives the same engine: every job
        // completes, no job beats its contention-free quota, and a lone job
        // behaves exactly as under the fluid model (no contention to share).
        let trace = ParagonTraceModel::scaled(30).generate(31);
        let base = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        );
        let proportional = simulate(&trace, &base.with_fidelity(Fidelity::ProportionalShare));
        assert_eq!(proportional.records.len(), trace.len());
        for r in &proportional.records {
            assert!(r.running_time() >= r.messages as f64 - 1e-6);
        }

        let lone = Trace::new(vec![Job::new(0, 0.0, 9, 300.0)]);
        let a = simulate(&lone, &base);
        let b = simulate(&lone, &base.with_fidelity(Fidelity::ProportionalShare));
        assert!(
            (a.records[0].running_time() - b.records[0].running_time()).abs() < 1e-6,
            "a lone job must be identical under both contention disciplines"
        );
    }

    #[test]
    fn utilization_profile_is_consistent_with_the_summary() {
        let trace = ParagonTraceModel::scaled(40).generate(23);
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        );
        let result = simulate(&trace, &config);
        let profile = crate::utilization::UtilizationProfile::from_records(
            &result.records,
            config.mesh.num_nodes(),
        );
        assert!(profile.mean_utilization() > 0.0);
        assert!(profile.peak_utilization() <= 1.0 + 1e-12);
        assert!(
            (profile.demand_fraction(&result.records) - profile.mean_utilization()).abs() < 1e-6
        );
    }
}
