//! Property tests of the EASY backfilling guarantees, driven directly
//! against the now-public reservation API:
//!
//! 1. **No delay**: starting a backfilled job can never push the head
//!    job's shadow-time reservation later.
//! 2. **No starvation**: whatever EASY backfills, at the shadow time the
//!    head job still finds enough free processors to start — and a head
//!    that fits now always starts first.

use commalloc::scheduler::{QueuedJob, RunningSnapshot, SchedulerKind};
use proptest::prelude::*;

/// A queue of 1..=8 jobs with sizes 1..=32 and estimates 1..=1000.
fn queue_strategy() -> impl Strategy<Value = Vec<QueuedJob>> {
    prop::collection::vec((1usize..=32, 1u64..=1000), 1..8).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (size, estimate))| QueuedJob {
                job_id: i as u64,
                size,
                arrival: i as f64,
                estimate: estimate as f64,
            })
            .collect()
    })
}

/// 0..=8 running jobs completing within 1..=1000 seconds from now.
fn running_strategy() -> impl Strategy<Value = Vec<RunningSnapshot>> {
    prop::collection::vec((1usize..=32, 1u64..=1000), 0..8).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(size, dt)| RunningSnapshot {
                completion: dt as f64,
                size,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// A backfill pick is only ever made when the head cannot start, and
    /// starting the pick never delays the head's reservation.
    #[test]
    fn backfill_never_delays_the_shadow_time(
        queue in queue_strategy(),
        running in running_strategy(),
        free in 0usize..=64,
    ) {
        let now = 0.0;
        let head = queue[0];
        let Some(pos) = SchedulerKind::EasyBackfill
            .select_with_context(&queue, free, &running, now)
        else {
            return Ok(()); // nothing may start: trivially safe
        };
        if pos == 0 {
            // The head itself: only legal when it fits right now.
            prop_assert!(head.size <= free);
            return Ok(());
        }
        // A backfill pick: the head must be blocked, the pick must fit.
        let candidate = queue[pos];
        prop_assert!(head.size > free, "backfilled past a startable head");
        prop_assert!(candidate.size <= free);
        // Backfilling requires a *finite* reservation to exist.
        let reservation = SchedulerKind::reservation(head.size, free, &running);
        prop_assert!(reservation.is_some(), "backfilled with no reservation");
        let (shadow, _extra) = reservation.unwrap();
        // Start the candidate hypothetically and recompute: the shadow
        // time must not move later.
        let mut after: Vec<RunningSnapshot> = running.clone();
        after.push(RunningSnapshot {
            completion: now + candidate.estimate,
            size: candidate.size,
        });
        let after_reservation =
            SchedulerKind::reservation(head.size, free - candidate.size, &after);
        prop_assert!(
            after_reservation.is_some(),
            "backfill destroyed the reservation entirely"
        );
        let (shadow_after, _) = after_reservation.unwrap();
        prop_assert!(
            shadow_after <= shadow + 1e-9,
            "shadow time moved from {shadow} to {shadow_after}"
        );
    }

    /// Greedily backfilling until EASY refuses, then playing the
    /// schedule forward: at the shadow time the head finds enough free
    /// processors — the head is never starved by the backfilled jobs.
    #[test]
    fn head_can_start_at_the_shadow_time(
        queue in queue_strategy(),
        running in running_strategy(),
        free in 0usize..=64,
    ) {
        let now = 0.0;
        let head = queue[0];
        if head.size <= free {
            // Head starts immediately; nothing to prove.
            prop_assert_eq!(
                SchedulerKind::EasyBackfill.select_with_context(&queue, free, &running, now),
                Some(0)
            );
            return Ok(());
        }
        let Some((shadow, _extra)) = SchedulerKind::reservation(head.size, free, &running)
        else {
            // Unbounded reservation: EASY must refuse all backfill.
            let pick = SchedulerKind::EasyBackfill
                .select_with_context(&queue, free, &running, now);
            prop_assert_eq!(pick, None);
            return Ok(());
        };

        // Greedy backfill loop, exactly as a drain would run it.
        let mut queue = queue.clone();
        let mut running = running.clone();
        let mut free = free;
        let mut backfilled = 0usize;
        while let Some(pos) =
            SchedulerKind::EasyBackfill.select_with_context(&queue, free, &running, now)
        {
            prop_assert!(pos > 0, "the blocked head cannot start");
            let candidate = queue.remove(pos);
            free -= candidate.size;
            running.push(RunningSnapshot {
                completion: now + candidate.estimate,
                size: candidate.size,
            });
            backfilled += 1;
            prop_assert!(backfilled <= 16, "drain failed to terminate");
        }

        // Play the schedule to the shadow time: everything completing at
        // or before it returns its processors.
        let free_at_shadow: usize = free
            + running
                .iter()
                .filter(|r| r.completion <= shadow)
                .map(|r| r.size)
                .sum::<usize>();
        prop_assert!(
            free_at_shadow >= head.size,
            "head of size {} finds only {free_at_shadow} processors at the \
             shadow time {shadow}",
            head.size
        );
    }
}
