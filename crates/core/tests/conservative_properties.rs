//! Property tests of the conservative-backfilling guarantees, driven
//! against the [`SchedulerKind::reservations`] table (the per-queue
//! start-time guarantees) and `select_with_context`:
//!
//! 1. **No reservation delay**: starting a selected backfill candidate
//!    leaves the reservation of every job *ahead* of it exactly where it
//!    was — earlier jobs never slip because something behind them
//!    started.
//! 2. **No starvation / feasibility**: after greedily draining every
//!    pick, the remaining reservation schedule is feasible — replaying
//!    predicted releases forward, every job finds its processors free at
//!    its reserved start (the head included, so nothing starves).
//! 3. **Cancel recompute**: cancelling a mid-queue job never touches the
//!    reservations ahead of it, and the recomputed schedule for the
//!    survivors is feasible again. (Jobs *behind* the cancelled one may
//!    legitimately move in either direction — a backfill that existed
//!    only because the cancelled job blocked the queue can evaporate.)
//! 4. **Missing walltimes are infinite**: jobs and running snapshots
//!    without estimates (the online service's `walltime: None`) make
//!    everything behind an unplannable reservation unplannable too, and
//!    never unsoundly backfill.

use commalloc::scheduler::{QueuedJob, RunningSnapshot, SchedulerKind};
use proptest::prelude::*;

/// A queue of 1..=8 jobs with sizes 1..=32; an estimate spec of 0 means
/// "no walltime estimate" and maps to infinity, as the online admission
/// queue models it.
fn queue_strategy() -> impl Strategy<Value = Vec<QueuedJob>> {
    prop::collection::vec((1usize..=32, 0u64..=1000), 1..8).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (size, estimate))| QueuedJob {
                job_id: i as u64,
                size,
                arrival: i as f64,
                estimate: if estimate == 0 {
                    f64::INFINITY
                } else {
                    estimate as f64
                },
            })
            .collect()
    })
}

/// 0..=8 running jobs; a completion spec of 0 means "no estimate" —
/// the job is predicted to run forever and never enters the profile.
fn running_strategy() -> impl Strategy<Value = Vec<RunningSnapshot>> {
    prop::collection::vec((1usize..=32, 0u64..=1000), 0..8).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(size, dt)| RunningSnapshot {
                completion: if dt == 0 { f64::INFINITY } else { dt as f64 },
                size,
            })
            .collect()
    })
}

/// Independently re-verifies a reservation schedule: replays the
/// predicted releases and the reserved starts in time order and asserts
/// every job finds its processors free at its reserved start. All inputs
/// are integral, so event times are exact in `f64` and the check is not
/// tolerance-sensitive. Jobs with infinite reservations promise nothing
/// and are skipped.
fn assert_schedule_feasible(
    queue: &[QueuedJob],
    starts: &[f64],
    free: usize,
    running: &[RunningSnapshot],
) -> Result<(), TestCaseError> {
    // (release time, size) heap substitute: collect, then drain sorted.
    let mut releases: Vec<(f64, usize)> = running
        .iter()
        .filter(|r| r.completion.is_finite())
        .map(|r| (r.completion.max(0.0), r.size))
        .collect();
    for (job, &start) in queue.iter().zip(starts) {
        if start.is_finite() && (start + job.estimate).is_finite() {
            releases.push((start + job.estimate, job.size));
        }
    }
    let mut event_times: Vec<f64> = starts.iter().copied().filter(|s| s.is_finite()).collect();
    event_times.extend(releases.iter().map(|r| r.0));
    event_times.sort_by(f64::total_cmp);
    event_times.dedup();

    let mut capacity = free;
    let mut released = vec![false; releases.len()];
    for t in event_times {
        // A release at time c makes its processors available *at* c,
        // before any start at the same instant (half-open windows).
        for (i, &(when, size)) in releases.iter().enumerate() {
            if !released[i] && when <= t {
                released[i] = true;
                capacity += size;
            }
        }
        for (job, &start) in queue.iter().zip(starts) {
            if start == t {
                prop_assert!(
                    capacity >= job.size,
                    "job {} reserved at t = {t} finds only {capacity} of {} processors",
                    job.job_id,
                    job.size
                );
                capacity -= job.size;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Starting whatever conservative selects leaves every earlier job's
    /// reservation untouched — the defining guarantee of the policy. A
    /// fitting head is always the pick; a backfill pick must fit now and
    /// hold a reservation that is due now.
    #[test]
    fn backfill_never_delays_any_earlier_reservation(
        queue in queue_strategy(),
        running in running_strategy(),
        free in 0usize..=64,
    ) {
        let now = 0.0;
        let head = queue[0];
        let starts_before = SchedulerKind::reservations(&queue, free, &running, now);
        let pick = SchedulerKind::Conservative.select_with_context(&queue, free, &running, now);
        if head.size <= free {
            // A fitting head needs no reservation: it simply starts.
            prop_assert_eq!(pick, Some(0));
            return Ok(());
        }
        let Some(pos) = pick else {
            return Ok(()); // nothing may start: trivially safe
        };
        prop_assert!(pos > 0, "the blocked head cannot start");
        let candidate = queue[pos];
        prop_assert!(candidate.size <= free, "picked a job that does not fit");
        prop_assert!(
            starts_before[pos] <= now,
            "picked a job whose reservation (t = {}) is not due",
            starts_before[pos]
        );
        // Hypothetically start the candidate and recompute: every job
        // ahead of it keeps its exact start.
        let mut shorter = queue.clone();
        shorter.remove(pos);
        let mut after: Vec<RunningSnapshot> = running.clone();
        after.push(RunningSnapshot {
            completion: now + candidate.estimate,
            size: candidate.size,
        });
        let starts_after =
            SchedulerKind::reservations(&shorter[..pos], free - candidate.size, &after, now);
        for i in 0..pos {
            prop_assert!(
                starts_after[i] <= starts_before[i] + 1e-9,
                "job {} slipped from t = {} to t = {} because job {} backfilled",
                queue[i].job_id,
                starts_before[i],
                starts_after[i],
                candidate.job_id
            );
        }
    }

    /// Greedily draining every conservative pick, then recomputing the
    /// survivors' reservations: the schedule replays feasibly — at every
    /// reserved start the processors really are free, so no queued job
    /// (the head included) is starved by what backfilled.
    #[test]
    fn drained_queue_keeps_a_feasible_reservation_schedule(
        queue in queue_strategy(),
        running in running_strategy(),
        free in 0usize..=64,
    ) {
        let now = 0.0;
        let mut queue = queue.clone();
        let mut running = running.clone();
        let mut free = free;
        let mut started = 0usize;
        while let Some(pos) =
            SchedulerKind::Conservative.select_with_context(&queue, free, &running, now)
        {
            let picked = queue.remove(pos);
            prop_assert!(picked.size <= free);
            free -= picked.size;
            running.push(RunningSnapshot {
                completion: now + picked.estimate,
                size: picked.size,
            });
            started += 1;
            prop_assert!(started <= 16, "drain failed to terminate");
        }
        let starts = SchedulerKind::reservations(&queue, free, &running, now);
        // Whatever remains either has a future reservation or is cut off
        // behind an unplannable job — nothing startable was left behind.
        for (job, &start) in queue.iter().zip(&starts) {
            prop_assert!(
                start > now || job.size > free,
                "job {} (start {start}, size {}) should have been drained",
                job.job_id,
                job.size
            );
        }
        // The unplannable cut is a suffix: after the first infinite
        // reservation, every later one is infinite too.
        let mut unplannable = false;
        for &start in &starts {
            if unplannable {
                prop_assert!(start.is_infinite());
            }
            unplannable = unplannable || start.is_infinite();
        }
        assert_schedule_feasible(&queue, &starts, free, &running)?;
    }

    /// Cancelling a mid-queue job: reservations ahead of it are exactly
    /// unchanged (their computation never saw it), and the recomputed
    /// schedule for the survivors is feasible.
    #[test]
    fn cancel_mid_queue_recomputes_a_feasible_schedule(
        queue in queue_strategy(),
        running in running_strategy(),
        free in 0usize..=64,
        cancel_spec in 0usize..=7,
    ) {
        let now = 0.0;
        let cancel = cancel_spec % queue.len();
        let starts_before = SchedulerKind::reservations(&queue, free, &running, now);
        let mut survivors = queue.clone();
        survivors.remove(cancel);
        let starts_after = SchedulerKind::reservations(&survivors, free, &running, now);
        for i in 0..cancel {
            // Bitwise-identical, not approximately: the prefix
            // computation is independent of everything behind it.
            prop_assert!(
                starts_after[i] == starts_before[i]
                    || (starts_after[i].is_infinite() && starts_before[i].is_infinite()),
                "cancelling job {} moved *earlier* job {} from t = {} to t = {}",
                queue[cancel].job_id,
                queue[i].job_id,
                starts_before[i],
                starts_after[i]
            );
        }
        assert_schedule_feasible(&survivors, &starts_after, free, &running)?;
    }

    /// The missing-walltime edge: when the decisive capacity belongs to
    /// jobs running without an estimate, conservative treats the queue as
    /// unplannable past that point and refuses to backfill — mirroring
    /// EASY's unbounded-reservation rule, generalised to every queue
    /// position.
    #[test]
    fn unplannable_capacity_denies_backfill(
        queue in queue_strategy(),
        sizes in prop::collection::vec(1usize..=32, 0..8),
        free in 0usize..=8,
    ) {
        let now = 0.0;
        // Every running job lacks an estimate: no release ever enters
        // the profile, so any job larger than `free` is unplannable.
        let running: Vec<RunningSnapshot> = sizes
            .iter()
            .map(|&size| RunningSnapshot {
                completion: f64::INFINITY,
                size,
            })
            .collect();
        let head = queue[0];
        let pick = SchedulerKind::Conservative.select_with_context(&queue, free, &running, now);
        if head.size > free {
            prop_assert_eq!(
                pick, None,
                "nothing may leapfrog an unplannable head"
            );
            let starts = SchedulerKind::reservations(&queue, free, &running, now);
            prop_assert!(starts.iter().all(|s| s.is_infinite()));
        } else {
            prop_assert_eq!(pick, Some(0));
        }
    }
}
