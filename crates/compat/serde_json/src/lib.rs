//! Offline stand-in for `serde_json` (see `crates/compat/` for the
//! rationale): JSON text rendering and parsing for the [`serde`] shim's
//! [`Value`] tree.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers parse to `Value::Int` when they are
//! integral and fit `i64`, to `Value::UInt` when they fit only `u64`, and to
//! `Value::Float` otherwise, so integer identifiers survive round trips
//! exactly.

pub use serde::{Map, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Errors from rendering or parsing JSON.
pub type Error = serde::Error;

/// Serialises `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parses JSON text into any deserialisable type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` prints the shortest representation that round-trips;
                // integral floats print without a fraction, which is valid
                // JSON.
                let _ = write!(out, "{f}");
            } else {
                // JSON has no NaN/Infinity; match serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, value, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?,
            );
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        // Surrogate pairs for non-BMP characters.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::msg("invalid escape in string")),
                },
                _ => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit in \\u escape"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let mut obj = Map::new();
        obj.insert("name".into(), Value::Str("mesh \"A\"\n".into()));
        obj.insert("count".into(), Value::Int(-3));
        obj.insert("big".into(), Value::UInt(u64::MAX));
        obj.insert("ratio".into(), Value::Float(0.25));
        obj.insert(
            "items".into(),
            Value::Array(vec![Value::Bool(true), Value::Null]),
        );
        let v = Value::Object(obj);
        let compact = to_string(&v).unwrap();
        let parsed: Value = from_str(&compact).unwrap();
        assert_eq!(parsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let parsed_pretty: Value = from_str(&pretty).unwrap();
        assert_eq!(parsed_pretty, v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn integers_stay_exact() {
        let parsed: Value = from_str("9007199254740993").unwrap();
        assert_eq!(parsed, Value::Int(9007199254740993));
        assert_eq!(to_string(&parsed).unwrap(), "9007199254740993");
        let parsed: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(parsed, Value::UInt(u64::MAX));
    }

    #[test]
    fn unicode_escapes_parse() {
        let parsed: String = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(parsed, "aé😀b");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
