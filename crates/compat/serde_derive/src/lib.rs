//! Derive macros for the offline `serde` stand-in (see `crates/compat/`).
//!
//! The build environment has no access to crates.io, so the workspace ships
//! a small value-tree serialisation layer instead of real serde. This crate
//! provides the `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! it, covering exactly the shapes the workspace uses:
//!
//! * structs with named fields        → JSON objects
//! * newtype structs (one field)      → the inner value
//! * tuple structs (several fields)   → JSON arrays
//! * fieldless ("C-like") enums       → the variant name as a JSON string
//!
//! Enums with data-carrying variants are rejected with a compile error;
//! protocol types that need richer encodings implement the traits by hand.
//!
//! The input is parsed directly from the token stream (no `syn`/`quote`),
//! which is robust enough for the shapes above: attributes are skipped,
//! visibility modifiers are skipped, and field types are consumed with
//! angle-bracket depth tracking so generic types containing commas parse
//! correctly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a type we can derive for.
enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Tuple struct: number of fields.
    Tuple(usize),
    /// Fieldless enum: variant names in declaration order.
    Enum(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn is_ident(tok: &TokenTree, text: &str) -> bool {
    matches!(tok, TokenTree::Ident(i) if i.to_string() == text)
}

/// Skips `#[...]` attribute groups starting at `i`; returns the new index.
fn skip_attributes(toks: &[TokenTree], mut i: usize) -> usize {
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            if p.as_char() == '#' {
                // `#` is followed by a bracketed group (or `!` + group for
                // inner attributes, which cannot appear here).
                i += 1;
                if i < toks.len() {
                    i += 1;
                }
                continue;
            }
        }
        break;
    }
    i
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...) at `i`.
fn skip_visibility(toks: &[TokenTree], mut i: usize) -> usize {
    if i < toks.len() && is_ident(&toks[i], "pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Consumes a type starting at `i` until a top-level `,` (or the end),
/// tracking `<...>` nesting depth so generic arguments are not split.
fn skip_type(toks: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < toks.len() {
        if let TokenTree::Punct(p) = &toks[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses the fields of a named-field struct body.
fn parse_named_fields(body: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        i = skip_attributes(body, i);
        i = skip_visibility(body, i);
        if i >= body.len() {
            break;
        }
        let TokenTree::Ident(name) = &body[i] else {
            panic!("serde shim derive: expected field name, got {:?}", body[i]);
        };
        fields.push(name.to_string());
        i += 1; // name
        i += 1; // ':'
        i = skip_type(body, i);
        i += 1; // ','
    }
    fields
}

/// Counts the fields of a tuple-struct body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    let mut count = 0usize;
    let mut i = 0usize;
    while i < body.len() {
        i = skip_attributes(body, i);
        i = skip_visibility(body, i);
        if i >= body.len() {
            break;
        }
        count += 1;
        i = skip_type(body, i);
        i += 1; // ','
    }
    count
}

/// Parses the variants of an enum body, rejecting data-carrying variants.
fn parse_enum_variants(type_name: &str, body: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        i = skip_attributes(body, i);
        if i >= body.len() {
            break;
        }
        let TokenTree::Ident(name) = &body[i] else {
            panic!(
                "serde shim derive: expected variant name in enum {type_name}, got {:?}",
                body[i]
            );
        };
        variants.push(name.to_string());
        i += 1;
        if let Some(TokenTree::Group(_)) = body.get(i) {
            panic!(
                "serde shim derive: enum {type_name} has a data-carrying variant \
                 {}; implement Serialize/Deserialize by hand",
                variants.last().unwrap()
            );
        }
        // Skip an optional discriminant (`= expr`) up to the next comma.
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1; // ','
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&toks, 0);
    i = skip_visibility(&toks, i);
    let is_struct = if is_ident(&toks[i], "struct") {
        true
    } else if is_ident(&toks[i], "enum") {
        false
    } else {
        panic!("serde shim derive supports only structs and enums");
    };
    i += 1;
    let TokenTree::Ident(name) = &toks[i] else {
        panic!("serde shim derive: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }
    let Some(TokenTree::Group(group)) = toks.get(i) else {
        panic!("serde shim derive: expected body of {name}");
    };
    let body: Vec<TokenTree> = group.stream().into_iter().collect();
    let shape = if !is_struct {
        Shape::Enum(parse_enum_variants(&name, &body))
    } else if group.delimiter() == Delimiter::Brace {
        Shape::Struct(parse_named_fields(&body))
    } else {
        Shape::Tuple(count_tuple_fields(&body))
    };
    Parsed { name, shape }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!("let mut m = ::serde::Map::new();\n{inserts}::serde::Value::Object(m)")
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let pushes: String = (0..*n)
                .map(|i| format!("items.push(::serde::Serialize::to_value(&self.{i}));\n"))
                .collect();
            format!(
                "let mut items = ::std::vec::Vec::with_capacity({n});\n\
                 {pushes}::serde::Value::Array(items)"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"))
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Struct(fields) => {
            let field_inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\n\
                             obj.get({f:?}).unwrap_or(&::serde::Value::Null))\n\
                             .map_err(|e| ::serde::Error::context(concat!({:?}, \".\", {f:?}), e))?,\n",
                        name
                    )
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                     ::serde::Error::msg(concat!(\"expected object for \", {name:?})))?;\n\
                 Ok({name} {{\n{field_inits}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let elems: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?,\n"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                     ::serde::Error::msg(concat!(\"expected array for \", {name:?})))?;\n\
                 if arr.len() != {n} {{\n\
                     return Err(::serde::Error::msg(concat!(\"wrong arity for \", {name:?})));\n\
                 }}\n\
                 Ok({name}(\n{elems}))"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Some({v:?}) => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "match v.as_str() {{\n{arms}\
                 _ => Err(::serde::Error::msg(concat!(\"unknown variant for \", {name:?}))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl must parse")
}
