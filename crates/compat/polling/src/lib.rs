//! Offline stand-in for the [`polling`](https://docs.rs/polling) crate.
//!
//! The build environment has no registry access, so this shim implements
//! exactly the readiness surface the workspace's TCP server uses — no
//! more: a [`Poller`] that watches raw file descriptors for read/write
//! readiness, plus a pipe-based [`Waker`] for cross-thread wakeups.
//!
//! Backends (selected at compile time):
//!
//! * **Linux:** `epoll_create1` / `epoll_ctl` / `epoll_wait`, declared as
//!   raw `extern "C"` bindings (the workspace has no `libc` crate; the
//!   symbols live in the libc every Rust binary already links).
//! * **Other Unix (macOS dev boxes):** a `poll(2)` fallback with a
//!   registration table kept in user space. Slower (O(fds) per wait) but
//!   semantically identical, so the server builds and runs everywhere.
//!
//! Divergence from the real crate: readiness here is **level-triggered**
//! and interest persists until [`Poller::modify`]/[`Poller::delete`]
//! (the real crate defaults to oneshot mode). The workspace's event loop
//! is written against level-triggered semantics.

#![forbid(unsafe_op_in_unsafe_fn)]
#![cfg(unix)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_void};
use std::time::Duration;

/// Interest in (or readiness of) one registered descriptor.
///
/// On registration the flags declare interest; on return from
/// [`Poller::wait`] they report readiness. Error/hangup conditions are
/// reported as both readable and writable so the owner attempts I/O and
/// observes the failure through the normal `read`/`write` error path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identity of the descriptor, echoed back by `wait`.
    pub key: usize,
    /// Read interest / read readiness.
    pub readable: bool,
    /// Write interest / write readiness.
    pub writable: bool,
}

impl Event {
    /// Read interest only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write interest only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Read and write interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (error/hangup conditions still surface).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared raw bindings (all Unix targets).
// ---------------------------------------------------------------------------

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
}

const F_SETFD: c_int = 2;
const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const FD_CLOEXEC: c_int = 1;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0x800;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A nonblocking close-on-exec pipe pair `(read_end, write_end)`.
fn make_pipe() -> io::Result<(RawFd, RawFd)> {
    let mut fds = [0 as c_int; 2];
    cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
    for fd in fds {
        let flags = cvt(unsafe { fcntl(fd, F_GETFL, 0) })?;
        cvt(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
        cvt(unsafe { fcntl(fd, F_SETFD, FD_CLOEXEC) })?;
    }
    Ok((fds[0], fds[1]))
}

fn timeout_millis(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        // Round up so a 100µs timeout does not busy-spin at 0ms.
        Some(d) => d.as_millis().clamp(1, c_int::MAX as u128) as c_int,
    }
}

// ---------------------------------------------------------------------------
// Linux backend: epoll.
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod backend {
    use super::*;

    // The kernel ABI struct. Packed on x86 only, matching the kernel's
    // layout (other architectures use natural alignment).
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    const MAX_EVENTS: usize = 1024;

    /// Level-triggered readiness over an epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Creates a fresh poller.
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: (if interest.readable { EPOLLIN } else { 0 })
                    | (if interest.writable { EPOLLOUT } else { 0 }),
                data: interest.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
            Ok(())
        }

        /// Registers `fd` with the given interest.
        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest)
        }

        /// Replaces the interest of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest)
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, Event::none(0))
        }

        /// Blocks until at least one registered descriptor is ready (or
        /// the timeout elapses; `None` blocks indefinitely), appending
        /// readiness events to `events`. Returns the number appended.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let timeout = timeout_millis(timeout);
            loop {
                let n = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as c_int, timeout)
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for slot in &buf[..n as usize] {
                    // Copy out of the (possibly packed) ABI struct before use.
                    let mask = slot.events;
                    let key = slot.data as usize;
                    let broken = mask & (EPOLLERR | EPOLLHUP) != 0;
                    events.push(Event {
                        key,
                        readable: mask & EPOLLIN != 0 || broken,
                        writable: mask & EPOLLOUT != 0 || broken,
                    });
                }
                return Ok(n as usize);
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Portable Unix backend: poll(2) over a user-space registration table.
// ---------------------------------------------------------------------------

#[cfg(not(target_os = "linux"))]
mod backend {
    use super::*;
    use std::collections::HashMap;
    use std::os::raw::c_short;
    use std::sync::Mutex;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[cfg(target_os = "macos")]
    type NFds = std::os::raw::c_uint;
    #[cfg(not(target_os = "macos"))]
    type NFds = std::os::raw::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    /// Level-triggered readiness via `poll(2)`; the interest set lives in
    /// user space and is rebuilt into a `pollfd` array on every wait.
    pub struct Poller {
        registry: Mutex<HashMap<RawFd, Event>>,
    }

    impl Poller {
        /// Creates a fresh poller.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registry: Mutex::new(HashMap::new()),
            })
        }

        /// Registers `fd` with the given interest.
        pub fn add(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poller registry poisoned");
            if registry.insert(fd, interest).is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            Ok(())
        }

        /// Replaces the interest of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, interest: Event) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poller registry poisoned");
            match registry.get_mut(&fd) {
                Some(slot) => {
                    *slot = interest;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            let mut registry = self.registry.lock().expect("poller registry poisoned");
            registry
                .remove(&fd)
                .map(|_| ())
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        /// Blocks until at least one registered descriptor is ready (or
        /// the timeout elapses; `None` blocks indefinitely), appending
        /// readiness events to `events`. Returns the number appended.
        pub fn wait(
            &self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let (mut fds, keys): (Vec<PollFd>, Vec<Event>) = {
                let registry = self.registry.lock().expect("poller registry poisoned");
                registry
                    .iter()
                    .map(|(&fd, &interest)| {
                        (
                            PollFd {
                                fd,
                                events: (if interest.readable { POLLIN } else { 0 })
                                    | (if interest.writable { POLLOUT } else { 0 }),
                                revents: 0,
                            },
                            interest,
                        )
                    })
                    .unzip()
            };
            let timeout = timeout_millis(timeout);
            loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                let mut appended = 0usize;
                for (slot, interest) in fds.iter().zip(&keys) {
                    let mask = slot.revents;
                    if mask == 0 {
                        continue;
                    }
                    let broken = mask & (POLLERR | POLLHUP | POLLNVAL) != 0;
                    events.push(Event {
                        key: interest.key,
                        readable: mask & POLLIN != 0 || broken,
                        writable: mask & POLLOUT != 0 || broken,
                    });
                    appended += 1;
                }
                return Ok(appended);
            }
        }
    }
}

pub use backend::Poller;

/// A cross-thread wakeup for a [`Poller`]: a nonblocking pipe whose read
/// end is registered readable under a caller-chosen key. Any thread may
/// [`Waker::wake`]; the polling thread sees the key become readable and
/// calls [`Waker::drain`] before going back to sleep.
pub struct Waker {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl Waker {
    /// Builds a waker and registers its read end with `poller` at `key`.
    pub fn new(poller: &Poller, key: usize) -> io::Result<Waker> {
        let (read_fd, write_fd) = make_pipe()?;
        let waker = Waker { read_fd, write_fd };
        poller.add(read_fd, Event::readable(key))?;
        Ok(waker)
    }

    /// Makes the poller's next (or current) wait return with this
    /// waker's key readable. A full pipe already guarantees a pending
    /// wakeup, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            write(self.write_fd, (&byte as *const u8).cast::<c_void>(), 1);
        }
    }

    /// Empties the pipe so the (level-triggered) readiness clears.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::new(Waker::new(&poller, 42).unwrap());
        let wake_from = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            wake_from.wake();
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 42);
        assert!(events[0].readable);
        waker.drain();
        handle.join().unwrap();
    }

    #[test]
    fn socket_readiness_is_level_triggered_until_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server_side.as_raw_fd(), Event::readable(7))
            .unwrap();

        // Nothing pending yet: a zero-ish timeout reports no readiness.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.iter().all(|e| !e.readable), "events {events:?}");

        client.write_all(b"ping\n").unwrap();
        client.flush().unwrap();
        // Level-triggered: the data keeps the fd readable across waits.
        for _ in 0..2 {
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.key == 7 && e.readable),
                "events {events:?}"
            );
        }

        // Write interest on an idle socket reports writable immediately.
        poller
            .modify(server_side.as_raw_fd(), Event::all(7))
            .unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.writable));
        poller.delete(server_side.as_raw_fd()).unwrap();
    }
}
