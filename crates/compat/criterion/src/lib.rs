//! Offline stand-in for `criterion` (see `crates/compat/` for the
//! rationale): the API surface the workspace's benches use, backed by a
//! simple wall-clock harness.
//!
//! Each `Bencher::iter` call runs a short calibration pass to pick an
//! iteration count targeting ~50 ms of measurement, then reports the mean
//! time per iteration. There are no statistical analyses, saved baselines or
//! HTML reports — the point is that `cargo bench` compiles, runs and prints
//! comparable per-iteration numbers in an offline environment.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A compound id: `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Runs closures and measures their time per iteration.
pub struct Bencher {
    label: String,
}

impl Bencher {
    /// Measures `f`, printing the mean time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibration: find an iteration count taking roughly the target.
        let target = Duration::from_millis(50);
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 24 {
                break elapsed / iters.max(1) as u32;
            }
            // Grow towards the target with a safety factor.
            let needed = if elapsed.is_zero() {
                iters * 100
            } else {
                let ratio = target.as_nanos() as f64 / elapsed.as_nanos() as f64;
                ((iters as f64 * ratio * 1.2) as u64).max(iters + 1)
            };
            iters = needed.min(1 << 24);
        };
        println!(
            "bench: {:<60} {:>12} /iter",
            self.label,
            format_duration(per_iter)
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            label: format!("{}/{}", self.name, id.into()),
        };
        f(&mut bencher);
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            label: format!("{}/{}", self.name, id.into()),
        };
        f(&mut bencher, input);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            label: name.to_string(),
        };
        f(&mut bencher);
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Accepted for compatibility; this harness has no statistical
    /// sampling, so the value is ignored.
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $($function(&mut criterion);)+
        }
    };
    ($group:ident, $($function:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $group;
            config = $crate::Criterion::default();
            targets = $($function),+
        );
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's own; benches may use either this or
/// `std::hint::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_prints() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0);
        let mut group = c.benchmark_group("group");
        group.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(2)), "2.00 ms");
    }
}
