//! Offline stand-in for `serde` (see `crates/compat/` for the rationale).
//!
//! The build environment cannot reach crates.io, so the workspace ships a
//! small self-contained serialisation layer under the same crate name. It is
//! API-compatible with the subset of serde the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on named-field structs, newtype
//!   structs and fieldless enums (via the sibling `serde_derive` shim);
//! * `serde_json::{to_string, to_string_pretty, from_str, Value}` in the
//!   sibling `serde_json` shim.
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! [`Serialize`] renders to an owned [`Value`] tree and [`Deserialize`] reads
//! from one. For the workspace's payloads (simulation summaries, service
//! protocol messages — all small) the intermediate tree is not a bottleneck,
//! and it keeps the shim a few hundred lines.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

/// An insertion-ordered string-keyed map (JSON object).
///
/// Backed by a `Vec` of entries: the workspace's objects are small (tens of
/// keys), lookups are rare, and preserving declaration order makes the JSON
/// output stable and readable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key, replacing any existing entry with the same key.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl Value {
    /// Member lookup on objects; `None` for any other kind of value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Serialisation/deserialisation error: a message with optional context
/// breadcrumbs accumulated as errors propagate out of nested values.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Wraps an error with a location breadcrumb (used by the derive).
    pub fn context(location: &str, inner: Error) -> Self {
        Error {
            message: format!("{location}: {}", inner.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `v`, reporting a descriptive [`Error`] on shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers
// ---------------------------------------------------------------------------

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(v),
                }
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so the output is deterministic.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}
serialize_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::msg(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::msg(format!("{u} out of range for {}", stringify!($t)))),
                    other => Err(Error::msg(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::msg(format!("expected number, got {v:?}")))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::msg(format!("expected bool, got {v:?}")))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg(format!("expected string, got {v:?}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| Error::msg(format!("expected array, got {v:?}")))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {v:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::msg(format!("expected object, got {v:?}")))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! deserialize_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected array, got {v:?}")))?;
                if arr.len() != $len {
                    return Err(Error::msg(format!(
                        "expected array of length {}, got {}", $len, arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )+};
}
deserialize_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".into(), Value::Int(1));
        m.insert("a".into(), Value::Int(2));
        m.insert("b".into(), Value::Int(3));
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Int(3)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&17u64.to_value()).unwrap(), 17);
        assert_eq!(i32::from_value(&(-4i32).to_value()).unwrap(), -4);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(
            Option::<u32>::from_value(&Value::Null).unwrap(),
            None::<u32>
        );
        assert_eq!(
            <(u32, String)>::from_value(&(7u32, "x".to_string()).to_value()).unwrap(),
            (7, "x".to_string())
        );
    }

    #[test]
    fn numbers_coerce_across_kinds() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.0).as_i64(), None);
        assert_eq!(Value::UInt(u64::MAX).as_i64(), None);
        assert_eq!(Value::UInt(5).as_i64(), Some(5));
    }

    #[test]
    fn errors_accumulate_context() {
        let e = Error::context("Foo.bar", Error::msg("expected integer"));
        assert_eq!(e.to_string(), "Foo.bar: expected integer");
    }
}
