//! Offline stand-in for `proptest` (see `crates/compat/` for the rationale).
//!
//! Implements the property-testing surface the workspace's tests use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header),
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`],
//! * strategies: numeric ranges, [`any`], [`Just`], tuples,
//!   [`collection::vec`], [`sample::select`], [`prop_oneof!`] and
//!   [`Strategy::prop_map`].
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-case RNG and failures are **not shrunk** — the failing case is
//! reported as generated. Each case's seed is derived from the case index,
//! so a reported failure reproduces by rerunning the test.

use rand::prelude::*;

/// Deterministic RNG handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for a given case index (deterministic across runs).
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(0x50_52_4f_50u64 ^ case.wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty collection");
        self.inner.gen_range(0..n)
    }
}

/// A failed or rejected test case.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f(value)` for generated values.
    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    /// A strategy that generates an intermediate value and then draws from
    /// the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between several strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.options.len());
        self.options[i].generate(rng)
    }
}

// Numeric ranges are strategies themselves, as in real proptest.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.inner, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.inner, self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rand::Rng::gen_range(&mut rng.inner, self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, spread across magnitudes.
        let mantissa = rng.unit_f64() * 2.0 - 1.0;
        let exponent = rng.index(61) as i32 - 30;
        mantissa * (2f64).powi(exponent)
    }
}

/// Strategy form of [`Arbitrary`]; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive-exclusive length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                self.size.lo + rng.index(self.size.hi - self.size.lo)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// A uniform choice from a fixed set of values.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Uniformly selects one of `items`; panics if empty.
    pub fn select<T: Clone>(items: impl IntoIterator<Item = T>) -> Select<T> {
        let items: Vec<T> = items.into_iter().collect();
        assert!(!items.is_empty(), "select() needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.index(self.items.len())].clone()
        }
    }
}

/// Submodule aliases matching real proptest's `prop::` path.
pub mod prop {
    pub use crate::{collection, sample};
}

/// The usual glob import for tests.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, sample, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __proptest_rng = $crate::TestRng::deterministic(case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body;
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
        $crate::__proptest_fns!{ cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Fails the enclosing property when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the enclosing property when the values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Skips the case when the assumption does not hold (counted as passing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($strat) as $crate::BoxedStrategy<_>),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u16..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        fn tuples_and_maps_compose((a, b) in (0u32..5, 0u32..5), c in (0u32..3).prop_map(|v| v * 2)) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(c % 2 == 0 && c <= 4);
        }

        fn vec_lengths_follow_size_range(v in collection::vec(0u8..255, 2..6), w in prop::collection::vec(any::<u32>(), 3)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
        }

        fn select_and_oneof_pick_members(
            s in sample::select(vec![10u32, 20, 30]),
            o in prop_oneof![Just(1.0f64), Just(0.5)],
        ) {
            prop_assert!([10, 20, 30].contains(&s));
            prop_assert!(o == 1.0 || o == 0.5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|case| TestRng::deterministic(case).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|case| TestRng::deterministic(case).next_u64())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_the_case() {
        // Hand-expanded single failing case to exercise the error path.
        let config = ProptestConfig::with_cases(1);
        for case in 0..config.cases as u64 {
            let mut rng = TestRng::deterministic(case);
            let x = Strategy::generate(&(0usize..10), &mut rng);
            let result: Result<(), TestCaseError> = (|| {
                prop_assert!(x > 100, "x was only {x}");
                Ok(())
            })();
            if let Err(e) = result {
                panic!("proptest case {case} failed: {e}");
            }
        }
    }
}
