//! Offline stand-in for `rayon` (see `crates/compat/` for the rationale).
//!
//! Implements the one pattern the workspace uses —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — with genuine parallelism:
//! the input is split into one contiguous chunk per available core and mapped
//! under [`std::thread::scope`], then the per-chunk outputs are concatenated
//! in order, so the result is element-for-element identical to the sequential
//! `iter().map(f).collect()`.
//!
//! There is no work stealing: the experiment sweeps this crate serves map a
//! closure of roughly uniform cost over tens to hundreds of configurations,
//! where static chunking is within noise of a real scheduler.

use std::num::NonZeroUsize;

/// A pending parallel iteration over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps `f` over the items in parallel (at collection time).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A parallel map ready to be collected.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Runs the map across all cores and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    fn run(self) -> Vec<R> {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .min(n.max(1));
        if threads <= 1 || n <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk_size = n.div_ceil(threads);
        let f = &self.f;
        let mut per_chunk: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            per_chunk = handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect();
        });
        let mut out = Vec::with_capacity(n);
        for chunk in per_chunk {
            out.extend(chunk);
        }
        out
    }
}

/// Conversion of `&self` into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: 'a;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Re-exports mirroring rayon's prelude.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_matches_sequential_order() {
        let input: Vec<u64> = (0..1000).collect();
        let parallel: Vec<u64> = input.par_iter().map(|&x| x * x).collect();
        let sequential: Vec<u64> = input.iter().map(|&x| x * x).collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = vec![41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn actually_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..64).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(distinct > 1, "expected work on more than one thread");
        }
    }
}
