//! Offline stand-in for `rand` 0.8 (see `crates/compat/` for the rationale).
//!
//! Provides the subset of the rand 0.8 API the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` and
//! `seq::SliceRandom::{shuffle, choose}` — backed by the xoshiro256++
//! generator seeded through SplitMix64.
//!
//! The streams are deterministic for a given seed but do **not** match real
//! rand's output; all workspace experiments derive their randomness through
//! this crate, so results are internally reproducible.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the stand-in for rand's `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::draw(rng) * (end - start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Range: SampleRange<T>>(&mut self, range: Range) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring rand's prelude.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
