//! Cluster sim-equivalence: routing a job trace through the **online**
//! pooled service (`replay_cluster`, deterministic single-threaded mode)
//! must take byte-identical routing decisions to the **offline** router
//! (`route_offline`, which applies `RoutingPolicy::pick` directly to
//! isolated per-member services with none of the pool/sample-then-commit
//! plumbing), and every member machine's online grant log must be
//! byte-identical — same jobs, same virtual start times, same processors
//! — to `commalloc_service::replay` run standalone on that member's
//! routed sub-trace.
//!
//! This extends the PR 2 discipline (online admission == offline engine)
//! up one layer: the cluster router is allowed to be concurrent and
//! optimistic, but in deterministic mode it must neither route nor
//! schedule differently from the pure policy functions. Covered for
//! every routing policy crossed with the FCFS and EASY scheduling
//! policies, on a heterogeneous 4-machine pool.

use commalloc_service::{
    replay, replay_cluster, route_offline, AllocationService, ClusterMember, ReplayJob,
    RoutingPolicy,
};
use commalloc_workload::CommPattern;
use rand::prelude::*;

/// The heterogeneous 4-machine pool: 256 + 128 + 64 + 32 processors.
fn members(scheduler: &str) -> Vec<ClusterMember> {
    [
        ("m0", "16x16"),
        ("m1", "16x8"),
        ("m2", "8x8"),
        ("m3", "8x4"),
    ]
    .into_iter()
    .map(|(name, mesh)| ClusterMember::new(name, mesh, Some(scheduler)))
    .collect()
}

/// A congested, integerised job stream: integral arrivals and durations
/// keep every event time exact in `f64`, so tie-breaking is
/// deterministic rather than rounding-dependent. Sizes are mixed so the
/// eligibility filter matters (jobs above 32 processors exclude the
/// small members).
fn workload(jobs: usize, seed: u64) -> Vec<ReplayJob> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrival = 0.0f64;
    (0..jobs)
        .map(|id| {
            arrival += rng.gen_range(1u64..=20) as f64;
            let size = if rng.gen_bool(0.7) {
                rng.gen_range(1usize..=24)
            } else {
                rng.gen_range(33usize..=200)
            };
            ReplayJob {
                id: id as u64,
                size,
                arrival,
                duration: rng.gen_range(30u64..=300) as f64,
                pattern: None,
            }
        })
        .collect()
}

/// The same stream with a communication pattern declared on most jobs
/// (cycling through every declared pattern), so `CommAware` actually
/// scores placements instead of falling back to shortest-queue.
fn patterned_workload(jobs: usize, seed: u64) -> Vec<ReplayJob> {
    let patterns = CommPattern::all();
    workload(jobs, seed)
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            if i % 5 == 4 {
                job // every fifth job stays unpatterned
            } else {
                job.with_pattern(patterns[i % patterns.len()])
            }
        })
        .collect()
}

fn pooled_service(members: &[ClusterMember], policy: RoutingPolicy) -> AllocationService {
    let service = AllocationService::new();
    for m in members {
        service
            .register_in_pool(
                &m.name,
                &m.mesh,
                m.allocator.as_deref(),
                None,
                m.scheduler.as_deref(),
                Some("grid"),
            )
            .unwrap();
    }
    service.set_router("grid", policy.name()).unwrap();
    service
}

#[test]
fn online_cluster_routes_and_grants_match_offline_routing_plus_replay() {
    let jobs = workload(160, 42);
    for scheduler in ["fcfs", "easy"] {
        let members = members(scheduler);
        for policy in RoutingPolicy::all() {
            // Offline truth: pure policy picks over isolated members.
            let offline_routes = route_offline(&members, policy, &jobs);

            // Online: the pooled service, routed through "@grid".
            let service = pooled_service(&members, policy);
            let log = replay_cluster(&service, "grid", &jobs, None);

            assert_eq!(
                log.routes, offline_routes,
                "{scheduler}/{policy}: routing decisions diverged"
            );
            assert!(
                log.rejected.is_empty(),
                "{scheduler}/{policy}: curve allocators never refuse"
            );
            // The trace must actually spread across the pool, or the
            // equivalence is vacuous.
            for m in &members {
                let routed_here = offline_routes
                    .iter()
                    .filter(|(_, r)| r.as_deref() == Some(m.name.as_str()))
                    .count();
                assert!(
                    routed_here > 0,
                    "{scheduler}/{policy}: no job ever routed to {}",
                    m.name
                );
            }

            // Per member: an isolated single-machine replay of exactly
            // the jobs routed to it must grant byte-identically.
            for m in &members {
                let sub_trace: Vec<ReplayJob> = jobs
                    .iter()
                    .filter(|j| {
                        offline_routes
                            .iter()
                            .any(|(id, r)| *id == j.id && r.as_deref() == Some(m.name.as_str()))
                    })
                    .copied()
                    .collect();
                let standalone = AllocationService::new();
                standalone
                    .register(
                        &m.name,
                        &m.mesh,
                        m.allocator.as_deref(),
                        None,
                        m.scheduler.as_deref(),
                    )
                    .unwrap();
                let expected = replay(&standalone, &m.name, &sub_trace, None);
                let online_grants = &log.grants[&m.name];
                assert_eq!(
                    online_grants.len(),
                    expected.grants.len(),
                    "{scheduler}/{policy}/{}: grant counts differ",
                    m.name
                );
                for (i, (online, offline)) in
                    online_grants.iter().zip(expected.grants.iter()).enumerate()
                {
                    assert_eq!(
                        online.job_id, offline.job_id,
                        "{scheduler}/{policy}/{}: grant #{i} started a different job",
                        m.name
                    );
                    assert_eq!(
                        online.time, offline.time,
                        "{scheduler}/{policy}/{}: job {} started at a different time",
                        m.name, offline.job_id
                    );
                    assert_eq!(
                        online.nodes, offline.nodes,
                        "{scheduler}/{policy}/{}: job {} got different processors",
                        m.name, offline.job_id
                    );
                }
                // Both sides drained completely.
                let snap = service.query(&m.name).unwrap();
                assert_eq!(snap.busy, 0, "{scheduler}/{policy}/{}: not drained", m.name);
                assert_eq!(snap.queue_len, 0);
                service.check_invariants(&m.name).unwrap();
            }
        }
    }
}

#[test]
fn patterned_workload_equivalence_holds_for_every_policy() {
    // Same discipline as above, but every job declares a communication
    // pattern, so `CommAware` exercises its contention scoring (and the
    // other policies must be indifferent to the new field). Grant logs
    // must still be byte-identical to isolated per-member replays of the
    // routed sub-traces, which pins the scored allocation path itself:
    // the standalone replay re-runs the same deterministic candidate
    // scoring and must pick the same processors.
    let jobs = patterned_workload(120, 1917);
    let members = members("fcfs");
    for policy in RoutingPolicy::all() {
        let offline_routes = route_offline(&members, policy, &jobs);
        let service = pooled_service(&members, policy);
        let log = replay_cluster(&service, "grid", &jobs, None);
        assert_eq!(
            log.routes, offline_routes,
            "{policy}: routing decisions diverged on the patterned trace"
        );
        for m in &members {
            let sub_trace: Vec<ReplayJob> = jobs
                .iter()
                .filter(|j| {
                    offline_routes
                        .iter()
                        .any(|(id, r)| *id == j.id && r.as_deref() == Some(m.name.as_str()))
                })
                .copied()
                .collect();
            let standalone = AllocationService::new();
            standalone
                .register(
                    &m.name,
                    &m.mesh,
                    m.allocator.as_deref(),
                    None,
                    m.scheduler.as_deref(),
                )
                .unwrap();
            let expected = replay(&standalone, &m.name, &sub_trace, None);
            let online_grants = &log.grants[&m.name];
            assert_eq!(
                online_grants.len(),
                expected.grants.len(),
                "{policy}/{}: grant counts differ",
                m.name
            );
            for (online, offline) in online_grants.iter().zip(expected.grants.iter()) {
                assert_eq!(online.job_id, offline.job_id, "{policy}/{}", m.name);
                assert_eq!(online.time, offline.time, "{policy}/{}", m.name);
                assert_eq!(
                    online.nodes, offline.nodes,
                    "{policy}/{}: job {} got different processors",
                    m.name, offline.job_id
                );
            }
            service.check_invariants(&m.name).unwrap();
        }
    }
    // CommAware must actually diverge from ShortestQueue here, or the
    // patterned coverage is vacuous (everything fell back).
    assert_ne!(
        route_offline(&members, RoutingPolicy::CommAware, &jobs),
        route_offline(&members, RoutingPolicy::ShortestQueue, &jobs),
        "comm-aware never used its contention scores on a patterned trace"
    );
}

#[test]
fn routing_policies_disagree_on_a_loaded_heterogeneous_pool() {
    // Sanity guard for the harness: if every routing policy produced the
    // same placement, the equivalence above would prove nothing about
    // the policy plumbing.
    let jobs = workload(160, 42);
    let members = members("fcfs");
    let routes: Vec<Vec<(u64, Option<String>)>> = RoutingPolicy::all()
        .into_iter()
        .map(|policy| route_offline(&members, policy, &jobs))
        .collect();
    let mut distinct = 0;
    for i in 0..routes.len() {
        for j in i + 1..routes.len() {
            if routes[i] != routes[j] {
                distinct += 1;
            }
        }
    }
    assert!(
        distinct >= 5,
        "expected the four routing policies to mostly disagree, {distinct}/6 pairs did"
    );
}

#[test]
fn mid_trace_cut_preserves_per_machine_occupancy() {
    // Freeze the cluster mid-schedule: per-member busy/queue state must
    // equal the isolated replay frozen at the same instant.
    let jobs = workload(120, 7);
    let members = members("easy");
    let policy = RoutingPolicy::LeastLoaded;
    let offline_routes = route_offline(&members, policy, &jobs);
    let cut = jobs[jobs.len() / 2].arrival + 0.5;

    let service = pooled_service(&members, policy);
    replay_cluster(&service, "grid", &jobs, Some(cut));

    for m in &members {
        let sub_trace: Vec<ReplayJob> = jobs
            .iter()
            .filter(|j| {
                offline_routes
                    .iter()
                    .any(|(id, r)| *id == j.id && r.as_deref() == Some(m.name.as_str()))
            })
            .copied()
            .collect();
        let standalone = AllocationService::new();
        standalone
            .register(&m.name, &m.mesh, None, None, m.scheduler.as_deref())
            .unwrap();
        replay(&standalone, &m.name, &sub_trace, Some(cut));
        let online = service.query(&m.name).unwrap();
        let offline = standalone.query(&m.name).unwrap();
        assert_eq!(
            online.busy, offline.busy,
            "{}: busy count differs at the cut",
            m.name
        );
        assert_eq!(
            online.queue_len, offline.queue_len,
            "{}: queue length differs at the cut",
            m.name
        );
        assert_eq!(online.live_jobs, offline.live_jobs);
        service.check_invariants(&m.name).unwrap();
    }
}
