//! Recovery equivalence: journal a deterministic trace, "crash", recover
//! — and prove the rebuilt registry and pool state **byte-identical** to
//! an uninterrupted run cut at the same point, for every scheduling
//! policy and every routing policy.
//!
//! This is the discipline of `sim_equivalence` (online == offline grant
//! logs) and `cluster_equivalence` (routed == offline-routed) applied to
//! durability: a daemon is allowed to crash, but never to *recover*
//! different state than it lost. Two crash shapes are covered:
//!
//! * **snapshot + tail** — the daemon installed a compacted snapshot
//!   mid-run, then journaled more records before dying (the common case
//!   for a long-lived daemon); recovery folds the tail over the image.
//! * **pure WAL** — the daemon died before any snapshot existed;
//!   recovery folds the whole record stream from an empty service.
//!
//! The comparison object is [`commalloc_service::journal::MachineImage`]
//! — the machine's *entire* durable state: occupancy per job (exact
//! node sets), running order (EASY's tie-breaking state), queue
//! contents and order, scheduler, and clock. Only the journal sequence
//! watermark is normalised (the reference run never journals, so its
//! watermarks are zero), and the clock in the pure-WAL shape (virtual
//! clocks travel in snapshots, not in per-op records — documented in
//! the journal module).

use commalloc::prelude::*;
use commalloc::scheduler::SchedulerKind;
use commalloc_mesh::NodeId;
use commalloc_service::journal::MachineImage;
use commalloc_service::{
    open_journaled, replay, replay_cluster, AllocationService, JobStatus, JournalConfig, ReplayJob,
    RoutingPolicy,
};
use commalloc_workload::Job;
use std::path::PathBuf;

/// A congested, integerised trace (the sim-equivalence recipe: exact
/// event times in `f64`, queues that actually form).
fn integer_trace(jobs: usize, seed: u64, compress: f64) -> Vec<ReplayJob> {
    let base = ParagonTraceModel::scaled(jobs)
        .generate(seed)
        .filter_fitting(256);
    base.jobs()
        .iter()
        .map(|j| {
            let job = Job::new(
                j.id,
                (j.arrival * compress).round(),
                j.size,
                j.runtime.round().max(1.0),
            );
            ReplayJob {
                id: job.id,
                size: job.size,
                arrival: job.arrival,
                duration: job.message_quota() as f64,
                pattern: None,
            }
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("commalloc-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Strips the fields the reference (never-journaled) run cannot share:
/// the journal watermark always, the clock when `strip_clock` (virtual
/// clocks replay from snapshots only).
fn normalized(mut image: MachineImage, strip_clock: bool) -> MachineImage {
    image.seq = 0;
    if strip_clock {
        image.clock = None;
    }
    image
}

/// Which schedulers to test (honours the CI matrix variable).
fn schedulers_under_test() -> Vec<SchedulerKind> {
    match std::env::var("COMMALLOC_SCHEDULER") {
        Ok(spec) => vec![SchedulerKind::parse(&spec)
            .unwrap_or_else(|| panic!("COMMALLOC_SCHEDULER={spec:?} is not a scheduler"))],
        Err(_) => SchedulerKind::all().to_vec(),
    }
}

/// Asserts every job of the trace stands identically on both services.
fn assert_jobs_agree(
    reference: &AllocationService,
    recovered: &AllocationService,
    machine: &str,
    jobs: &[ReplayJob],
    context: &str,
) {
    for job in jobs {
        let want = reference.poll(machine, job.id).unwrap();
        let got = recovered.poll(machine, job.id).unwrap();
        assert_eq!(got, want, "{context}: job {} diverged", job.id);
        if let JobStatus::Running(nodes) = got {
            assert!(!nodes.is_empty());
        }
    }
}

/// Single machine, every scheduler, both crash shapes: the recovered
/// image equals the uninterrupted one at the cut.
#[test]
fn recovered_machine_state_matches_uninterrupted_run() {
    let jobs = integer_trace(90, 42, 0.12);
    let last_arrival = jobs.last().unwrap().arrival;
    let cut = last_arrival * 0.6 + 0.5; // mid-schedule, off the event grid
    for scheduler in schedulers_under_test() {
        for install_snapshot in [true, false] {
            let tag = format!(
                "m-{}-{}",
                scheduler.name().replace(' ', "_"),
                install_snapshot
            );
            let dir = temp_dir(&tag);

            // The journaled run, cut "mid-flight".
            let (journaled, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
            journaled
                .register("m", "16x16", None, None, Some(scheduler.name()))
                .unwrap();
            replay(&journaled, "m", &jobs, Some(cut));
            if install_snapshot {
                journaled.install_journal_snapshot().unwrap();
            }
            drop(journaled); // the "crash": nothing is flushed beyond the WAL

            // The uninterrupted reference at the same cut.
            let reference = AllocationService::new();
            reference
                .register("m", "16x16", None, None, Some(scheduler.name()))
                .unwrap();
            replay(&reference, "m", &jobs, Some(cut));

            let (recovered, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
            assert_eq!(report.epoch, 1, "{tag}");
            assert_eq!(report.snapshot_found, install_snapshot, "{tag}");
            recovered.check_invariants("m").unwrap();

            // Byte-identical machine images: occupancy per job, running
            // order, queue contents and order, scheduler — and the
            // virtual clock when it travelled via the snapshot.
            let strip_clock = !install_snapshot;
            assert_eq!(
                normalized(recovered.machine_image("m").unwrap(), strip_clock),
                normalized(reference.machine_image("m").unwrap(), strip_clock),
                "{tag}: recovered image differs from the uninterrupted run"
            );
            assert_jobs_agree(&reference, &recovered, "m", &jobs, &tag);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Cluster pools: every routing policy × every scheduler. The recovered
/// pool table (members + policy) and every member's image must equal the
/// uninterrupted run's.
#[test]
fn recovered_cluster_state_matches_uninterrupted_run() {
    let jobs = integer_trace(70, 7, 0.12);
    let last_arrival = jobs.last().unwrap().arrival;
    let cut = last_arrival * 0.6 + 0.5;
    let members = [("a", "16x16"), ("b", "16x8"), ("c", "8x8")];
    for scheduler in schedulers_under_test() {
        for policy in RoutingPolicy::all() {
            let tag = format!("c-{}-{}", scheduler.name().replace(' ', "_"), policy.name());
            let dir = temp_dir(&tag);

            let build = |service: &AllocationService| {
                for (name, mesh) in members {
                    service
                        .register_in_pool(
                            name,
                            mesh,
                            None,
                            None,
                            Some(scheduler.name()),
                            Some("grid"),
                        )
                        .unwrap();
                }
                service.set_router("grid", policy.name()).unwrap();
            };

            let (journaled, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
            build(&journaled);
            let log = replay_cluster(&journaled, "grid", &jobs, Some(cut));
            journaled.install_journal_snapshot().unwrap();
            drop(journaled);

            let reference = AllocationService::new();
            build(&reference);
            let reference_log = replay_cluster(&reference, "grid", &jobs, Some(cut));
            assert_eq!(log.routes, reference_log.routes, "{tag}: routing diverged");

            let (recovered, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
            assert_eq!(report.epoch, 1, "{tag}");
            assert_eq!(
                recovered.router().members("grid").unwrap(),
                vec!["a".to_string(), "b".to_string(), "c".to_string()],
                "{tag}"
            );
            assert_eq!(recovered.router().policy("grid").unwrap(), policy, "{tag}");
            for (name, _) in members {
                recovered.check_invariants(name).unwrap();
                assert_eq!(
                    normalized(recovered.machine_image(name).unwrap(), false),
                    normalized(reference.machine_image(name).unwrap(), false),
                    "{tag}: member {name} diverged"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Snapshot → crash → recover → traffic → crash → recover: operations
/// acknowledged *after* the first restart must survive the second one.
/// A snapshot install prunes the WAL, so the first restart boots from a
/// snapshot with an empty tail; if the new incarnation's sequence
/// numbers restarted below the snapshot's per-machine watermarks, the
/// second recovery's watermark gate would silently drop everything the
/// restarted daemon journaled.
#[test]
fn operations_after_a_restart_survive_the_next_restart() {
    let dir = temp_dir("double-restart");
    {
        let (service, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
        service.register("m", "8x8", None, None, None).unwrap();
        service.allocate("m", 1, 4, false, None).unwrap();
        // Compact: the snapshot carries the machine's journal watermark
        // and prunes the WAL, leaving an empty tail for the next boot.
        service.install_journal_snapshot().unwrap();
    }
    // Restart #1: traffic in the new incarnation must land above the
    // recovered watermark.
    {
        let (service, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
        assert_eq!(report.epoch, 1);
        service.allocate("m", 2, 8, false, None).unwrap();
        service.release("m", 1).unwrap();
    }
    // Restart #2: the post-restart grant and release both recovered.
    let (recovered, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(recovered.poll("m", 1).unwrap(), JobStatus::Unknown);
    assert!(matches!(
        recovered.poll("m", 2).unwrap(),
        JobStatus::Running(_)
    ));
    assert_eq!(recovered.query("m").unwrap().busy, 8);
    recovered.check_invariants("m").unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Crash → recover → keep running: the recovered daemon still serves
/// (releases drain the recovered queue, grants stay sound) — recovery
/// produces a *live* machine, not a museum piece.
#[test]
fn recovered_service_keeps_scheduling_correctly() {
    let dir = temp_dir("liveness");
    {
        let (service, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
        service.register("m", "8x8", None, None, None).unwrap();
        service.allocate("m", 1, 60, false, None).unwrap();
        service.allocate("m", 2, 10, true, None).unwrap(); // queued
        service.allocate("m", 3, 2, true, None).unwrap(); // queued behind it
    }
    let (recovered, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert_eq!(recovered.poll("m", 2).unwrap(), JobStatus::Queued(1));
    assert_eq!(recovered.poll("m", 3).unwrap(), JobStatus::Queued(2));
    // Releasing the hog admits the recovered queue in FCFS order.
    let granted = recovered.release("m", 1).unwrap();
    let ids: Vec<u64> = granted.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, vec![2, 3]);
    let nodes: Vec<NodeId> = granted.into_iter().flat_map(|(_, n)| n).collect();
    assert_eq!(nodes.len(), 12);
    recovered.check_invariants("m").unwrap();
    // And those post-recovery operations are themselves durable.
    drop(recovered);
    let (third, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert_eq!(report.epoch, 2);
    assert_eq!(third.query("m").unwrap().busy, 12);
    assert_eq!(third.query("m").unwrap().queue_len, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
