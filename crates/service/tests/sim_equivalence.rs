//! Online/offline scheduling equivalence: replaying the same job trace
//! through the offline engine (`commalloc::simulate_logged`, zero
//! contention) and through the live `AllocationService` (via the
//! deterministic `replay` harness) must produce **byte-identical grant
//! logs** — same jobs, same start times, same processors — under every
//! scheduling policy, and identical occupancy maps at any cut point.
//!
//! This is the same discipline PR 1 applied to the free-interval index
//! (indexed == rescan), now applied to admission: the online daemon is
//! allowed to be fast and concurrent, but never to *schedule* differently
//! from the paper-calibrated simulator.
//!
//! Traces are integerised (integral arrivals and runtimes) so that every
//! event time is exact in `f64` and tie-breaking is deterministic rather
//! than rounding-dependent; see `replay`'s module docs.

use commalloc::prelude::*;
use commalloc::scheduler::SchedulerKind;
use commalloc_service::{replay, AllocationService, JobStatus, ReplayJob};
use commalloc_workload::Job;

/// A congested, integerised trace: arrivals compressed so queues form,
/// runtimes rounded so engine message quotas equal the replay durations.
fn integer_trace(jobs: usize, seed: u64, compress: f64) -> Trace {
    let base = ParagonTraceModel::scaled(jobs)
        .generate(seed)
        .filter_fitting(256);
    Trace::new(
        base.jobs()
            .iter()
            .map(|j| {
                Job::new(
                    j.id,
                    (j.arrival * compress).round(),
                    j.size,
                    j.runtime.round().max(1.0),
                )
            })
            .collect(),
    )
}

fn replay_jobs(trace: &Trace) -> Vec<ReplayJob> {
    trace
        .jobs()
        .iter()
        .map(|j| ReplayJob {
            id: j.id,
            size: j.size,
            arrival: j.arrival,
            duration: j.message_quota() as f64,
            pattern: None,
        })
        .collect()
}

fn online_service(
    machine: &str,
    allocator: AllocatorKind,
    scheduler: SchedulerKind,
) -> AllocationService {
    let service = AllocationService::new();
    service
        .register(
            machine,
            "16x16",
            Some(allocator.name()),
            None,
            Some(scheduler.name()),
        )
        .unwrap();
    service
}

/// Which schedulers to test: all of them by default, or just the one the
/// `COMMALLOC_SCHEDULER` environment variable names (the CI matrix).
fn schedulers_under_test() -> Vec<SchedulerKind> {
    match std::env::var("COMMALLOC_SCHEDULER") {
        Ok(spec) => vec![SchedulerKind::parse(&spec)
            .unwrap_or_else(|| panic!("COMMALLOC_SCHEDULER={spec:?} is not a scheduler"))],
        Err(_) => SchedulerKind::all().to_vec(),
    }
}

#[test]
fn online_grant_order_equals_offline_grant_order() {
    let trace = integer_trace(120, 42, 0.12);
    for scheduler in schedulers_under_test() {
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        )
        .with_scheduler(scheduler)
        .with_fidelity(Fidelity::ZeroContention);
        let (result, offline) = simulate_logged(&trace, &config);
        assert_eq!(result.records.len(), trace.len(), "offline lost jobs");
        // The trace must actually be congested, or the equivalence only
        // covers the trivial grant-on-arrival path.
        assert!(
            result
                .records
                .iter()
                .filter(|r| r.start > r.arrival + 1e-9)
                .count()
                > trace.len() / 4,
            "{scheduler}: trace is not congested enough to exercise the queue"
        );

        let service = online_service("eq", AllocatorKind::HilbertBestFit, scheduler);
        let log = replay(&service, "eq", &replay_jobs(&trace), None);

        assert!(log.rejected.is_empty(), "{scheduler}: online rejected jobs");
        assert_eq!(
            log.grants.len(),
            offline.len(),
            "{scheduler}: grant counts differ"
        );
        for (i, (online_grant, offline_grant)) in log.grants.iter().zip(offline.iter()).enumerate()
        {
            assert_eq!(
                online_grant.job_id, offline_grant.job_id,
                "{scheduler}: grant #{i} started a different job"
            );
            assert_eq!(
                online_grant.time, offline_grant.time,
                "{scheduler}: job {} started at a different time",
                offline_grant.job_id
            );
            assert_eq!(
                online_grant.nodes, offline_grant.nodes,
                "{scheduler}: job {} got different processors",
                offline_grant.job_id
            );
        }

        // Full replay drains the machine completely.
        let snap = service.query("eq").unwrap();
        assert_eq!(snap.busy, 0, "{scheduler}: machine not drained");
        assert_eq!(snap.queue_len, 0);
        service.check_invariants("eq").unwrap();
    }
}

#[test]
fn online_occupancy_map_matches_offline_at_a_cut_point() {
    let trace = integer_trace(90, 7, 0.12);
    for scheduler in schedulers_under_test() {
        let config = SimConfig::new(
            Mesh2D::square_16x16(),
            CommPattern::AllToAll,
            AllocatorKind::HilbertBestFit,
        )
        .with_scheduler(scheduler)
        .with_fidelity(Fidelity::ZeroContention);
        let (result, offline) = simulate_logged(&trace, &config);
        // Cut mid-schedule, off the event grid so "at T" is unambiguous.
        let mut completions: Vec<f64> = result.records.iter().map(|r| r.completion).collect();
        completions.sort_by(f64::total_cmp);
        let cut = completions[completions.len() / 2] + 0.5;

        let service = online_service("cut", AllocatorKind::HilbertBestFit, scheduler);
        replay(&service, "cut", &replay_jobs(&trace), Some(cut));

        // Offline truth at the cut: jobs with start <= cut < completion
        // hold exactly their granted nodes.
        let mut expected_busy = 0usize;
        let mut expected_running = 0usize;
        for r in &result.records {
            if r.start <= cut && r.completion > cut {
                let grant = offline
                    .iter()
                    .find(|g| g.job_id == r.job_id)
                    .expect("running job was granted");
                match service.poll("cut", r.job_id).unwrap() {
                    JobStatus::Running(nodes) => assert_eq!(
                        nodes, grant.nodes,
                        "{scheduler}: job {} occupancy differs at the cut",
                        r.job_id
                    ),
                    other => panic!(
                        "{scheduler}: job {} should be running at the cut, is {other:?}",
                        r.job_id
                    ),
                }
                expected_busy += r.size;
                expected_running += 1;
            }
        }
        let expected_queued = result
            .records
            .iter()
            .filter(|r| r.arrival <= cut && r.start > cut)
            .count();
        let snap = service.query("cut").unwrap();
        assert_eq!(snap.busy, expected_busy, "{scheduler}: busy count differs");
        assert_eq!(snap.live_jobs, expected_running);
        assert_eq!(
            snap.queue_len, expected_queued,
            "{scheduler}: queue length differs at the cut"
        );
        service.check_invariants("cut").unwrap();
    }
}

#[test]
fn policies_disagree_on_congested_traces() {
    // Sanity guard for the harness itself: if the policies produced
    // identical grant orders on a congested trace, the equivalence above
    // would be vacuous. FCFS vs first-fit separates head-of-line
    // blocking from backfilling; EASY vs conservative separates
    // head-only reservations from whole-queue reservations.
    let trace = integer_trace(120, 42, 0.12);
    let base = SimConfig::new(
        Mesh2D::square_16x16(),
        CommPattern::AllToAll,
        AllocatorKind::HilbertBestFit,
    )
    .with_fidelity(Fidelity::ZeroContention);
    let (_, fcfs) = simulate_logged(&trace, &base.with_scheduler(SchedulerKind::Fcfs));
    let (_, bf) = simulate_logged(
        &trace,
        &base.with_scheduler(SchedulerKind::FirstFitBackfill),
    );
    let fcfs_order: Vec<u64> = fcfs.iter().map(|g| g.job_id).collect();
    let bf_order: Vec<u64> = bf.iter().map(|g| g.job_id).collect();
    assert_ne!(
        fcfs_order, bf_order,
        "backfilling should reorder grants on a congested trace"
    );
    let (_, easy) = simulate_logged(&trace, &base.with_scheduler(SchedulerKind::EasyBackfill));
    let (_, cons) = simulate_logged(&trace, &base.with_scheduler(SchedulerKind::Conservative));
    let easy_starts: Vec<(u64, f64)> = easy.iter().map(|g| (g.job_id, g.time)).collect();
    let cons_starts: Vec<(u64, f64)> = cons.iter().map(|g| (g.job_id, g.time)).collect();
    assert_ne!(
        easy_starts, cons_starts,
        "conservative's whole-queue reservations should schedule \
         differently from EASY's head-only one"
    );
}
