//! End-to-end observability contract over real TCP: a journaled daemon
//! with tracing on must emit a complete, well-ordered span set for
//! every request (parse → decision → grant/deny → journal append), the
//! poll/query surfaces must carry reservation outlooks and scheduler
//! explains across the wire, `set_trace off` must emit nothing, and
//! ring overflow must surface as a drop counter, not an error.

use commalloc_service::{
    open_journaled, ClientAllocOutcome, FsyncPolicy, JournalConfig, Request, Response, Server,
    ServiceClient,
};
use serde::Value;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "commalloc-trace-obs-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn events_for_request(events: &[Value], request: u64) -> Vec<&Value> {
    events
        .iter()
        .filter(|e| e.get("request").and_then(Value::as_u64) == Some(request))
        .collect()
}

fn stage_of(event: &Value) -> &str {
    event.get("stage").and_then(Value::as_str).unwrap_or("")
}

fn find_stage<'a>(events: &[&'a Value], stage: &str) -> Option<&'a Value> {
    events.iter().find(|e| stage_of(e) == stage).copied()
}

fn ts(event: &Value) -> u64 {
    event.get("ts_micros").and_then(Value::as_u64).unwrap()
}

fn end_ts(event: &Value) -> u64 {
    ts(event) + event.get("dur_micros").and_then(Value::as_u64).unwrap()
}

/// The tentpole contract: every request that flows through the daemon
/// leaves a complete span set, ordered parse → allocator probe →
/// grant → journal append, with queue grants attributed back to the
/// request that enqueued them.
#[test]
fn granted_requests_trace_complete_ordered_spans() {
    let dir = temp_dir("spans");
    let config = JournalConfig {
        fsync: FsyncPolicy::EveryRecord,
        ..JournalConfig::default()
    };
    let (service, _) = open_journaled(&dir, config).unwrap();
    service
        .register("m0", "8x8", None, None, Some("easy"))
        .unwrap();
    let handle = Server::bind("127.0.0.1:0", service, 2)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    assert!(client.set_trace(true).unwrap());

    // Request A: an immediate grant.
    let ClientAllocOutcome::Granted(nodes) = client
        .alloc_with_walltime("m0", 1, 10, false, Some(60.0))
        .unwrap()
    else {
        panic!("grant expected");
    };
    assert_eq!(nodes.len(), 10);
    // Request B: cannot fit (64-node machine, 10 busy), waits.
    let ClientAllocOutcome::Queued(1) = client
        .alloc_with_walltime("m0", 2, 60, true, Some(30.0))
        .unwrap()
    else {
        panic!("queue expected");
    };
    // Request C: the release whose drain grants job 2 from the queue.
    let granted = client.release("m0", 1).unwrap();
    assert_eq!(granted.len(), 1, "job 2 must be granted by the release");
    assert_eq!(granted[0].0, 2);

    let dump = client.trace_events(None, true).unwrap();
    assert!(dump.enabled);
    assert_eq!(dump.dropped, 0);

    // Identify the grant/deny anchor events.
    let grant_1 = dump
        .events
        .iter()
        .find(|e| stage_of(e) == "grant" && e.get("job").and_then(Value::as_u64) == Some(1))
        .expect("job 1 grant event");
    let deny_2 = dump
        .events
        .iter()
        .find(|e| stage_of(e) == "deny" && e.get("job").and_then(Value::as_u64) == Some(2))
        .expect("job 2 deny event");
    let grant_2 = dump
        .events
        .iter()
        .find(|e| stage_of(e) == "grant" && e.get("job").and_then(Value::as_u64) == Some(2))
        .expect("job 2 queue-grant event");

    // Request A: parse → allocator → grant → journal append, in order.
    let req_a = grant_1.get("request").and_then(Value::as_u64).unwrap();
    assert_ne!(req_a, 0, "traced events carry a request id");
    let a_events = events_for_request(&dump.events, req_a);
    let parse = find_stage(&a_events, "parse").expect("parse span");
    let allocator = find_stage(&a_events, "allocator").expect("allocator span");
    let journal = find_stage(&a_events, "journal_append").expect("journal-append span");
    assert!(end_ts(parse) <= ts(allocator), "parse precedes the probe");
    assert!(
        end_ts(allocator) <= ts(grant_1),
        "the grant instant sits at or after the probe's end"
    );
    assert!(
        ts(journal) >= ts(grant_1),
        "the grant is journaled after it is decided"
    );
    assert_eq!(
        grant_1.get("from_queue").and_then(Value::as_bool),
        Some(false)
    );
    assert_eq!(grant_1.get("machine").and_then(Value::as_str), Some("m0"));

    // Request B: parse → deny, with the scheduler's explanation.
    let req_b = deny_2.get("request").and_then(Value::as_u64).unwrap();
    assert!(req_b > req_a, "request ids are minted in arrival order");
    let b_events = events_for_request(&dump.events, req_b);
    assert!(find_stage(&b_events, "parse").is_some());
    assert_eq!(
        deny_2.get("reason").and_then(Value::as_str),
        Some("insufficient_free")
    );

    // The queue grant is attributed to request B (the request that
    // enqueued job 2), not to the release that freed the space, and
    // its queue span covers the whole wait.
    assert_eq!(
        grant_2.get("request").and_then(Value::as_u64),
        Some(req_b),
        "queue grants trace back to the enqueueing request"
    );
    assert_eq!(
        grant_2.get("from_queue").and_then(Value::as_bool),
        Some(true)
    );
    let queue_span = find_stage(&b_events, "queue").expect("queue span");
    assert!(ts(queue_span) <= ts(deny_2) || ts(queue_span) <= ts(grant_2));
    assert!(end_ts(queue_span) <= ts(grant_2) + 1);

    // The release request journals the release and the queue grant.
    let release_journals = dump
        .events
        .iter()
        .filter(|e| stage_of(e) == "journal_append")
        .filter(|e| e.get("request").and_then(Value::as_u64) != Some(req_a))
        .count();
    assert!(
        release_journals > 0,
        "the release flushes journal records under its own request id"
    );

    // A clearing drain leaves nothing behind (the drain itself and the
    // enclosing protocol exchanges may add fresh parse spans, but no
    // stale job events).
    let again = client.trace_events(None, true).unwrap();
    assert!(
        again.events.iter().all(|e| e.get("job").is_none()),
        "drained job events must not reappear"
    );

    drop(client);
    handle.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: reservation introspection over the wire. Poll answers
/// with the reserved start and the binding constraint; query carries
/// the whole queue outlook.
#[test]
fn poll_and_query_expose_reservations_and_explains() {
    let service = commalloc_service::AllocationService::new();
    service
        .register("m0", "8x8", None, None, Some("conservative"))
        .unwrap();
    let handle = Server::bind("127.0.0.1:0", service, 2)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    // Job 1 takes half the machine for 100 s; job 2 wants all of it
    // (head reservation at job 1's completion); job 3 would fit now but
    // its 200 s walltime would delay job 2's reservation.
    assert!(matches!(
        client
            .alloc_with_walltime("m0", 1, 32, false, Some(100.0))
            .unwrap(),
        ClientAllocOutcome::Granted(_)
    ));
    assert!(matches!(
        client
            .alloc_with_walltime("m0", 2, 64, true, Some(50.0))
            .unwrap(),
        ClientAllocOutcome::Queued(1)
    ));
    assert!(matches!(
        client
            .alloc_with_walltime("m0", 3, 16, true, Some(200.0))
            .unwrap(),
        ClientAllocOutcome::Queued(2)
    ));

    // Poll job 2: the head holds a finite reservation and is blocked by
    // free capacity.
    let Response::Waiting {
        job: 2,
        position: 1,
        reserved_start: Some(start),
        explain: Some(explain),
        ..
    } = client
        .roundtrip(&Request::Poll {
            machine: Some("m0".into()),
            job: commalloc_service::JobRef::Bare(2),
        })
        .unwrap()
    else {
        panic!("job 2 must be waiting with a reservation");
    };
    assert!(start.is_finite() && start > 0.0);
    assert_eq!(
        explain.get("reason").and_then(Value::as_str),
        Some("insufficient_free")
    );
    assert_eq!(explain.get("needed").and_then(Value::as_u64), Some(64));

    // Poll job 3: blocked by job 2's reservation, not by capacity.
    let Response::Waiting {
        job: 3,
        position: 2,
        explain: Some(explain),
        ..
    } = client
        .roundtrip(&Request::Poll {
            machine: Some("m0".into()),
            job: commalloc_service::JobRef::Bare(3),
        })
        .unwrap()
    else {
        panic!("job 3 must be waiting with an explanation");
    };
    assert_eq!(
        explain.get("reason").and_then(Value::as_str),
        Some("would_delay_reservation")
    );
    assert_eq!(explain.get("blocking_job").and_then(Value::as_u64), Some(2));

    // Query: the machine snapshot round-trips the full queue outlook.
    let snapshot = client.query("m0").unwrap();
    let queue = snapshot
        .get("queue")
        .and_then(|q| match q {
            Value::Array(items) => Some(items.as_slice()),
            _ => None,
        })
        .expect("snapshot carries the queue outlook");
    assert_eq!(queue.len(), 2);
    assert_eq!(queue[0].get("job").and_then(Value::as_u64), Some(2));
    assert_eq!(queue[0].get("position").and_then(Value::as_u64), Some(1));
    assert!(queue[0]
        .get("reserved_start")
        .and_then(Value::as_f64)
        .is_some_and(f64::is_finite));
    assert_eq!(queue[1].get("job").and_then(Value::as_u64), Some(3));
    assert_eq!(
        queue[1]
            .get("explain")
            .and_then(|e| e.get("reason"))
            .and_then(Value::as_str),
        Some("would_delay_reservation")
    );

    drop(client);
    handle.shutdown().unwrap();
}

/// Satellite: `set_trace off` emits nothing — not even for requests
/// racing the toggle — and the wire confirms the state both ways.
#[test]
fn set_trace_off_emits_nothing() {
    let service = commalloc_service::AllocationService::new();
    service.register("m0", "8x8", None, None, None).unwrap();
    let handle = Server::bind("127.0.0.1:0", service, 2)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();

    // Tracing starts disabled: traffic leaves no events behind.
    assert!(matches!(
        client.alloc("m0", 1, 10, false).unwrap(),
        ClientAllocOutcome::Granted(_)
    ));
    let dump = client.trace_events(None, false).unwrap();
    assert!(!dump.enabled);
    assert!(dump.events.is_empty(), "disabled tracing must emit nothing");
    assert_eq!(dump.dropped, 0);

    // On, traffic, off again: the drain sees only the traced window.
    assert!(client.set_trace(true).unwrap());
    assert!(matches!(
        client.alloc("m0", 2, 10, false).unwrap(),
        ClientAllocOutcome::Granted(_)
    ));
    assert!(!client.set_trace(false).unwrap());
    assert!(matches!(
        client.alloc("m0", 3, 10, false).unwrap(),
        ClientAllocOutcome::Granted(_)
    ));
    let dump = client.trace_events(None, true).unwrap();
    assert!(dump
        .events
        .iter()
        .any(|e| stage_of(e) == "grant" && e.get("job").and_then(Value::as_u64) == Some(2)));
    assert!(
        dump.events
            .iter()
            .all(|e| e.get("job").and_then(Value::as_u64) != Some(3)),
        "requests after the off-toggle must not be traced"
    );

    drop(client);
    handle.shutdown().unwrap();
}

/// Satellite: sustained traffic past the ring capacity surfaces as a
/// drop counter over the wire — bounded memory, never an error.
#[test]
fn ring_overflow_surfaces_a_drop_counter_over_the_wire() {
    let service = commalloc_service::AllocationService::new();
    service.register("m0", "8x8", None, None, None).unwrap();
    let handle = Server::bind("127.0.0.1:0", service, 1)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    assert!(client.set_trace(true).unwrap());

    // One worker = one recording thread = one shard. Every wire line
    // leaves a parse span, so 4600 pings overflow the 4096-slot ring.
    for _ in 0..4600 {
        assert!(matches!(
            client.roundtrip(&Request::Ping).unwrap(),
            Response::Pong
        ));
    }
    let dump = client.trace_events(None, true).unwrap();
    assert!(
        dump.dropped > 0,
        "4600 spans through one shard must overflow the 4096-slot ring"
    );
    assert!(
        !dump.events.is_empty(),
        "overflow keeps the most recent events"
    );

    drop(client);
    handle.shutdown().unwrap();
}

/// The calibration plane end-to-end: a comm-aware pool under patterned
/// traffic files a placement record per grant and joins it at release —
/// the report's joined count equals the released jobs, cells are keyed
/// (pattern, policy), and every routed alloc leaves a decision record
/// drained through the trace op.
#[test]
fn calibration_joins_every_released_job_and_decisions_drain() {
    let service = commalloc_service::AllocationService::new();
    for name in ["m0", "m1"] {
        service
            .register_in_pool(name, "8x8", None, None, Some("easy"), Some("grid"))
            .unwrap();
    }
    service.set_router("grid", "comm-aware").unwrap();
    let handle = Server::bind("127.0.0.1:0", service, 2)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    assert!(client.set_trace_with_calibration(true, Some(true)).unwrap());

    // Patterned, walltimed allocations routed through the pool.
    let jobs = 6u64;
    let mut placed: Vec<(u64, String)> = Vec::new();
    for job in 1..=jobs {
        let response = client
            .roundtrip(&Request::Alloc {
                machine: "@grid".into(),
                job,
                size: 8,
                wait: false,
                walltime: Some(120.0),
                pattern: Some(commalloc_workload::CommPattern::AllToAll),
                tenant: None,
            })
            .unwrap();
        let Response::Granted { job, machine, .. } = response else {
            panic!("routed patterned alloc must grant, got {response:?}");
        };
        placed.push((job, machine.expect("routed grants name their machine")));
    }
    for (job, machine) in &placed {
        client.release(machine, *job).unwrap();
    }

    // The report: every released job joined, in one comm-aware cell.
    let report = client.calibration().unwrap();
    assert_eq!(report.get("enabled").and_then(Value::as_bool), Some(true));
    assert_eq!(report.get("joined").and_then(Value::as_u64), Some(jobs));
    let cells = report
        .get("cells")
        .and_then(Value::as_array)
        .expect("cells array");
    assert!(!cells.is_empty());
    let mut cell_joined = 0;
    for cell in cells {
        assert_eq!(
            cell.get("pattern").and_then(Value::as_str),
            Some("all-to-all")
        );
        assert_eq!(
            cell.get("policy").and_then(Value::as_str),
            Some("comm-aware")
        );
        let c = cell.get("calibration").expect("cell payload");
        cell_joined += c.get("joined").and_then(Value::as_u64).unwrap();
        for key in [
            "rank_correlation",
            "predicted",
            "realized_held",
            "held_ratio",
            "queue_wait",
            "realized_dispersal",
        ] {
            assert!(c.get(key).is_some(), "cell must carry {key}");
        }
        assert_eq!(
            c.get("predicted")
                .and_then(|h| h.get("count"))
                .and_then(Value::as_u64),
            c.get("realized_held")
                .and_then(|h| h.get("count"))
                .and_then(Value::as_u64),
            "predicted and realized histograms join pairwise"
        );
    }
    assert_eq!(cell_joined, jobs, "cells partition the joined records");

    // Decision telemetry: one record per routed alloc, drained through
    // the trace op, carrying the winner and the per-member samples.
    let dump = client.trace_events(None, true).unwrap();
    assert_eq!(dump.decisions.len(), jobs as usize);
    for decision in &dump.decisions {
        assert_eq!(decision.get("pool").and_then(Value::as_str), Some("grid"));
        assert_eq!(
            decision.get("policy").and_then(Value::as_str),
            Some("comm-aware")
        );
        let winner = decision
            .get("winner")
            .and_then(Value::as_str)
            .expect("decision names its winner");
        let members = decision
            .get("members")
            .and_then(Value::as_array)
            .expect("decision carries member samples");
        assert!(members
            .iter()
            .any(|m| m.get("machine").and_then(Value::as_str) == Some(winner)));
        for member in members {
            assert!(member.get("queue_len").and_then(Value::as_u64).is_some());
            assert!(
                member.get("score").and_then(Value::as_f64).is_some(),
                "patterned comm-aware sampling scores every member"
            );
        }
        assert!(
            decision.get("comm_fallback").is_none(),
            "scored routing is not a fallback"
        );
    }
    // Drained means drained: a second clearing read is empty.
    assert!(client
        .trace_events(None, true)
        .unwrap()
        .decisions
        .is_empty());

    drop(client);
    handle.shutdown().unwrap();
}

/// Windowed per-pool metrics: the trailing-window export carries the
/// pool's routing-policy label, agrees with the cumulative histogram
/// while all traffic is recent, and the Prometheus exposition labels
/// the per-pool series and the new totals.
#[test]
fn windowed_pool_metrics_and_prometheus_labels() {
    let service = commalloc_service::AllocationService::new();
    for name in ["m0", "m1"] {
        service
            .register_in_pool(name, "8x8", None, None, None, Some("grid"))
            .unwrap();
    }
    service.set_router("grid", "comm-aware").unwrap();
    let handle = Server::bind("127.0.0.1:0", service, 2)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    assert!(client.set_trace_with_calibration(true, Some(true)).unwrap());

    // Unpatterned traffic through a comm-aware pool: the router falls
    // back to shortest-queue and the fallback counter says so.
    for job in 1..=4u64 {
        let Response::Granted { .. } = client
            .roundtrip(&Request::Alloc {
                machine: "@grid".into(),
                job,
                size: 4,
                wait: false,
                walltime: None,
                pattern: None,
                tenant: None,
            })
            .unwrap()
        else {
            panic!("routed alloc must grant");
        };
    }

    let windowed = client.metrics_windowed("json", Some("60s")).unwrap();
    assert_eq!(windowed.get("window").and_then(Value::as_str), Some("60s"));
    let pool = windowed
        .get("pools")
        .and_then(|p| p.get("grid"))
        .expect("windowed metrics carry the pool");
    assert_eq!(
        pool.get("policy").and_then(Value::as_str),
        Some("comm-aware")
    );
    let windowed_count = pool
        .get("route_latency_micros")
        .and_then(|h| h.get("count"))
        .and_then(Value::as_u64)
        .unwrap();
    assert_eq!(windowed_count, 4, "all routes landed inside the window");

    // The cumulative export agrees while everything is recent, and the
    // fallback counter reports the unscored comm-aware routes.
    let cumulative = client.metrics("json").unwrap();
    assert!(cumulative.get("window").is_none());
    assert_eq!(
        cumulative
            .get("pools")
            .and_then(|p| p.get("grid"))
            .and_then(|g| g.get("route_latency_micros"))
            .and_then(|h| h.get("count"))
            .and_then(Value::as_u64),
        Some(4)
    );
    assert_eq!(
        cumulative
            .get("server")
            .and_then(|s| s.get("route_comm_fallbacks"))
            .and_then(Value::as_u64),
        Some(4)
    );
    assert_eq!(
        cumulative
            .get("tracing")
            .and_then(|t| t.get("calibration"))
            .and_then(Value::as_bool),
        Some(true)
    );
    assert!(cumulative
        .get("tracing")
        .and_then(|t| t.get("dropped_spans_total"))
        .and_then(Value::as_u64)
        .is_some());

    // The fallback also marks each decision record.
    let dump = client.trace_events(None, true).unwrap();
    assert_eq!(dump.decisions.len(), 4);
    for decision in &dump.decisions {
        assert_eq!(
            decision.get("comm_fallback").and_then(Value::as_bool),
            Some(true)
        );
    }

    // Prometheus: per-pool series with pool/policy labels, plus the
    // drop total, recovery epoch and calibration gauges.
    let Value::Str(text) = client.metrics_windowed("prometheus", Some("10s")).unwrap() else {
        panic!("prometheus metrics render as exposition text");
    };
    assert!(text.contains(
        "commalloc_pool_route_latency_micros_bucket{pool=\"grid\",policy=\"comm-aware\""
    ));
    assert!(text.contains("commalloc_dropped_spans_total"));
    assert!(text.contains("commalloc_recovery_epoch"));
    assert!(text.contains("commalloc_calibration_enabled 1"));
    assert!(text.contains("commalloc_route_comm_fallbacks 4"));

    drop(client);
    handle.shutdown().unwrap();
}

/// Satellite: stage-latency histograms reach both wire surfaces — the
/// extended `stats` and the `metrics` op in JSON and Prometheus text.
#[test]
fn metrics_surface_stage_histograms_in_both_formats() {
    let service = commalloc_service::AllocationService::new();
    service.register("m0", "8x8", None, None, None).unwrap();
    let handle = Server::bind("127.0.0.1:0", service, 2)
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    assert!(client.set_trace(true).unwrap());
    assert!(matches!(
        client.alloc("m0", 1, 10, false).unwrap(),
        ClientAllocOutcome::Granted(_)
    ));

    let metrics = client.metrics("json").unwrap();
    assert!(
        metrics
            .get("server")
            .and_then(|s| s.get("requests"))
            .and_then(Value::as_u64)
            .is_some_and(|n| n > 0),
        "server counters are part of the metrics surface"
    );
    assert_eq!(
        metrics
            .get("tracing")
            .and_then(|t| t.get("enabled"))
            .and_then(Value::as_bool),
        Some(true)
    );
    let parse_count = metrics
        .get("stages")
        .and_then(|s| s.get("parse"))
        .and_then(|p| p.get("count"))
        .and_then(Value::as_u64)
        .expect("parse stage histogram");
    assert!(parse_count > 0);
    let allocator_count = metrics
        .get("stages")
        .and_then(|s| s.get("allocator"))
        .and_then(|p| p.get("count"))
        .and_then(Value::as_u64)
        .expect("allocator stage histogram");
    assert!(allocator_count > 0);

    let Value::Str(text) = client.metrics("prometheus").unwrap() else {
        panic!("prometheus metrics render as exposition text");
    };
    assert!(text.contains("# TYPE commalloc_stage_latency_micros histogram"));
    assert!(text.contains("commalloc_stage_latency_micros_bucket{stage=\"parse\""));
    assert!(text.contains("commalloc_trace_enabled 1"));
    assert!(text.contains("commalloc_requests"));

    // The extended stats surface carries the same histograms.
    let stats = client.stats("m0").unwrap();
    assert!(
        stats
            .get("stages")
            .and_then(|s| s.get("allocator"))
            .is_some(),
        "stats carries the stage histograms"
    );

    drop(client);
    handle.shutdown().unwrap();
}
