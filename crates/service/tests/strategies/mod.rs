//! Shared proptest strategies generating every `Request` / `Response`
//! wire shape — including adversarial strings (quotes, backslashes,
//! unicode, embedded control characters) — used by both the NDJSON
//! round-trip suite and the binary-framing equivalence suite.

use commalloc_mesh::NodeId;
use commalloc_service::{JobRef, Request, Response};
use commalloc_workload::CommPattern;
use proptest::prelude::*;

/// Machine names and reason strings with escaping hazards baked in.
pub fn name_strategy() -> BoxedStrategy<String> {
    (
        prop::sample::select(vec![
            "m0",
            "paragon-16x22",
            "with \"quotes\"",
            "back\\slash",
            "tabs\tand\nnewlines",
            "unicode-mésh-网格",
            "",
        ]),
        0u64..1000,
    )
        .prop_map(|(base, n)| format!("{base}#{n}"))
        .boxed()
}

/// Finite positive walltimes with awkward fractional parts.
pub fn walltime_strategy() -> BoxedStrategy<Option<f64>> {
    prop_oneof![
        Just(None),
        (1u64..1_000_000, 1u64..1000).prop_map(|(a, b)| Some(a as f64 + b as f64 / 997.0)),
    ]
    .boxed()
}

/// `None` (unpatterned) plus every declared communication pattern.
pub fn pattern_strategy() -> BoxedStrategy<Option<CommPattern>> {
    let mut choices: Vec<Option<CommPattern>> = vec![None];
    choices.extend(CommPattern::all().iter().copied().map(Some));
    prop::sample::select(choices).boxed()
}

pub fn nodes_strategy() -> BoxedStrategy<Vec<NodeId>> {
    prop::collection::vec((0u32..4096).prop_map(NodeId), 0..12).boxed()
}

pub fn granted_strategy() -> BoxedStrategy<Vec<(u64, Vec<NodeId>)>> {
    prop::collection::vec((any::<u64>(), nodes_strategy()), 0..4).boxed()
}

pub fn opt_name() -> BoxedStrategy<Option<String>> {
    prop_oneof![Just(None), name_strategy().prop_map(Some)].boxed()
}

/// Optional tenant tags: absent (the untenanted wire form, which must
/// keep its pre-tenant bytes) plus escaping-hazard names.
pub fn tenant_strategy() -> BoxedStrategy<Option<String>> {
    prop_oneof![
        Just(None),
        prop::sample::select(vec!["default", "acme", "tenant \"q\"", "团队-β"])
            .prop_map(|t| Some(t.to_string())),
    ]
    .boxed()
}

/// Every [`JobRef`] form: bare integer ids (the pre-refactor wire
/// shape), `machine/id` and `pool/machine/id` strings. Segment names
/// reuse the adversarial name pool (slash-free by construction).
pub fn job_ref_strategy() -> BoxedStrategy<JobRef> {
    prop_oneof![
        any::<u64>().prop_map(JobRef::Bare),
        (name_strategy(), any::<u64>()).prop_map(|(machine, id)| JobRef::Member { machine, id }),
        (name_strategy(), name_strategy(), any::<u64>())
            .prop_map(|(pool, machine, id)| JobRef::Pooled { pool, machine, id }),
    ]
    .boxed()
}

/// Qualified [`JobRef`] forms only (`machine/id`, `pool/machine/id`):
/// the shapes that carry their own address and so are legal without a
/// `machine` field.
pub fn qualified_job_ref_strategy() -> BoxedStrategy<JobRef> {
    prop_oneof![
        (name_strategy(), any::<u64>()).prop_map(|(machine, id)| JobRef::Member { machine, id }),
        (name_strategy(), name_strategy(), any::<u64>())
            .prop_map(|(pool, machine, id)| JobRef::Pooled { pool, machine, id }),
    ]
    .boxed()
}

/// `(machine, job)` pairs for `release`/`poll`: a member name or
/// `@pool` address with any ref form, or no machine with a qualified
/// ref (a bare ref without a machine is a wire error).
pub fn job_op_target_strategy() -> BoxedStrategy<(Option<String>, JobRef)> {
    prop_oneof![
        (
            prop_oneof![
                name_strategy(),
                name_strategy().prop_map(|p| format!("@{p}")),
            ],
            job_ref_strategy(),
        )
            .prop_map(|(machine, job)| (Some(machine), job)),
        qualified_job_ref_strategy().prop_map(|job| (None, job)),
    ]
    .boxed()
}

/// Finite positive fair-share weights with awkward fractional parts
/// (integral floats would render as JSON integers and so cannot be
/// used in byte-identity fixtures).
pub fn weight_strategy() -> BoxedStrategy<f64> {
    (1u64..100, 1u64..1000)
        .prop_map(|(a, b)| a as f64 + b as f64 / 997.0)
        .boxed()
}

/// Optional node-second quotas, fractional for the same reason.
pub fn quota_strategy() -> BoxedStrategy<Option<f64>> {
    prop_oneof![
        Just(None),
        (1u64..1_000_000, 1u64..1000).prop_map(|(a, b)| Some(a as f64 + b as f64 / 997.0)),
    ]
    .boxed()
}

/// Opaque wire records (span events, routing decisions, calibration
/// payloads): small objects of the normal-form scalar shapes the
/// parser reproduces exactly (`Str`, `Int`-ranged integers, `Bool`).
pub fn record_strategy() -> BoxedStrategy<serde::Value> {
    (name_strategy(), 0i64..1_000_000, any::<bool>())
        .prop_map(|(pool, ts, flag)| {
            let mut m = serde::Map::new();
            m.insert("pool".into(), serde::Value::Str(pool));
            m.insert("ts_micros".into(), serde::Value::Int(ts));
            m.insert("comm_fallback".into(), serde::Value::Bool(flag));
            serde::Value::Object(m)
        })
        .boxed()
}

/// Every non-batch request shape (batches are generated on top of this,
/// since they do not nest).
pub fn simple_request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        (
            name_strategy(),
            name_strategy(),
            opt_name(),
            opt_name(),
            opt_name(),
            opt_name()
        )
            .prop_map(|(machine, mesh, allocator, strategy, scheduler, pool)| {
                Request::Register {
                    machine,
                    mesh,
                    allocator,
                    strategy,
                    scheduler,
                    pool,
                }
            }),
        (
            name_strategy(),
            any::<u64>(),
            1usize..2048,
            any::<bool>(),
            walltime_strategy(),
            pattern_strategy()
        )
            .prop_flat_map(|(machine, job, size, wait, walltime, pattern)| {
                tenant_strategy().prop_map(move |tenant| Request::Alloc {
                    machine: machine.clone(),
                    job,
                    size,
                    wait,
                    walltime,
                    pattern,
                    tenant,
                })
            }),
        (
            name_strategy().prop_map(|p| format!("@{p}")),
            any::<u64>(),
            1usize..2048,
            any::<bool>(),
            walltime_strategy(),
            pattern_strategy()
        )
            .prop_flat_map(|(machine, job, size, wait, walltime, pattern)| {
                tenant_strategy().prop_map(move |tenant| Request::Alloc {
                    machine: machine.clone(),
                    job,
                    size,
                    wait,
                    walltime,
                    pattern,
                    tenant,
                })
            }),
        (name_strategy(), name_strategy())
            .prop_map(|(machine, scheduler)| Request::SetScheduler { machine, scheduler }),
        (name_strategy(), name_strategy())
            .prop_map(|(pool, policy)| Request::SetRouter { pool, policy }),
        job_op_target_strategy().prop_map(|(machine, job)| Request::Release { machine, job }),
        job_op_target_strategy().prop_map(|(machine, job)| Request::Poll { machine, job }),
        name_strategy().prop_map(|tenant| Request::Hello { tenant }),
        (
            name_strategy(),
            prop_oneof![Just(None), weight_strategy().prop_map(Some)],
            quota_strategy(),
            prop_oneof![Just(None), (1u64..4096).prop_map(Some)],
        )
            .prop_map(
                |(tenant, weight, quota, max_in_flight)| Request::SetTenant {
                    tenant,
                    weight,
                    quota,
                    max_in_flight,
                }
            ),
        Just(Request::Tenants),
        (name_strategy(), any::<bool>())
            .prop_map(|(machine, enabled)| Request::SetFairShare { machine, enabled }),
        name_strategy().prop_map(|machine| Request::Query { machine }),
        name_strategy().prop_map(|machine| Request::Stats { machine }),
        (
            any::<bool>(),
            prop_oneof![Just(None), any::<bool>().prop_map(Some)]
        )
            .prop_map(|(enabled, calibration)| Request::SetTrace {
                enabled,
                calibration,
            }),
        (
            prop_oneof![Just(None), (1usize..10_000).prop_map(Some)],
            any::<bool>()
        )
            .prop_map(|(limit, clear)| Request::Trace { limit, clear }),
        (
            prop::sample::select(vec!["json", "prometheus"]),
            prop::sample::select(vec![None, Some("10s"), Some("60s")])
        )
            .prop_map(|(format, window)| Request::Metrics {
                format: format.to_string(),
                window: window.map(str::to_string),
            }),
        Just(Request::Calibration),
        Just(Request::List),
        Just(Request::Ping),
    ]
    .boxed()
}

pub fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        simple_request_strategy(),
        prop::collection::vec(simple_request_strategy(), 0..5).prop_map(Request::Batch),
    ]
    .boxed()
}

pub fn simple_response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        // Plain errors plus the typed forms (code + structured detail).
        (name_strategy(), 0u32..3, record_strategy()).prop_map(|(message, shape, detail)| {
            Response::Error {
                message,
                code: match shape {
                    0 => None,
                    1 => Some("quota_exceeded".to_string()),
                    _ => Some("ambiguous_job".to_string()),
                },
                detail: (shape == 1).then_some(detail),
            }
        }),
        name_strategy().prop_map(|machine| Response::Registered { machine }),
        (any::<u64>(), nodes_strategy(), opt_name()).prop_map(|(job, nodes, machine)| {
            Response::Granted {
                job,
                nodes,
                machine,
            }
        }),
        (any::<u64>(), 1usize..64, opt_name()).prop_map(|(job, position, machine)| {
            Response::Queued {
                job,
                position,
                machine,
            }
        }),
        (any::<u64>(), name_strategy(), opt_name()).prop_map(|(job, reason, machine)| {
            Response::Rejected {
                job,
                reason,
                machine,
            }
        }),
        (any::<u64>(), granted_strategy(), opt_name()).prop_map(|(job, granted, machine)| {
            Response::Released {
                job,
                granted,
                machine,
            }
        }),
        (name_strategy(), name_strategy(), granted_strategy()).prop_map(
            |(machine, scheduler, granted)| Response::SchedulerSet {
                machine,
                scheduler,
                granted,
            }
        ),
        (name_strategy(), name_strategy())
            .prop_map(|(pool, policy)| Response::RouterSet { pool, policy }),
        (any::<u64>(), nodes_strategy(), opt_name()).prop_map(|(job, nodes, machine)| {
            Response::Running {
                job,
                nodes,
                machine,
            }
        }),
        (
            any::<u64>(),
            1usize..64,
            0u32..3,
            walltime_strategy(),
            opt_name()
        )
            .prop_map(|(job, position, shape, reserved_start, machine)| {
                Response::Waiting {
                    job,
                    position,
                    // Finite-positive like a real promised start; `shape`
                    // also covers the no-reservation / no-explain corners.
                    reserved_start: if shape == 0 { None } else { reserved_start },
                    explain: (shape == 2).then(|| {
                        let mut m = serde::Map::new();
                        m.insert(
                            "reason".into(),
                            serde::Value::Str("head_of_line".to_string()),
                        );
                        m.insert("blocking_job".into(), serde::Value::Int(7));
                        serde::Value::Object(m)
                    }),
                    machine,
                }
            }),
        any::<u64>().prop_map(|job| Response::Unknown { job }),
        prop::collection::vec(name_strategy(), 0..5).prop_map(Response::Machines),
        any::<bool>().prop_map(|enabled| Response::TraceSet { enabled }),
        (
            prop::collection::vec(record_strategy(), 0..4),
            any::<u64>(),
            any::<bool>(),
            prop::collection::vec(record_strategy(), 0..4)
        )
            .prop_map(|(events, dropped, enabled, decisions)| Response::Trace {
                events,
                dropped,
                enabled,
                decisions,
            }),
        record_strategy().prop_map(Response::Calibration),
        name_strategy().prop_map(|tenant| Response::Hello { tenant }),
        (
            name_strategy(),
            weight_strategy(),
            quota_strategy(),
            prop_oneof![Just(None), (1u64..4096).prop_map(Some)],
        )
            .prop_map(
                |(tenant, weight, quota, max_in_flight)| Response::TenantSet {
                    tenant,
                    weight,
                    quota,
                    max_in_flight,
                }
            ),
        prop::collection::vec(record_strategy(), 0..4)
            .prop_map(|rows| Response::Tenants(serde::Value::Array(rows))),
        (name_strategy(), any::<bool>(), granted_strategy()).prop_map(
            |(machine, enabled, granted)| Response::FairShareSet {
                machine,
                enabled,
                granted,
            }
        ),
        prop_oneof![
            record_strategy().prop_map(|metrics| Response::Metrics {
                format: "json".to_string(),
                metrics,
            }),
            name_strategy().prop_map(|text| Response::Metrics {
                format: "prometheus".to_string(),
                metrics: serde::Value::Str(text),
            }),
        ],
        Just(Response::Pong),
    ]
    .boxed()
}

pub fn response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        simple_response_strategy(),
        prop::collection::vec(simple_response_strategy(), 0..5).prop_map(Response::Batch),
    ]
    .boxed()
}
