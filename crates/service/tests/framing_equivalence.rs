//! Property test: the binary framing is semantically identical to the
//! NDJSON framing. Every generated `Request` / `Response` shape is
//! encoded both ways; the binary frame (pushed through the real
//! `FrameBuffer` splitter, not just the codec) must decode to a `Value`
//! equal to the one parsed from its NDJSON twin — and re-rendering both
//! values to JSON must produce byte-identical text. Both decoded values
//! must also convert back to the original typed message.

mod strategies;

use commalloc_service::framing::{self, FrameBuffer, Framing};
use commalloc_service::{Request, Response};
use proptest::prelude::*;
use serde::Value;
use strategies::{request_strategy, response_strategy};

/// Encodes `value` as a binary frame, runs it through the incremental
/// splitter, and decodes the payload back to a `Value`.
fn binary_round_trip(value: &Value) -> Result<Value, TestCaseError> {
    let frame = framing::encode_frame(value)
        .map_err(|e| TestCaseError::fail(format!("encode_frame: {e}")))?;
    let mut buffer = FrameBuffer::new();
    buffer.extend(&frame);
    let split = buffer
        .next_frame()
        .map_err(|e| TestCaseError::fail(format!("next_frame: {e}")))?
        .ok_or_else(|| TestCaseError::fail("splitter saw no complete frame".to_string()))?;
    prop_assert_eq!(split.framing, Framing::Binary);
    buffer
        .finish()
        .map_err(|e| TestCaseError::fail(format!("trailing bytes after the frame: {e}")))?;
    framing::decode_value(&split.payload)
        .map_err(|e| TestCaseError::fail(format!("decode_value: {e}")))
}

/// Asserts the two decoded values are equal and render to identical
/// JSON bytes (the "byte-identical twin" guarantee).
fn assert_twins(from_binary: &Value, from_ndjson: &Value) -> Result<(), TestCaseError> {
    prop_assert_eq!(from_binary, from_ndjson, "decoded values diverged");
    let binary_text = serde_json::to_string(from_binary)
        .map_err(|e| TestCaseError::fail(format!("render binary twin: {e}")))?;
    let ndjson_text = serde_json::to_string(from_ndjson)
        .map_err(|e| TestCaseError::fail(format!("render ndjson twin: {e}")))?;
    prop_assert_eq!(
        binary_text.as_bytes(),
        ndjson_text.as_bytes(),
        "rendered JSON diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn requests_decode_byte_identical_across_framings(request in request_strategy()) {
        let line = request.to_line();
        let from_ndjson: Value = serde_json::from_str(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} on {line}")))?;
        let from_binary = binary_round_trip(&request.to_value())?;
        assert_twins(&from_binary, &from_ndjson)?;
        let decoded = Request::from_value(&from_binary)
            .map_err(|e| TestCaseError::fail(format!("from_value: {e}")))?;
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn responses_decode_byte_identical_across_framings(response in response_strategy()) {
        let line = response.to_line();
        let from_ndjson: Value = serde_json::from_str(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} on {line}")))?;
        let from_binary = binary_round_trip(&response.to_value())?;
        assert_twins(&from_binary, &from_ndjson)?;
        let decoded = Response::from_value(&from_binary)
            .map_err(|e| TestCaseError::fail(format!("from_value: {e}")))?;
        prop_assert_eq!(decoded, response);
    }
}
