//! End-to-end coverage of the tenancy and job-identity layer over real
//! TCP: pool-scoped `@pool` job addressing through the pool job index,
//! typed ambiguity and quota errors, `hello` connection binding,
//! per-tenant accounting in the tenant table, weighted fair-share
//! drain order, and tenant-table recovery through a simulated crash.

use commalloc_service::{
    open_journaled, AllocOutcome, AllocationService, ClientAllocOutcome, ClientError, JobRef,
    JobStatus, JournalConfig, RequestCtx, Server, ServiceClient,
};
use serde::Value;
use std::collections::HashMap;

fn spawn_server() -> (AllocationService, commalloc_service::ServerHandle) {
    let service = AllocationService::new();
    let handle = Server::bind("127.0.0.1:0", service.clone(), 4)
        .expect("bind an ephemeral port")
        .spawn()
        .expect("spawn the server");
    (service, handle)
}

fn register_pool(client: &mut ServiceClient, members: &[&str]) {
    for name in members {
        client
            .register_in_pool(name, "8x8", None, None, None, Some("grid"))
            .unwrap();
    }
}

/// The tentpole acceptance path: allocate through `@grid`, then
/// release/poll/query through `@grid` with bare ids — the pool job
/// index resolves each id to the owning member, and the responses name
/// that member.
#[test]
fn pool_scoped_job_refs_resolve_over_tcp() {
    let (service, handle) = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    register_pool(&mut client, &["m0", "m1"]);

    // Place jobs through the router and remember who took them.
    let mut owners: HashMap<u64, String> = HashMap::new();
    for job in 1..=6u64 {
        let (machine, outcome) = client
            .alloc_routed("@grid", job, 8, false, Some(60.0), None)
            .unwrap();
        assert!(matches!(outcome, ClientAllocOutcome::Granted(_)));
        owners.insert(job, machine);
    }

    // Poll by bare id through the pool: the index resolves the member.
    for (&job, owner) in &owners {
        let (resolved, status) = client.poll_ref(Some("@grid"), &JobRef::Bare(job)).unwrap();
        assert_eq!(resolved.as_deref(), Some(owner.as_str()), "job {job}");
        assert!(matches!(status, JobStatus::Running(_)));
    }

    // A fully-qualified ref needs no machine field at all.
    let owner = owners[&1].clone();
    let (resolved, status) = client
        .poll_ref(
            None,
            &JobRef::Pooled {
                pool: "grid".into(),
                machine: owner.clone(),
                id: 1,
            },
        )
        .unwrap();
    assert_eq!(resolved.as_deref(), Some(owner.as_str()));
    assert!(matches!(status, JobStatus::Running(_)));

    // Release through the pool; the response names the resolved member
    // and the index entry dies with the job.
    for (&job, owner) in &owners {
        let (resolved, _) = client
            .release_ref(Some("@grid"), &JobRef::Bare(job))
            .unwrap();
        assert_eq!(resolved.as_deref(), Some(owner.as_str()), "job {job}");
    }
    let err = client
        .poll_ref(Some("@grid"), &JobRef::Bare(1))
        .unwrap_err();
    assert!(
        matches!(err, ClientError::Service(_)),
        "released jobs must be gone from the index, got {err:?}"
    );

    // `query @grid` aggregates the pool.
    let snap = client.query("@grid").unwrap();
    assert_eq!(snap.get("pool").and_then(Value::as_str), Some("grid"));

    for machine in ["m0", "m1"] {
        service.check_invariants(machine).unwrap();
    }
    drop(client);
    handle.shutdown().unwrap();
}

/// The satellite bugfix: the same bare id live on two members is a
/// typed `ambiguous_job` error carrying both owners — never
/// first-match-wins — and a qualified ref still disambiguates.
#[test]
fn duplicate_bare_ids_across_members_are_typed_ambiguous() {
    let (_service, handle) = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    register_pool(&mut client, &["m0", "m1"]);

    // The same client-chosen id placed directly on both members.
    for machine in ["m0", "m1"] {
        assert!(matches!(
            client.alloc(machine, 7, 4, false).unwrap(),
            ClientAllocOutcome::Granted(_)
        ));
    }

    let err = client
        .release_ref(Some("@grid"), &JobRef::Bare(7))
        .unwrap_err();
    let ClientError::AmbiguousJob {
        pool,
        job,
        machines,
    } = err
    else {
        panic!("expected the typed ambiguity error, got {err:?}");
    };
    assert_eq!(pool, "grid");
    assert_eq!(job, 7);
    assert_eq!(machines, vec!["m0".to_string(), "m1".to_string()]);

    // Qualified refs bypass the ambiguity.
    let (resolved, _) = client
        .release_ref(
            None,
            &JobRef::Member {
                machine: "m1".into(),
                id: 7,
            },
        )
        .unwrap();
    assert_eq!(resolved.as_deref(), Some("m1"));
    // Now the bare id is unique again.
    let (resolved, _) = client.release_ref(Some("@grid"), &JobRef::Bare(7)).unwrap();
    assert_eq!(resolved.as_deref(), Some("m0"));
    drop(client);
    handle.shutdown().unwrap();
}

/// Quota admission over the wire: a `hello`-bound connection is billed
/// to its tenant, denials are typed `quota_exceeded` errors carrying
/// usage and limit, and the tenant table accounts both sides.
#[test]
fn quota_denials_are_typed_and_accounted() {
    let (_service, handle) = spawn_server();
    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    client.register("m0", "8x8", None, None, None).unwrap();
    // 1000 node-seconds of quota.
    let (weight, quota, cap) = client.set_tenant("acme", None, Some(1000.0), None).unwrap();
    assert_eq!(weight, 1.0);
    assert_eq!(quota, Some(1000.0));
    assert_eq!(cap, None);
    assert_eq!(client.hello("acme").unwrap(), "acme");

    // 8 nodes x 100 s = 800 node-seconds: admitted.
    assert!(matches!(
        client
            .alloc_as("m0", 1, 8, false, Some(100.0), None, None)
            .unwrap(),
        ClientAllocOutcome::Granted(_)
    ));
    // Another 800 would take acme to 1600 > 1000: typed denial.
    let err = client
        .alloc_as("m0", 2, 8, false, Some(100.0), None, None)
        .unwrap_err();
    let ClientError::QuotaExceeded {
        tenant,
        usage,
        limit,
    } = err
    else {
        panic!("expected the typed quota error, got {err:?}");
    };
    assert_eq!(tenant, "acme");
    assert_eq!(usage, 800.0);
    assert_eq!(limit, 1000.0);

    // An explicit per-request tenant overrides the connection binding.
    assert!(matches!(
        client
            .alloc_as("m0", 3, 4, false, Some(10.0), None, Some("other"))
            .unwrap(),
        ClientAllocOutcome::Granted(_)
    ));

    // The table shows acme's admit/deny ledger and other's admit.
    let table = client.tenants().unwrap();
    let acme = table.get("acme").expect("acme must be in the table");
    assert_eq!(acme.get("admitted").and_then(Value::as_u64), Some(1));
    assert_eq!(acme.get("denied").and_then(Value::as_u64), Some(1));
    assert_eq!(
        acme.get("outstanding_node_seconds").and_then(Value::as_f64),
        Some(800.0)
    );
    let other = table.get("other").expect("other must be in the table");
    assert_eq!(other.get("admitted").and_then(Value::as_u64), Some(1));

    // Releasing settles the commitment into consumption.
    client.release("m0", 1).unwrap();
    let table = client.tenants().unwrap();
    let acme = table.get("acme").unwrap();
    assert_eq!(
        acme.get("outstanding_node_seconds").and_then(Value::as_f64),
        Some(0.0)
    );
    drop(client);
    handle.shutdown().unwrap();
}

/// Fair-share ON lets the heavier tenant's later-arriving jobs drain
/// first, shifting the tenant-weighted mean wait; OFF preserves plain
/// arrival order. (Acceptance: the two-tenant weighted run.)
#[test]
fn weighted_fair_share_shifts_tenant_mean_wait() {
    let run = |fair_share: bool| -> (f64, f64) {
        let service = AllocationService::new();
        service.register("m0", "8x8", None, None, None).unwrap();
        service.set_tenant("heavy", Some(8.0), None, None).unwrap();
        service.set_tenant("light", Some(1.0), None, None).unwrap();
        if fair_share {
            service.set_fair_share("m0", true).unwrap();
        }
        service.set_time("m0", 0.0).unwrap();
        let ctx = RequestCtx::inert();
        // Fill all 64 processors with four untenanted holders.
        for job in 100..104u64 {
            assert!(matches!(
                service
                    .allocate("m0", job, 16, false, Some(1000.0))
                    .unwrap(),
                AllocOutcome::Granted(_)
            ));
        }
        // Light arrives first, heavy second; same shapes throughout.
        for job in 200..204u64 {
            let outcome = service
                .allocate_traced("m0", job, 16, true, Some(10.0), None, Some("light"), &ctx)
                .unwrap();
            assert!(matches!(outcome, AllocOutcome::Queued(_)));
        }
        for job in 300..304u64 {
            let outcome = service
                .allocate_traced("m0", job, 16, true, Some(10.0), None, Some("heavy"), &ctx)
                .unwrap();
            assert!(matches!(outcome, AllocOutcome::Queued(_)));
        }
        // Free one 16-node slot per tick; record when each job starts.
        let mut to_release: Vec<u64> = (100..104).collect();
        let mut started: HashMap<u64, f64> = HashMap::new();
        let mut tick = 0u64;
        while started.len() < 8 {
            tick += 1;
            let t = tick as f64 * 10.0;
            service.set_time("m0", t).unwrap();
            let victim = to_release.remove(0);
            for (job, _) in service.release("m0", victim).unwrap() {
                started.insert(job, t);
                to_release.push(job);
            }
            assert!(tick < 64, "drain must terminate");
        }
        let mean = |range: std::ops::Range<u64>| -> f64 {
            range.clone().map(|j| started[&j]).sum::<f64>() / range.count() as f64
        };
        (mean(300..304), mean(200..204))
    };

    let (heavy_off, light_off) = run(false);
    assert!(
        heavy_off > light_off,
        "FCFS favors the earlier arrivals: heavy {heavy_off} vs light {light_off}"
    );
    let (heavy_on, light_on) = run(true);
    assert!(
        heavy_on < light_on,
        "weight 8 must out-drain weight 1: heavy {heavy_on} vs light {light_on}"
    );
    assert!(
        heavy_on < heavy_off,
        "fair-share must shift the heavy tenant's mean wait down ({heavy_on} vs {heavy_off})"
    );
}

/// The tenant table, fair-share toggles and the pool job index all
/// survive a crash (scope drop without shutdown) and recover from the
/// journal: quotas keep counting from the recovered usage.
#[test]
fn tenant_table_and_pool_index_survive_recovery() {
    let dir =
        std::env::temp_dir().join(format!("commalloc-tenant-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ctx = RequestCtx::inert();
    {
        let (service, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
        service
            .register_in_pool("m0", "8x8", None, None, None, Some("grid"))
            .unwrap();
        service
            .register_in_pool("m1", "8x8", None, None, None, Some("grid"))
            .unwrap();
        service
            .set_tenant("acme", Some(2.5), Some(2000.0), Some(64))
            .unwrap();
        service.set_fair_share("m0", true).unwrap();
        // 8 nodes x 100 s = 800 node-seconds outstanding for acme.
        let outcome = service
            .allocate_traced("m0", 1, 8, false, Some(100.0), None, Some("acme"), &ctx)
            .unwrap();
        assert!(matches!(outcome, AllocOutcome::Granted(_)));
        // Dropped without release: a kill -9 equivalent.
    }
    let (recovered, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert_eq!(report.epoch, 1);

    // Configuration and usage both survived.
    let table = recovered.tenants_value();
    let acme = table.get("acme").expect("acme must survive recovery");
    assert_eq!(acme.get("weight").and_then(Value::as_f64), Some(2.5));
    assert_eq!(
        acme.get("quota_node_seconds").and_then(Value::as_f64),
        Some(2000.0)
    );
    assert_eq!(acme.get("max_in_flight").and_then(Value::as_u64), Some(64));
    assert_eq!(
        acme.get("outstanding_node_seconds").and_then(Value::as_f64),
        Some(800.0)
    );

    // The quota keeps enforcing from the recovered usage: another
    // 1600 node-seconds would cross 2000.
    let err = recovered
        .allocate_traced("m0", 2, 16, false, Some(100.0), None, Some("acme"), &ctx)
        .unwrap_err();
    assert!(
        format!("{err}").contains("quota"),
        "expected a quota denial, got {err}"
    );

    // The pool index resolves the recovered job by bare id.
    let (resolved, status) = recovered.poll_ref(Some("@grid"), &JobRef::Bare(1)).unwrap();
    assert_eq!(resolved, "m0");
    assert!(matches!(status, JobStatus::Running(_)));
    // Fair-share toggle survived too.
    assert!(recovered.machine_image("m0").unwrap().fair_share);
    std::fs::remove_dir_all(&dir).unwrap();
}
