//! Property test: NDJSON encode/decode of every `Request` / `Response`
//! variant — including the `walltime` and `set_scheduler` extensions — is
//! lossless, stays on one wire line, and survives adversarial strings
//! (quotes, backslashes, unicode, embedded control characters).
//!
//! The generators live in `strategies/` and are shared with the binary
//! framing equivalence suite, so both wire formats face the same shapes.

mod strategies;

use commalloc_service::{Request, Response};
use proptest::prelude::*;
use strategies::{request_strategy, response_strategy};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn requests_round_trip_losslessly(request in request_strategy()) {
        let line = request.to_line();
        prop_assert!(!line.contains('\n'), "wire lines must be single lines");
        let parsed = Request::from_line(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} on {line}")))?;
        prop_assert_eq!(parsed, request, "line was {}", line);
    }

    #[test]
    fn responses_round_trip_losslessly(response in response_strategy()) {
        let line = response.to_line();
        prop_assert!(!line.contains('\n'), "wire lines must be single lines");
        let parsed = Response::from_line(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} on {line}")))?;
        prop_assert_eq!(parsed, response, "line was {}", line);
    }
}
