//! Concurrent in-process hammering of one machine under every scheduling
//! policy: interleaved allocate / release / cancel from many threads must
//! never double-grant a node, must keep the occupancy invariant, and must
//! keep the queue-position view consistent.
//!
//! Claim discipline: a node is claimed by whoever *observes* its grant —
//! the allocating thread for immediate grants, the releasing thread for
//! queue grants reported in a `release` response (which may belong to
//! another thread's job). Releases and cancels serialise on the shared
//! grant ledger and hold it across the service call, so observing a grant
//! and claiming its nodes is one atomic step; allocations stay fully
//! concurrent, which is where the double-grant hazard lives.

use commalloc::scheduler::SchedulerKind;
use commalloc_service::{AllocOutcome, AllocationService, JobStatus};
use rand::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

const NODES: usize = 256;
const THREADS: u64 = 4;
const OPS_PER_THREAD: usize = 1500;

/// Node claims shared by all threads, plus the grant ledger: the node
/// sets of queue-granted jobs, so owners can unclaim what another thread
/// claimed on their behalf.
struct Shared {
    claims: Vec<AtomicBool>,
    violations: AtomicU64,
    /// job -> nodes, filled in by whichever thread observed the grant.
    ledger: Mutex<HashMap<u64, Vec<commalloc_mesh::NodeId>>>,
}

impl Shared {
    fn claim(&self, nodes: &[commalloc_mesh::NodeId]) {
        for n in nodes {
            if self.claims[n.index()].swap(true, Ordering::SeqCst) {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    fn unclaim(&self, nodes: &[commalloc_mesh::NodeId]) {
        for n in nodes {
            if !self.claims[n.index()].swap(false, Ordering::SeqCst) {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Releases (or cancels) `job` with the ledger held across the call:
    /// unclaims whatever the job holds, then claims and records every
    /// grant the release admitted from the queue.
    fn release_atomically(
        &self,
        service: &AllocationService,
        machine: &str,
        job: u64,
        held: Option<Vec<commalloc_mesh::NodeId>>,
    ) {
        let mut ledger = self.ledger.lock().unwrap();
        let held = held.or_else(|| ledger.remove(&job));
        if let Some(nodes) = &held {
            self.unclaim(nodes);
        }
        let granted = service.release(machine, job).unwrap();
        for (granted_job, granted_nodes) in granted {
            self.claim(&granted_nodes);
            ledger.insert(granted_job, granted_nodes);
        }
    }
}

fn hammer(scheduler: SchedulerKind) {
    let service = AllocationService::new();
    let machine = format!("m-{}", scheduler.name());
    service
        .register(&machine, "16x16", None, None, Some(scheduler.name()))
        .unwrap();
    let shared = Shared {
        claims: (0..NODES).map(|_| AtomicBool::new(false)).collect(),
        violations: AtomicU64::new(0),
        ledger: Mutex::new(HashMap::new()),
    };

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = service.clone();
            let machine = machine.as_str();
            let shared = &shared;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t ^ 0xc0ffee);
                // Jobs this thread holds processors for (immediate grants
                // only; queue grants stay ledger-owned until cancelled).
                let mut live: Vec<(u64, Vec<commalloc_mesh::NodeId>)> = Vec::new();
                // Jobs this thread queued.
                let mut waiting: Vec<u64> = Vec::new();
                let mut next = (t + 1) << 40;
                for _ in 0..OPS_PER_THREAD {
                    // Queue-position consistency sweep: every job this
                    // thread still considers waiting is either queued at a
                    // valid position or was granted (and then appears in
                    // the ledger, claimed by the grant's observer).
                    waiting.retain(|&job| match service.poll(machine, job).unwrap() {
                        JobStatus::Queued(position) => {
                            assert!(position >= 1, "queue positions are 1-based");
                            true
                        }
                        JobStatus::Running(nodes) => {
                            assert!(!nodes.is_empty());
                            false // now ledger-owned; cancelled via release later
                        }
                        JobStatus::Unknown => {
                            panic!("queued job {job} vanished without a cancel")
                        }
                    });

                    let action = rng.gen_range(0u8..10);
                    if action < 5 || (live.is_empty() && waiting.is_empty()) {
                        // Allocate: half immediate, half queued-with-wait.
                        let size = rng.gen_range(1..=32);
                        let wait = rng.gen_bool(0.5);
                        let walltime = if rng.gen_bool(0.7) {
                            Some(rng.gen_range(1.0..500.0))
                        } else {
                            None
                        };
                        let job = next;
                        next += 1;
                        match service
                            .allocate(machine, job, size, wait, walltime)
                            .unwrap()
                        {
                            AllocOutcome::Granted(nodes) => {
                                shared.claim(&nodes);
                                live.push((job, nodes));
                            }
                            AllocOutcome::Queued(position) => {
                                assert!(position >= 1);
                                waiting.push(job);
                            }
                            AllocOutcome::Rejected(_) => {}
                        }
                    } else if action < 8 && !live.is_empty() {
                        let at = rng.gen_range(0..live.len());
                        let (job, nodes) = live.swap_remove(at);
                        shared.release_atomically(&service, machine, job, Some(nodes));
                    } else if !waiting.is_empty() {
                        // Cancel a queued job (it may have been granted in
                        // the meantime; the ledger settles either way).
                        let at = rng.gen_range(0..waiting.len());
                        let job = waiting.swap_remove(at);
                        shared.release_atomically(&service, machine, job, None);
                    }
                }
                // Drain: cancel what waits, release what runs.
                for job in waiting {
                    shared.release_atomically(&service, machine, job, None);
                }
                for (job, nodes) in live {
                    shared.release_atomically(&service, machine, job, Some(nodes));
                }
            });
        }
    });

    // Jobs granted during the final drains were never released by their
    // (exited) owners; settle them now so the machine ends empty.
    let leftovers: Vec<u64> = shared.ledger.lock().unwrap().keys().copied().collect();
    for job in leftovers {
        shared.release_atomically(&service, &machine, job, None);
    }

    assert_eq!(
        shared.violations.load(Ordering::SeqCst),
        0,
        "{scheduler}: double-granted nodes detected"
    );
    service.check_invariants(&machine).unwrap();
    let snap = service.query(&machine).unwrap();
    assert_eq!(snap.busy, 0, "{scheduler}: machine should end empty");
    assert_eq!(snap.scheduler, scheduler.name());
    let outstanding = shared
        .claims
        .iter()
        .filter(|c| c.load(Ordering::SeqCst))
        .count();
    assert_eq!(outstanding, 0, "{scheduler}: stale client-side claims");
}

#[test]
fn concurrent_fcfs_never_double_grants() {
    hammer(SchedulerKind::Fcfs);
}

#[test]
fn concurrent_first_fit_backfill_never_double_grants() {
    hammer(SchedulerKind::FirstFitBackfill);
}

#[test]
fn concurrent_easy_backfill_never_double_grants() {
    hammer(SchedulerKind::EasyBackfill);
}

#[test]
fn concurrent_conservative_backfill_never_double_grants() {
    hammer(SchedulerKind::Conservative);
}
