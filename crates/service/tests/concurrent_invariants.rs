//! Concurrent in-process hammering of one machine: a shared claim table
//! must never observe a node granted to two jobs at once.

use commalloc_service::{AllocOutcome, AllocationService};
use rand::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[test]
fn concurrent_allocate_release_never_double_grants() {
    let service = AllocationService::new();
    service.register("m0", "16x16", None, None).unwrap();
    let claims: Vec<AtomicBool> = (0..256).map(|_| AtomicBool::new(false)).collect();
    let violations = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let service = service.clone();
            let claims = &claims;
            let violations = &violations;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                let mut live: Vec<(u64, Vec<commalloc_mesh::NodeId>)> = Vec::new();
                let mut next = t << 40;
                for _ in 0..2000 {
                    if live.is_empty() || rng.gen_bool(0.55) {
                        let size = rng.gen_range(1..=32);
                        let job = next;
                        next += 1;
                        match service.allocate("m0", job, size, false).unwrap() {
                            AllocOutcome::Granted(nodes) => {
                                for n in &nodes {
                                    if claims[n.index()].swap(true, Ordering::SeqCst) {
                                        violations.fetch_add(1, Ordering::SeqCst);
                                    }
                                }
                                live.push((job, nodes));
                            }
                            AllocOutcome::Rejected(_) => {}
                            AllocOutcome::Queued(_) => unreachable!("wait never set"),
                        }
                    } else {
                        let at = rng.gen_range(0..live.len());
                        let (job, nodes) = live.swap_remove(at);
                        // Unclaim BEFORE releasing: the service cannot
                        // re-grant nodes it still holds, while the reverse
                        // order races with grants to other threads.
                        for n in &nodes {
                            if !claims[n.index()].swap(false, Ordering::SeqCst) {
                                violations.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        service.release("m0", job).unwrap();
                    }
                }
                for (job, nodes) in live.drain(..) {
                    for n in &nodes {
                        if !claims[n.index()].swap(false, Ordering::SeqCst) {
                            violations.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    service.release("m0", job).unwrap();
                }
            });
        }
    });
    assert_eq!(violations.load(Ordering::SeqCst), 0);
    service.check_invariants("m0").unwrap();
    let snap = service.query("m0").unwrap();
    assert_eq!(snap.busy, 0);
}
