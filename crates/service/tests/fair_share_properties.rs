//! Property: the weighted fair-share admission layer never starves a
//! tenant. Fair share only *re-orders* the queue before the scheduler
//! policy runs, so the conservative scheduler's no-starvation guarantee
//! (every queued job eventually starts, whatever arrives after it) must
//! hold for every weight vector — including pathologically skewed ones.

use commalloc_service::{AllocOutcome, AllocationService, RequestCtx};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For arbitrary tenant weight vectors and job shapes, every job
    /// queued under fair share on a conservative-scheduler machine
    /// starts within a bounded number of release rounds: no weight
    /// assignment can starve any tenant's work.
    #[test]
    fn weighted_fair_share_preserves_conservative_no_starvation(
        // 2..6 tenants with weights spanning four orders of magnitude.
        weights in prop::collection::vec(
            (1u32..10_000).prop_map(|w| w as f64 / 10.0),
            2..6,
        ),
        jobs_per_tenant in 1usize..4,
        // Job sizes from tiny to the whole 64-node machine.
        sizes in prop::collection::vec(1usize..=64, 24),
        walltime_seed in 1u64..100,
    ) {
        let service = AllocationService::new();
        service
            .register("m0", "8x8", None, None, Some("conservative"))
            .unwrap();
        for (i, weight) in weights.iter().enumerate() {
            service
                .set_tenant(&format!("t{i}"), Some(*weight), None, None)
                .unwrap();
        }
        service.set_fair_share("m0", true).unwrap();
        service.set_time("m0", 0.0).unwrap();

        // One holder pins the whole machine so everything else queues.
        let holder = 1_000u64;
        prop_assert!(matches!(
            service.allocate("m0", holder, 64, false, Some(50.0)).unwrap(),
            AllocOutcome::Granted(_)
        ));

        // Interleaved arrivals across tenants, adversarial sizes.
        let ctx = RequestCtx::inert();
        let mut queued: Vec<u64> = Vec::new();
        let mut job = 0u64;
        for round in 0..jobs_per_tenant {
            for (i, _) in weights.iter().enumerate() {
                let size = sizes[(round * weights.len() + i) % sizes.len()];
                let walltime = (walltime_seed * (job + 1)) % 97 + 1;
                let outcome = service
                    .allocate_traced(
                        "m0",
                        job,
                        size,
                        true,
                        Some(walltime as f64),
                        None,
                        Some(&format!("t{i}")),
                        &ctx,
                    )
                    .unwrap();
                prop_assert!(
                    matches!(outcome, AllocOutcome::Queued(_)),
                    "the machine is full, job {job} must queue (got {outcome:?})"
                );
                queued.push(job);
                job += 1;
            }
        }

        // Drain rounds: release everything running, collect the jobs
        // the re-drain admits. Each round must make progress, and every
        // queued job must start within |queue| rounds — the definition
        // of no starvation under finite work.
        let mut running: Vec<u64> = vec![holder];
        let mut started: HashSet<u64> = HashSet::new();
        let mut clock = 0.0;
        let bound = queued.len() + 1;
        for _round in 0..bound {
            if started.len() == queued.len() {
                break;
            }
            clock += 1_000.0;
            service.set_time("m0", clock).unwrap();
            let mut admitted: Vec<u64> = Vec::new();
            for victim in running.drain(..) {
                for (granted, _) in service.release("m0", victim).unwrap() {
                    prop_assert!(started.insert(granted), "job {granted} started twice");
                    admitted.push(granted);
                }
            }
            prop_assert!(
                !admitted.is_empty(),
                "an empty drain round means starvation: {} of {} started, weights {weights:?}",
                started.len(),
                queued.len()
            );
            running = admitted;
        }
        prop_assert_eq!(
            started.len(),
            queued.len(),
            "every queued job must start; weights {:?}",
            weights
        );
        service.check_invariants("m0").unwrap();
    }
}
