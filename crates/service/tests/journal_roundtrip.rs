//! Property tests for the write-ahead journal's NDJSON wire format —
//! every [`JournalRecord`] variant round-trips losslessly through one
//! line, including adversarial machine names and snapshot images — plus
//! torn-tail recovery: a final line truncated by `kill -9` is dropped,
//! never an error, and never costs any *earlier* record.

use commalloc_mesh::NodeId;
use commalloc_service::journal::{
    read_journal_dir, FileJournal, MachineImage, PoolImage, QueuedImage, RunningImage,
    SnapshotImage, TenantImage,
};
use commalloc_service::{open_journaled, JournalConfig, JournalRecord};
use commalloc_workload::CommPattern;
use proptest::prelude::*;
use std::path::PathBuf;

/// Names with escaping hazards baked in (the same adversarial set the
/// protocol round-trip suite uses).
fn name_strategy() -> BoxedStrategy<String> {
    (
        prop::sample::select(vec![
            "m0",
            "paragon-16x22",
            "with \"quotes\"",
            "back\\slash",
            "tabs\tand\nnewlines",
            "unicode-mésh-网格",
            "",
        ]),
        0u64..1000,
    )
        .prop_map(|(base, n)| format!("{base}#{n}"))
        .boxed()
}

fn opt_name() -> BoxedStrategy<Option<String>> {
    prop_oneof![Just(None), name_strategy().prop_map(Some)].boxed()
}

/// Finite positive walltimes with awkward fractional parts.
fn walltime_strategy() -> BoxedStrategy<Option<f64>> {
    prop_oneof![
        Just(None),
        (1u64..1_000_000, 1u64..1000).prop_map(|(a, b)| Some(a as f64 + b as f64 / 997.0)),
    ]
    .boxed()
}

/// Non-negative clock stamps that are exact in `f64`.
fn stamp_strategy() -> BoxedStrategy<f64> {
    (0u64..1_000_000, 0u64..1000)
        .prop_map(|(a, b)| a as f64 + b as f64 / 512.0)
        .boxed()
}

/// Optional tenant tags: absent (the pre-tenant wire form) plus names
/// with the same escaping hazards as machine names.
fn tenant_strategy() -> BoxedStrategy<Option<String>> {
    prop_oneof![
        Just(None),
        prop::sample::select(vec!["default", "acme", "tenant \"q\"", "团队"])
            .prop_map(|t| Some(t.to_string())),
    ]
    .boxed()
}

fn nodes_strategy() -> BoxedStrategy<Vec<NodeId>> {
    prop::collection::vec((0u32..4096).prop_map(NodeId), 0..12).boxed()
}

/// `None` (pre-pattern wire form) plus every declared pattern.
fn pattern_strategy() -> BoxedStrategy<Option<CommPattern>> {
    let mut choices: Vec<Option<CommPattern>> = vec![None];
    choices.extend(CommPattern::all().iter().copied().map(Some));
    prop::sample::select(choices).boxed()
}

fn running_strategy() -> BoxedStrategy<RunningImage> {
    (
        any::<u64>(),
        nodes_strategy(),
        walltime_strategy(),
        stamp_strategy(),
        pattern_strategy(),
        tenant_strategy(),
    )
        .prop_map(
            |(job, nodes, walltime, start, pattern, tenant)| RunningImage {
                job,
                nodes,
                walltime,
                start,
                pattern,
                tenant,
            },
        )
        .boxed()
}

fn queued_strategy() -> BoxedStrategy<QueuedImage> {
    (
        any::<u64>(),
        1usize..2048,
        walltime_strategy(),
        stamp_strategy(),
        pattern_strategy(),
    )
        .prop_map(|(job, size, walltime, enqueued_at, pattern)| QueuedImage {
            job,
            size,
            walltime,
            enqueued_at,
            pattern,
            tenant: None,
        })
        .prop_flat_map(|image| {
            tenant_strategy().prop_map(move |tenant| QueuedImage {
                tenant,
                ..image.clone()
            })
        })
        .boxed()
}

fn machine_image_strategy() -> BoxedStrategy<MachineImage> {
    (
        (
            name_strategy(),
            name_strategy(),
            opt_name(),
            name_strategy(),
        ),
        any::<u64>(),
        prop_oneof![Just(None), stamp_strategy().prop_map(Some)],
        prop::collection::vec(running_strategy(), 0..4),
        prop::collection::vec(queued_strategy(), 0..4),
        any::<bool>(),
    )
        .prop_map(
            |((machine, mesh, strategy, scheduler), seq, clock, running, queue, fair_share)| {
                MachineImage {
                    machine,
                    mesh,
                    allocator: "Hilbert w/BF".to_string(),
                    strategy,
                    scheduler,
                    seq,
                    clock,
                    running,
                    queue,
                    fair_share,
                }
            },
        )
        .boxed()
}

fn snapshot_strategy() -> BoxedStrategy<SnapshotImage> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec(machine_image_strategy(), 0..3),
        prop::collection::vec(
            (
                name_strategy(),
                prop::collection::vec(name_strategy(), 0..4),
                prop::sample::select(vec![
                    "round-robin",
                    "least-loaded",
                    "shortest-queue",
                    "power-of-two",
                ]),
            )
                .prop_map(|(pool, members, policy)| PoolImage {
                    pool,
                    members,
                    policy: policy.to_string(),
                }),
            0..3,
        ),
        prop::collection::vec(tenant_image_strategy(), 0..3),
    )
        .prop_map(|(epoch, covers, machines, pools, tenants)| SnapshotImage {
            epoch,
            covers,
            machines,
            pools,
            tenants,
        })
        .boxed()
}

fn tenant_image_strategy() -> BoxedStrategy<TenantImage> {
    (
        prop::sample::select(vec!["default", "acme", "t \"x\""]),
        1u64..100,
        prop_oneof![Just(None), (1u64..1_000_000).prop_map(|q| Some(q as f64))],
        prop_oneof![Just(None), (1u64..4096).prop_map(Some)],
        stamp_strategy(),
    )
        .prop_map(
            |(tenant, weight, quota, max_in_flight, consumed)| TenantImage {
                tenant: tenant.to_string(),
                weight: weight as f64,
                quota,
                max_in_flight,
                consumed,
            },
        )
        .boxed()
}

/// Every record variant, adversarially parameterised.
fn record_strategy() -> BoxedStrategy<JournalRecord> {
    prop_oneof![
        (
            name_strategy(),
            name_strategy(),
            opt_name(),
            opt_name(),
            opt_name(),
            opt_name()
        )
            .prop_map(|(machine, mesh, allocator, strategy, scheduler, pool)| {
                JournalRecord::Register {
                    machine,
                    mesh,
                    allocator,
                    strategy,
                    scheduler,
                    pool,
                }
            }),
        (
            name_strategy(),
            any::<u64>(),
            nodes_strategy(),
            walltime_strategy(),
            stamp_strategy(),
            pattern_strategy()
        )
            .prop_flat_map(|(machine, job, nodes, walltime, start, pattern)| {
                tenant_strategy().prop_map(move |tenant| JournalRecord::Grant {
                    machine: machine.clone(),
                    job,
                    nodes: nodes.clone(),
                    walltime,
                    start,
                    pattern,
                    tenant,
                })
            }),
        (
            name_strategy(),
            any::<u64>(),
            1usize..2048,
            walltime_strategy(),
            stamp_strategy(),
            pattern_strategy()
        )
            .prop_flat_map(|(machine, job, size, walltime, enqueued_at, pattern)| {
                tenant_strategy().prop_map(move |tenant| JournalRecord::Queue {
                    machine: machine.clone(),
                    job,
                    size,
                    walltime,
                    enqueued_at,
                    pattern,
                    tenant,
                })
            }),
        (name_strategy(), any::<u64>())
            .prop_map(|(machine, job)| JournalRecord::Release { machine, job }),
        (name_strategy(), any::<u64>())
            .prop_map(|(machine, job)| JournalRecord::Cancel { machine, job }),
        (name_strategy(), name_strategy()).prop_map(|(machine, scheduler)| {
            JournalRecord::SetScheduler { machine, scheduler }
        }),
        (name_strategy(), name_strategy())
            .prop_map(|(pool, policy)| JournalRecord::SetRouter { pool, policy }),
        tenant_image_strategy().prop_map(|image| JournalRecord::SetTenant {
            tenant: image.tenant,
            weight: image.weight,
            quota: image.quota,
            max_in_flight: image.max_in_flight,
        }),
        (name_strategy(), any::<bool>())
            .prop_map(|(machine, enabled)| JournalRecord::SetFairShare { machine, enabled }),
        snapshot_strategy().prop_map(JournalRecord::Snapshot),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn every_journal_record_round_trips_through_ndjson(
        record in record_strategy(),
        seq in any::<u64>(),
    ) {
        let line = record.to_line(seq);
        prop_assert!(!line.contains('\n'), "wire lines must be single lines");
        let (parsed_seq, parsed) = JournalRecord::from_line(&line)
            .map_err(|e| TestCaseError::fail(format!("{e} on {line}")))?;
        prop_assert_eq!(parsed_seq, seq);
        prop_assert_eq!(parsed, record, "line was {}", line);
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("commalloc-journal-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The torn-tail contract end to end: a daemon journals live traffic,
/// dies mid-append (simulated by truncating the final line), and the
/// next incarnation recovers everything up to the torn record without
/// erroring — the torn grant simply never happened.
#[test]
fn recovery_ignores_a_torn_final_line() {
    let dir = temp_dir("torn-tail");
    {
        let (service, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
        assert_eq!(report.epoch, 0);
        service.register("m0", "8x8", None, None, None).unwrap();
        service.allocate("m0", 1, 10, false, None).unwrap();
        service.allocate("m0", 2, 5, false, None).unwrap();
        service.release("m0", 1).unwrap();
    }
    // Tear the last record (job 1's release... no: the drain order makes
    // the release the final line) mid-write, like a crash would.
    let contents = read_journal_dir(&dir).unwrap();
    assert!(!contents.torn_tail);
    let segment = dir.join(format!("wal-{:06}.ndjson", contents.max_segment));
    let text = std::fs::read_to_string(&segment).unwrap();
    let keep_lines: Vec<&str> = text.lines().collect();
    let (last, earlier) = keep_lines.split_last().unwrap();
    let torn = format!("{}\n{}", earlier.join("\n"), &last[..last.len() / 2]);
    std::fs::write(&segment, torn).unwrap();

    let (recovered, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert!(report.torn_tail, "the truncated line must be detected");
    assert_eq!(report.epoch, 1);
    // The torn release never happened: both jobs still hold processors.
    let snap = recovered.query("m0").unwrap();
    assert_eq!(snap.busy, 15, "torn release must not replay");
    assert_eq!(snap.live_jobs, 2);
    recovered.check_invariants("m0").unwrap();
    // A second, clean restart recovers the post-recovery snapshot.
    drop(recovered);
    let (again, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert_eq!(report.epoch, 2);
    assert!(report.snapshot_found);
    assert!(!report.torn_tail);
    assert_eq!(again.query("m0").unwrap().busy, 15);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Corruption before the tail is refused, not guessed around.
#[test]
fn recovery_refuses_corruption_before_the_tail() {
    let dir = temp_dir("corrupt");
    {
        let (service, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
        service.register("m0", "4x4", None, None, None).unwrap();
        service.allocate("m0", 1, 4, false, None).unwrap();
        service.release("m0", 1).unwrap();
    }
    let contents = read_journal_dir(&dir).unwrap();
    let segment = dir.join(format!("wal-{:06}.ndjson", contents.max_segment));
    let text = std::fs::read_to_string(&segment).unwrap();
    std::fs::write(&segment, format!("garbage\n{text}")).unwrap();
    assert!(open_journaled(&dir, JournalConfig::default()).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The journal_stats surface: counters move as records append, and a
/// non-durable service reports `enabled: false`.
#[test]
fn journal_stats_reflect_appends_and_epochs() {
    use serde::Value;
    let dir = temp_dir("stats");
    let (service, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
    service.register("m0", "4x4", None, None, None).unwrap();
    service.allocate("m0", 1, 4, false, None).unwrap();
    let stats = service.journal_stats();
    assert_eq!(stats.get("enabled").and_then(Value::as_bool), Some(true));
    assert_eq!(stats.get("epoch").and_then(Value::as_u64), Some(0));
    assert!(stats.get("appended").and_then(Value::as_u64).unwrap() >= 2);
    // The recovery epoch also travels in the plain stats response.
    let full = service.stats("m0").unwrap();
    let journal = full.get("journal").expect("stats carry a journal section");
    assert_eq!(journal.get("enabled").and_then(Value::as_bool), Some(true));
    assert_eq!(journal.get("epoch").and_then(Value::as_u64), Some(0));

    let plain = commalloc_service::AllocationService::new();
    let stats = plain.journal_stats();
    assert_eq!(stats.get("enabled").and_then(Value::as_bool), Some(false));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A FileJournal attached to a plain service also journals through the
/// explicit `with_journal` path (what `serve --journal` does under the
/// hood when the directory is fresh).
#[test]
fn explicit_sink_attachment_round_trips_state() {
    let dir = temp_dir("attach");
    {
        let sink = FileJournal::create(&dir, JournalConfig::default(), 0, 1, 0).unwrap();
        let service =
            commalloc_service::AllocationService::new().with_journal(std::sync::Arc::new(sink));
        service
            .register_in_pool("m0", "8x8", None, None, Some("easy"), Some("grid"))
            .unwrap();
        service
            .register_in_pool("m1", "4x4", None, None, None, Some("grid"))
            .unwrap();
        service.set_router("grid", "p2c").unwrap();
        service.allocate("m0", 1, 60, false, Some(50.0)).unwrap();
        service.allocate("m0", 2, 10, true, Some(10.0)).unwrap();
        service.handle(&commalloc_service::Request::Alloc {
            machine: "@grid".into(),
            job: 3,
            size: 4,
            wait: true,
            walltime: None,
            pattern: Some(commalloc_workload::CommPattern::AllToAll),
            tenant: None,
        });
    }
    let (recovered, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(report.machines, 2);
    assert_eq!(recovered.list(), vec!["m0".to_string(), "m1".to_string()]);
    assert_eq!(
        recovered.router().members("grid").unwrap(),
        vec!["m0".to_string(), "m1".to_string()]
    );
    assert_eq!(
        recovered.router().policy("grid").unwrap(),
        commalloc_service::RoutingPolicy::PowerOfTwoChoices
    );
    let m0 = recovered.query("m0").unwrap();
    assert_eq!(m0.scheduler, "EASY backfill");
    assert!(m0.busy >= 60);
    for machine in ["m0", "m1"] {
        recovered.check_invariants(machine).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The conservative scheduler kind round-trips through both journal
/// shapes: a `Register` record carrying the client's spec, a
/// `SetScheduler` record carrying the canonical name, and a snapshot
/// image — a `kill -9` (scope drop) plus recovery resurrects machines
/// that keep scheduling conservatively.
#[test]
fn conservative_kind_round_trips_through_register_and_set_scheduler() {
    let dir = temp_dir("conservative");
    {
        let (service, _) = open_journaled(&dir, JournalConfig::default()).unwrap();
        // m0 is conservative from registration; m1 flips at runtime.
        service
            .register("m0", "16x16", None, None, Some("conservative"))
            .unwrap();
        service.register("m1", "8x8", None, None, None).unwrap();
        service.set_scheduler("m1", "conservative").unwrap();
        // Leave running + queued state behind so recovery exercises the
        // conservative drain: job 1 holds 200 until t = 100, job 2 is
        // the reserved head, job 3 would be an unsafe backfill.
        service.set_time("m0", 0.0).unwrap();
        service.allocate("m0", 1, 200, false, Some(100.0)).unwrap();
        service.allocate("m0", 2, 100, true, Some(50.0)).unwrap();
        service.allocate("m0", 3, 250, true, Some(100.0)).unwrap();
    }
    let (recovered, report) = open_journaled(&dir, JournalConfig::default()).unwrap();
    assert_eq!(report.epoch, 1);
    for machine in ["m0", "m1"] {
        assert_eq!(
            recovered.query(machine).unwrap().scheduler,
            "conservative backfill",
            "{machine} must recover the conservative kind"
        );
        recovered.check_invariants(machine).unwrap();
    }
    let m0 = recovered.query("m0").unwrap();
    assert_eq!(m0.busy, 200);
    assert_eq!(m0.queue_len, 2);
    // The recovered queue still drains conservatively: a long job that
    // exactly fits the free processors would delay job 3's recovered
    // reservation, so it queues; a short one backfills.
    use commalloc_service::AllocOutcome;
    assert!(matches!(
        recovered
            .allocate("m0", 4, 56, true, Some(10_000.0))
            .unwrap(),
        AllocOutcome::Queued(_)
    ));
    assert!(matches!(
        recovered.allocate("m0", 5, 30, true, Some(40.0)).unwrap(),
        AllocOutcome::Granted(_)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
