//! Concurrent hammering of a heterogeneous 4-machine pool through the
//! cluster router: interleaved routed allocates, releases and cancels
//! from many threads — with the routing policy switched mid-run — must
//! never double-grant a node on any member, never route a job to a
//! machine too small for it, and leave every member empty and invariant-
//! clean after the drain.
//!
//! Claim discipline mirrors `concurrent_invariants.rs`, extended across
//! machines: claims are per `(machine, node)`; a node is claimed by
//! whoever observes its grant (the routing thread for immediate grants,
//! the releasing thread for queue grants reported in a `release`
//! response), and releases/cancels serialise on a shared ledger held
//! across the service call. Routed allocations stay fully concurrent —
//! exactly where the router's sample-then-commit hazard lives.

use commalloc_service::{AllocOutcome, AllocationService, RoutingPolicy};
use rand::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

const THREADS: u64 = 4;
const OPS_PER_THREAD: usize = 1200;

/// The heterogeneous pool under test: 256 + 128 + 64 + 32 processors.
const MEMBERS: [(&str, &str, usize); 4] = [
    ("m0", "16x16", 256),
    ("m1", "16x8", 128),
    ("m2", "8x8", 64),
    ("m3", "8x4", 32),
];

struct Shared {
    /// machine name -> one claim flag per node.
    claims: HashMap<&'static str, Vec<AtomicBool>>,
    violations: AtomicU64,
    /// job -> (machine, nodes), filled in by whichever thread observed
    /// the grant.
    ledger: Mutex<HashMap<u64, (String, Vec<commalloc_mesh::NodeId>)>>,
}

impl Shared {
    fn claim(&self, machine: &str, nodes: &[commalloc_mesh::NodeId]) {
        let table = &self.claims[machine];
        for n in nodes {
            if table[n.index()].swap(true, Ordering::SeqCst) {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    fn unclaim(&self, machine: &str, nodes: &[commalloc_mesh::NodeId]) {
        let table = &self.claims[machine];
        for n in nodes {
            if !table[n.index()].swap(false, Ordering::SeqCst) {
                self.violations.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    /// Releases (or cancels) `job` on `machine` with the ledger held
    /// across the call, claiming every queue grant the release admitted.
    fn release_atomically(&self, service: &AllocationService, machine: &str, job: u64) {
        let mut ledger = self.ledger.lock().unwrap();
        if let Some((held_machine, nodes)) = ledger.remove(&job) {
            assert_eq!(held_machine, machine, "job {job} moved machines");
            self.unclaim(machine, &nodes);
        }
        let granted = service.release(machine, job).unwrap();
        for (granted_job, granted_nodes) in granted {
            self.claim(machine, &granted_nodes);
            ledger.insert(granted_job, (machine.to_string(), granted_nodes));
        }
    }
}

#[test]
fn concurrent_routed_traffic_with_router_switches_never_violates_invariants() {
    let service = AllocationService::new();
    for (name, mesh, _) in MEMBERS {
        service
            .register_in_pool(name, mesh, None, None, Some("easy"), Some("grid"))
            .unwrap();
    }
    let sizes: HashMap<&str, usize> = MEMBERS.iter().map(|&(n, _, s)| (n, s)).collect();
    let shared = Shared {
        claims: MEMBERS
            .iter()
            .map(|&(name, _, nodes)| (name, (0..nodes).map(|_| AtomicBool::new(false)).collect()))
            .collect(),
        violations: AtomicU64::new(0),
        ledger: Mutex::new(HashMap::new()),
    };

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = service.clone();
            let shared = &shared;
            let sizes = &sizes;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t ^ 0xba5eba11);
                // (machine, job) pairs this thread holds processors for.
                let mut live: Vec<(String, u64)> = Vec::new();
                // (machine, job) pairs this thread queued.
                let mut waiting: Vec<(String, u64)> = Vec::new();
                let mut next = (t + 1) << 40;
                for op in 0..OPS_PER_THREAD {
                    // Mid-run policy switches: every thread keeps flipping
                    // the router while the others route through it.
                    if op % 150 == 17 {
                        let policy = RoutingPolicy::all()[rng.gen_range(0..4usize)];
                        service.set_router("grid", policy.name()).unwrap();
                    }
                    let action = rng.gen_range(0u8..10);
                    if action < 5 || (live.is_empty() && waiting.is_empty()) {
                        // Sizes up to 48 exercise the eligibility filter
                        // (m2 and m3 cannot host the larger ones).
                        let size = rng.gen_range(1..=48);
                        let wait = rng.gen_bool(0.5);
                        let walltime = rng.gen_bool(0.7).then(|| rng.gen_range(1.0..500.0));
                        let job = next;
                        next += 1;
                        let (machine, outcome) = service
                            .route("grid", job, size, wait, walltime, None)
                            .unwrap();
                        assert!(
                            size <= sizes[machine.as_str()],
                            "job of {size} processors routed to {machine} \
                             ({} processors)",
                            sizes[machine.as_str()]
                        );
                        match outcome {
                            AllocOutcome::Granted(nodes) => {
                                let mut ledger = shared.ledger.lock().unwrap();
                                shared.claim(&machine, &nodes);
                                ledger.insert(job, (machine.clone(), nodes));
                                drop(ledger);
                                live.push((machine, job));
                            }
                            AllocOutcome::Queued(position) => {
                                assert!(position >= 1);
                                waiting.push((machine, job));
                            }
                            AllocOutcome::Rejected(_) => {}
                        }
                    } else if action < 8 && !live.is_empty() {
                        let at = rng.gen_range(0..live.len());
                        let (machine, job) = live.swap_remove(at);
                        shared.release_atomically(&service, &machine, job);
                    } else if !waiting.is_empty() {
                        // Cancel a queued job (it may have been granted in
                        // the meantime; the ledger settles either way).
                        let at = rng.gen_range(0..waiting.len());
                        let (machine, job) = waiting.swap_remove(at);
                        shared.release_atomically(&service, &machine, job);
                    }
                }
                for (machine, job) in waiting {
                    shared.release_atomically(&service, &machine, job);
                }
                for (machine, job) in live {
                    shared.release_atomically(&service, &machine, job);
                }
            });
        }
    });

    // Jobs granted during the final drains were never released by their
    // (exited) owners; settle them so every machine ends empty.
    loop {
        let leftovers: Vec<(u64, String)> = shared
            .ledger
            .lock()
            .unwrap()
            .iter()
            .map(|(&job, (machine, _))| (job, machine.clone()))
            .collect();
        if leftovers.is_empty() {
            break;
        }
        for (job, machine) in leftovers {
            shared.release_atomically(&service, &machine, job);
        }
    }

    assert_eq!(
        shared.violations.load(Ordering::SeqCst),
        0,
        "double-granted nodes detected across the pool"
    );
    for (name, _, _) in MEMBERS {
        service.check_invariants(name).unwrap();
        let snap = service.query(name).unwrap();
        assert_eq!(snap.busy, 0, "{name} should end empty");
        assert_eq!(snap.queue_len, 0, "{name} should end with an empty queue");
    }
    let outstanding: usize = shared
        .claims
        .values()
        .map(|table| table.iter().filter(|c| c.load(Ordering::SeqCst)).count())
        .sum();
    assert_eq!(outstanding, 0, "stale client-side claims");
}
