//! Deterministic trace replay through the online service.
//!
//! Drives an [`AllocationService`] machine in *virtual time* with exactly
//! the event loop of the offline engine (`commalloc::engine`) running in
//! its zero-contention fidelity: arrivals enqueue (`alloc` with `wait`),
//! completions release at `start + duration`, and after every event the
//! machine's admission queue drains under its scheduling policy. Because
//! both sides consume the same `SchedulerKind::select_with_context` and
//! the same allocator implementations, the replay's grant log is
//! **byte-identical** to the offline simulator's for the same job list —
//! the equivalence the `sim_equivalence` tests pin for every policy.
//!
//! Determinism notes, mirrored from the engine:
//!
//! * the next completion is chosen with the engine's exact
//!   `min_by(total_cmp)` reduction (last minimum wins on ties);
//! * simultaneous arrival/completion resolves in favour of the arrival
//!   (`a <= c`), as in the engine;
//! * the running set evolves push/`swap_remove`, so EASY's stable
//!   completion sort breaks ties in the same order on both sides.
//!
//! Integer-valued arrivals and durations (the engine's message quotas are
//! integers) keep every event time exact in `f64`, making tie-breaking
//! reproducible rather than rounding-dependent.

use crate::protocol::JobRef;
use crate::registry::AllocOutcome;
use crate::service::AllocationService;
use commalloc_mesh::NodeId;
use commalloc_workload::CommPattern;
use std::collections::HashMap;

/// One job of a replayable trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayJob {
    /// Job identifier (unique within the trace).
    pub id: u64,
    /// Processors requested.
    pub size: usize,
    /// Arrival time, in seconds. The job list must be sorted by arrival
    /// (the engine replays traces in order).
    pub arrival: f64,
    /// Runtime in seconds (the zero-contention duration, which doubles
    /// as the walltime estimate handed to EASY).
    pub duration: f64,
    /// The communication pattern the job declares on arrival, if any —
    /// scored by the allocator's candidate windows and by the comm-aware
    /// routing policy.
    pub pattern: Option<CommPattern>,
}

impl ReplayJob {
    /// An unpatterned trace job.
    pub fn new(id: u64, size: usize, arrival: f64, duration: f64) -> ReplayJob {
        ReplayJob {
            id,
            size,
            arrival,
            duration,
            pattern: None,
        }
    }

    /// The same job declaring `pattern`.
    pub fn with_pattern(self, pattern: CommPattern) -> ReplayJob {
        ReplayJob {
            pattern: Some(pattern),
            ..self
        }
    }
}

/// One grant as the replay observed it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayGrant {
    /// The started job.
    pub job_id: u64,
    /// Virtual time of the grant.
    pub time: f64,
    /// The granted processors, in rank order.
    pub nodes: Vec<NodeId>,
}

/// The outcome of a replay run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayLog {
    /// Every grant, in grant order — the online counterpart of the
    /// engine's grant log.
    pub grants: Vec<ReplayGrant>,
    /// Jobs the machine rejected outright (allocator refusal on an empty
    /// machine; never happens with the curve allocators).
    pub rejected: Vec<u64>,
    /// Virtual time of the last processed event.
    pub end_time: f64,
}

/// The engine's event-selection rule, shared by every replay loop and
/// the offline router: the earlier of the next arrival and the next
/// completion, **arrivals winning exact ties** (`a <= c`). Returns
/// `(event_time, is_arrival)`, or `None` when no event remains. This
/// tie-break is load-bearing for every byte-identical equivalence proof
/// — it lives in exactly one place so the simulators cannot drift.
pub(crate) fn next_event(arrival: Option<f64>, completion: Option<f64>) -> Option<(f64, bool)> {
    match (arrival, completion) {
        (Some(a), Some(c)) => Some(if a <= c { (a, true) } else { (c, false) }),
        (Some(a), None) => Some((a, true)),
        (None, Some(c)) => Some((c, false)),
        (None, None) => None,
    }
}

/// Replays `jobs` against `machine` on `service`, stopping after the last
/// event at or before `until` (or running to completion when `None`).
/// Jobs larger than the machine should be filtered out beforehand, as the
/// engine does with its traces.
///
/// # Panics
///
/// Panics if the machine does not exist, a job id repeats, or the service
/// misbehaves (errors on a well-formed request) — this is a harness for
/// tests and benchmarks, not production traffic.
pub fn replay(
    service: &AllocationService,
    machine: &str,
    jobs: &[ReplayJob],
    until: Option<f64>,
) -> ReplayLog {
    let mut grants: Vec<ReplayGrant> = Vec::new();
    let mut rejected: Vec<u64> = Vec::new();
    // (job_id, predicted completion), evolved push/swap_remove exactly
    // like the engine's running vector.
    let mut running: Vec<(u64, f64)> = Vec::new();
    let durations: HashMap<u64, f64> = jobs.iter().map(|j| (j.id, j.duration)).collect();
    let duration_of = |job_id: u64| {
        *durations
            .get(&job_id)
            .expect("granted job comes from the trace")
    };

    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    loop {
        let arrival_time = jobs.get(next_arrival).map(|j| j.arrival);
        // The engine's exact completion reduction: min_by(total_cmp) over
        // (completion, index); Rust's min_by keeps the *last* minimum.
        let completion = running
            .iter()
            .enumerate()
            .map(|(i, &(_, c))| (c, i))
            .min_by(|a, b| a.0.total_cmp(&b.0));

        let Some((event_time, is_arrival)) = next_event(arrival_time, completion.map(|(c, _)| c))
        else {
            break;
        };
        if let Some(limit) = until {
            if event_time > limit {
                break;
            }
        }

        now = event_time.max(now);
        service
            .set_time(machine, now)
            .expect("replay machine exists");

        if is_arrival {
            let job = jobs[next_arrival];
            next_arrival += 1;
            match service
                .allocate_patterned(
                    machine,
                    job.id,
                    job.size,
                    true,
                    Some(job.duration),
                    job.pattern,
                )
                .expect("well-formed replay request")
            {
                AllocOutcome::Granted(nodes) => {
                    running.push((job.id, now + job.duration));
                    grants.push(ReplayGrant {
                        job_id: job.id,
                        time: now,
                        nodes,
                    });
                }
                AllocOutcome::Queued(_) => {}
                AllocOutcome::Rejected(_) => rejected.push(job.id),
            }
        } else {
            let (_, idx) = completion.expect("completion event requires a running job");
            let (done, _) = running.swap_remove(idx);
            let granted = service
                .release(machine, done)
                .expect("running job releases cleanly");
            for (job_id, nodes) in granted {
                running.push((job_id, now + duration_of(job_id)));
                grants.push(ReplayGrant {
                    job_id,
                    time: now,
                    nodes,
                });
            }
        }
    }

    ReplayLog {
        grants,
        rejected,
        end_time: now,
    }
}

/// The outcome of a cluster replay: the routing decisions plus one grant
/// log per member machine.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReplayLog {
    /// Per trace job, in arrival order: the member machine the router
    /// placed it on (`None` when no member was large enough).
    pub routes: Vec<(u64, Option<String>)>,
    /// Per member machine: every grant on that machine, in grant order —
    /// the logs the cluster sim-equivalence harness compares against
    /// per-machine [`replay`] runs.
    pub grants: HashMap<String, Vec<ReplayGrant>>,
    /// Jobs rejected after routing (allocator refusal on an empty
    /// machine) — distinct from unroutable jobs, which appear as `None`
    /// routes.
    pub rejected: Vec<u64>,
    /// Virtual time of the last processed event.
    pub end_time: f64,
}

/// The next completion event across a cluster's per-machine running
/// vectors: each machine is reduced with the engine's exact
/// `min_by(total_cmp)` rule over its **own** vector (so a machine's
/// simultaneous completions resolve in the same order as a standalone
/// [`replay`] of that machine would), and cross-machine ties go to the
/// machine earliest in iteration order (members are kept sorted by
/// name). Returns `(completion, machine index, local running index)`.
///
/// Keeping the vectors per-machine is what makes the per-machine grant
/// logs byte-identical to standalone replays: a shared vector would let
/// other machines' pushes and `swap_remove`s perturb the tie-breaking
/// indices of this machine's simultaneous completions.
pub(crate) fn next_cluster_completion(running: &[Vec<(u64, f64)>]) -> Option<(f64, usize, usize)> {
    let mut best: Option<(f64, usize, usize)> = None;
    for (machine_at, machine_running) in running.iter().enumerate() {
        let local = machine_running
            .iter()
            .enumerate()
            .map(|(i, &(_, c))| (c, i))
            .min_by(|a, b| a.0.total_cmp(&b.0));
        if let Some((c, i)) = local {
            match &best {
                Some((b, _, _)) if c.total_cmp(b).is_ge() => {}
                _ => best = Some((c, machine_at, i)),
            }
        }
    }
    best
}

/// Replays `jobs` against pool `pool` (no `@` sigil) on `service`,
/// routing every arrival through the pool's [`crate::RoutingPolicy`]
/// with `wait` set — the **online** half of the cluster sim-equivalence
/// proof, and the engine behind the `cluster_routing` benchmark. Runs
/// the event loop of [`replay`] generalised to many machines: arrivals
/// win ties against completions, each machine's completions reduce over
/// its own push/`swap_remove` vector ([`next_cluster_completion`]), and
/// all member clocks advance in lockstep.
///
/// # Panics
///
/// Panics if the pool does not exist, a job id repeats, or the service
/// errors on a well-formed request — a harness, not production traffic.
pub fn replay_cluster(
    service: &AllocationService,
    pool: &str,
    jobs: &[ReplayJob],
    until: Option<f64>,
) -> ClusterReplayLog {
    let members = service.router().members(pool).expect("replay pool exists");
    let member_at: HashMap<&str, usize> = members
        .iter()
        .enumerate()
        .map(|(i, m)| (m.as_str(), i))
        .collect();
    let mut grants: HashMap<String, Vec<ReplayGrant>> =
        members.iter().map(|m| (m.clone(), Vec::new())).collect();
    let mut routes: Vec<(u64, Option<String>)> = Vec::with_capacity(jobs.len());
    let mut rejected: Vec<u64> = Vec::new();
    // One (job_id, predicted completion) vector per member, in member
    // order, each evolved push/swap_remove like the engine's.
    let mut running: Vec<Vec<(u64, f64)>> = vec![Vec::new(); members.len()];
    let durations: HashMap<u64, f64> = jobs.iter().map(|j| (j.id, j.duration)).collect();
    let pool_address = format!("@{pool}");

    let mut next_arrival = 0usize;
    let mut now = 0.0f64;

    loop {
        let arrival_time = jobs.get(next_arrival).map(|j| j.arrival);
        let completion = next_cluster_completion(&running);
        let Some((event_time, is_arrival)) =
            next_event(arrival_time, completion.map(|(c, _, _)| c))
        else {
            break;
        };
        if let Some(limit) = until {
            if event_time > limit {
                break;
            }
        }

        now = event_time.max(now);
        service
            .set_time(&pool_address, now)
            .expect("replay pool exists");

        if is_arrival {
            let job = jobs[next_arrival];
            next_arrival += 1;
            match service.route(
                pool,
                job.id,
                job.size,
                true,
                Some(job.duration),
                job.pattern,
            ) {
                Ok((machine, outcome)) => {
                    routes.push((job.id, Some(machine.clone())));
                    match outcome {
                        AllocOutcome::Granted(nodes) => {
                            running[member_at[machine.as_str()]].push((job.id, now + job.duration));
                            grants
                                .get_mut(&machine)
                                .expect("member log")
                                .push(ReplayGrant {
                                    job_id: job.id,
                                    time: now,
                                    nodes,
                                });
                        }
                        AllocOutcome::Queued(_) => {}
                        AllocOutcome::Rejected(_) => rejected.push(job.id),
                    }
                }
                Err(crate::registry::ServiceError::InvalidRequest(_)) => {
                    routes.push((job.id, None));
                }
                Err(e) => panic!("cluster replay route failed: {e}"),
            }
        } else {
            let (_, machine_at, idx) = completion.expect("completion event requires a running job");
            let machine = members[machine_at].clone();
            let (done, _) = running[machine_at].swap_remove(idx);
            // Release through the pool address: the pool's job index
            // resolves the bare id to its owning member, so every
            // cluster replay also proves the index agrees with the
            // router's bookkeeping.
            let (resolved, granted) = service
                .release_ref(Some(&pool_address), &JobRef::Bare(done))
                .expect("running job releases cleanly");
            assert_eq!(
                resolved, machine,
                "pool job index must resolve to the member the router placed the job on"
            );
            for (job_id, nodes) in granted {
                let duration = durations[&job_id];
                running[machine_at].push((job_id, now + duration));
                grants
                    .get_mut(&machine)
                    .expect("member log")
                    .push(ReplayGrant {
                        job_id,
                        time: now,
                        nodes,
                    });
            }
        }
    }

    ClusterReplayLog {
        routes,
        grants,
        rejected,
        end_time: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_runs_a_tiny_trace_to_empty() {
        let service = AllocationService::new();
        service.register("m", "4x4", None, None, None).unwrap();
        let jobs = [
            ReplayJob::new(0, 16, 0.0, 10.0),
            ReplayJob::new(1, 4, 1.0, 5.0),
        ];
        let log = replay(&service, "m", &jobs, None);
        assert_eq!(log.grants.len(), 2);
        assert_eq!(log.grants[0].job_id, 0);
        assert_eq!(log.grants[0].time, 0.0);
        // Job 1 waits for the full machine to clear at t = 10.
        assert_eq!(log.grants[1].job_id, 1);
        assert_eq!(log.grants[1].time, 10.0);
        assert!(log.rejected.is_empty());
        assert_eq!(log.end_time, 15.0);
        assert_eq!(service.query("m").unwrap().busy, 0);
    }

    #[test]
    fn cluster_replay_routes_round_robin_and_drains() {
        let service = AllocationService::new();
        for name in ["a", "b"] {
            service
                .register_in_pool(name, "4x4", None, None, None, Some("p"))
                .unwrap();
        }
        let jobs = [
            ReplayJob::new(0, 16, 0.0, 10.0),
            ReplayJob::new(1, 16, 1.0, 5.0),
            ReplayJob::new(2, 99, 2.0, 5.0), // larger than every member: unroutable,
        ];
        let log = replay_cluster(&service, "p", &jobs, None);
        assert_eq!(
            log.routes,
            vec![
                (0, Some("a".to_string())),
                (1, Some("b".to_string())),
                (2, None),
            ]
        );
        assert_eq!(log.grants["a"].len(), 1);
        assert_eq!(log.grants["b"].len(), 1);
        assert_eq!(log.grants["b"][0].time, 1.0);
        assert!(log.rejected.is_empty());
        assert_eq!(log.end_time, 10.0);
        for name in ["a", "b"] {
            assert_eq!(service.query(name).unwrap().busy, 0);
        }
    }

    #[test]
    fn until_freezes_the_machine_mid_schedule() {
        let service = AllocationService::new();
        service.register("m", "4x4", None, None, None).unwrap();
        let jobs = [
            ReplayJob::new(0, 16, 0.0, 10.0),
            ReplayJob::new(1, 4, 1.0, 5.0),
        ];
        let log = replay(&service, "m", &jobs, Some(9.5));
        assert_eq!(log.grants.len(), 1);
        let snap = service.query("m").unwrap();
        assert_eq!(snap.busy, 16);
        assert_eq!(snap.queue_len, 1);
    }
}
