//! Operation counters for the daemon and for each registered machine.

use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-machine counters, updated under the machine's shard lock (plain
/// fields — no atomics needed).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MachineMetrics {
    /// Allocation requests granted immediately.
    pub granted: u64,
    /// Allocation requests granted after waiting in the admission queue.
    pub granted_from_queue: u64,
    /// Allocation requests enqueued.
    pub queued: u64,
    /// Allocation requests rejected (no capacity and `wait` not set, or
    /// oversized for the machine).
    pub rejected: u64,
    /// Jobs released.
    pub released: u64,
    /// High-water mark of busy processors.
    pub peak_busy: u64,
}

impl MachineMetrics {
    /// Records a grant, tracking the busy high-water mark.
    pub fn record_grant(&mut self, from_queue: bool, busy_now: usize) {
        if from_queue {
            self.granted_from_queue += 1;
        } else {
            self.granted += 1;
        }
        self.peak_busy = self.peak_busy.max(busy_now as u64);
    }
}

/// Process-wide counters, updated lock-free by server workers.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Connections accepted by the TCP server.
    pub connections: AtomicU64,
    /// Requests parsed and dispatched (any op).
    pub requests: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Lines that failed to parse as a request.
    pub protocol_errors: AtomicU64,
}

impl ServiceMetrics {
    /// Counts one occurrence on `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time JSON snapshot.
    pub fn snapshot(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert(
            "connections".into(),
            self.connections.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "requests".into(),
            self.requests.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "errors".into(),
            self.errors.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "protocol_errors".into(),
            self.protocol_errors.load(Ordering::Relaxed).to_value(),
        );
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_tracking_updates_peaks_and_sources() {
        let mut m = MachineMetrics::default();
        m.record_grant(false, 10);
        m.record_grant(true, 25);
        m.record_grant(false, 7);
        assert_eq!(m.granted, 2);
        assert_eq!(m.granted_from_queue, 1);
        assert_eq!(m.peak_busy, 25);
    }

    #[test]
    fn service_snapshot_reflects_counters() {
        let s = ServiceMetrics::default();
        ServiceMetrics::bump(&s.requests);
        ServiceMetrics::bump(&s.requests);
        ServiceMetrics::bump(&s.errors);
        let snap = s.snapshot();
        assert_eq!(snap.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(snap.get("errors").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("connections").and_then(Value::as_u64), Some(0));
    }
}
