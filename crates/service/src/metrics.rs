//! Operation counters for the daemon and for each registered machine.

use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wait-time statistics of one admission queue: how long requests sat in
/// the queue between enqueue and grant, in machine-clock seconds.
/// Cancelled and rejected requests are not counted — these are *grant*
/// waits, the quantity the scheduling policies compete on.
#[derive(Debug, Clone, Default, Serialize)]
pub struct WaitStats {
    /// Requests granted from the queue.
    pub count: u64,
    /// Sum of their waits, in seconds.
    pub total_seconds: f64,
    /// The longest single wait, in seconds.
    pub max_seconds: f64,
    /// One bounded-slowdown sample per recorded wait (see
    /// [`WaitStats::record`]), reservoir-sampled so a journaled daemon
    /// running for months keeps a bounded footprint: percentiles are
    /// exact until [`SLOWDOWN_RESERVOIR_CAPACITY`] grants, then estimated
    /// from a uniform sample of the whole stream.
    pub slowdowns: SlowdownReservoir,
}

/// The bounded-slowdown runtime floor, in seconds: jobs shorter than
/// this (or with no estimate at all) are treated as `τ`-second jobs so a
/// tiny job's slowdown cannot explode the percentiles (Feitelson's
/// standard fairness metric).
pub const SLOWDOWN_TAU_SECONDS: f64 = 10.0;

/// How many bounded-slowdown samples a machine retains. 4096 keeps the
/// nearest-rank p99 estimator's sampling error under ~0.2 percentile
/// points (binomial σ = √(0.99·0.01/4096)) while capping a
/// months-long daemon's per-machine stats at one page of floats.
pub const SLOWDOWN_RESERVOIR_CAPACITY: usize = 4096;

/// A fixed-capacity uniform sample of an unbounded stream (Vitter's
/// Algorithm R): the first [`SLOWDOWN_RESERVOIR_CAPACITY`] values are
/// kept verbatim; from then on the `n`-th value replaces a random slot
/// with probability `capacity / n`, which leaves every stream element
/// equally likely to be retained. The replacement randomness is a
/// deterministic SplitMix64 sequence — identical streams yield identical
/// reservoirs, so tests and recovered daemons are reproducible.
#[derive(Debug, Clone, Serialize)]
pub struct SlowdownReservoir {
    samples: Vec<f64>,
    /// Stream length so far (how many values `push` ever saw).
    seen: u64,
    /// SplitMix64 state driving the replacement choices.
    state: u64,
}

impl Default for SlowdownReservoir {
    fn default() -> Self {
        SlowdownReservoir {
            samples: Vec::new(),
            seen: 0,
            state: 0x5b3d_8c7a_91e4_f026,
        }
    }
}

impl SlowdownReservoir {
    /// Offers one stream value to the reservoir.
    pub fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < SLOWDOWN_RESERVOIR_CAPACITY {
            self.samples.push(value);
            return;
        }
        // SplitMix64 step (public-domain constants), then a slot draw
        // uniform over the stream so far: the value survives iff its
        // draw lands inside the reservoir.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let slot = (z ^ (z >> 31)) % self.seen;
        if (slot as usize) < self.samples.len() {
            self.samples[slot as usize] = value;
        }
    }

    /// The retained samples, in reservoir order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// How many values the stream offered in total.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained samples (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the stream was empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// An ascending-sorted copy of the retained samples.
    fn sorted(&self) -> Vec<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted
    }
}

impl WaitStats {
    /// Records one queue-to-grant wait. `walltime` is the job's runtime
    /// estimate, which anchors the bounded slowdown
    /// `(wait + max(walltime, τ)) / max(walltime, τ)`; a missing
    /// estimate uses `τ` alone (pure wait-relative slowdown).
    pub fn record(&mut self, seconds: f64, walltime: Option<f64>) {
        let seconds = seconds.max(0.0);
        self.count += 1;
        self.total_seconds += seconds;
        self.max_seconds = self.max_seconds.max(seconds);
        let runtime = walltime
            .filter(|w| w.is_finite())
            .unwrap_or(SLOWDOWN_TAU_SECONDS)
            .max(SLOWDOWN_TAU_SECONDS);
        self.slowdowns.push((seconds + runtime) / runtime);
    }

    /// Mean wait in seconds (0 when nothing was ever queued).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`, nearest-rank) of the bounded
    /// slowdowns; 1.0 — the no-wait slowdown — when nothing was queued.
    /// Exact until the reservoir fills, a uniform-sample estimate after.
    pub fn slowdown_percentile(&self, q: f64) -> f64 {
        percentile_of_sorted(&self.slowdowns.sorted(), q)
    }

    /// The summary surfaced in the `stats` response: count/mean/max wait
    /// plus the p50/p90/p99 bounded-slowdown percentiles the fairness
    /// comparisons read. One sorted copy serves all three percentiles;
    /// `slowdown_samples` reports the reservoir occupancy so dashboards
    /// can tell exact percentiles from sampled ones.
    pub fn to_summary_value(&self) -> Value {
        let sorted = self.slowdowns.sorted();
        let mut m = serde::Map::new();
        m.insert("count".into(), self.count.to_value());
        m.insert("mean_seconds".into(), self.mean_seconds().to_value());
        m.insert("max_seconds".into(), self.max_seconds.to_value());
        m.insert("slowdown_samples".into(), self.slowdowns.len().to_value());
        m.insert(
            "slowdown_p50".into(),
            percentile_of_sorted(&sorted, 0.50).to_value(),
        );
        m.insert(
            "slowdown_p90".into(),
            percentile_of_sorted(&sorted, 0.90).to_value(),
        );
        m.insert(
            "slowdown_p99".into(),
            percentile_of_sorted(&sorted, 0.99).to_value(),
        );
        Value::Object(m)
    }
}

/// Nearest-rank `q`-quantile of an ascending-sorted sample; 1.0 (the
/// no-wait slowdown) on an empty sample.
fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-machine counters, updated under the machine's shard lock (plain
/// fields — no atomics needed).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MachineMetrics {
    /// Allocation requests granted immediately.
    pub granted: u64,
    /// Allocation requests granted after waiting in the admission queue.
    pub granted_from_queue: u64,
    /// Allocation requests enqueued.
    pub queued: u64,
    /// Allocation requests rejected (no capacity and `wait` not set, or
    /// oversized for the machine).
    pub rejected: u64,
    /// Jobs released.
    pub released: u64,
    /// High-water mark of busy processors.
    pub peak_busy: u64,
    /// Queue-to-grant wait times of this machine's admission queue.
    pub wait: WaitStats,
}

impl MachineMetrics {
    /// Records a grant, tracking the busy high-water mark.
    pub fn record_grant(&mut self, from_queue: bool, busy_now: usize) {
        if from_queue {
            self.granted_from_queue += 1;
        } else {
            self.granted += 1;
        }
        self.peak_busy = self.peak_busy.max(busy_now as u64);
    }
}

/// Process-wide counters, updated lock-free by server workers.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Connections accepted by the TCP server.
    pub connections: AtomicU64,
    /// Requests parsed and dispatched (any op).
    pub requests: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Lines that failed to parse as a request.
    pub protocol_errors: AtomicU64,
}

impl ServiceMetrics {
    /// Counts one occurrence on `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time JSON snapshot.
    pub fn snapshot(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert(
            "connections".into(),
            self.connections.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "requests".into(),
            self.requests.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "errors".into(),
            self.errors.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "protocol_errors".into(),
            self.protocol_errors.load(Ordering::Relaxed).to_value(),
        );
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_tracking_updates_peaks_and_sources() {
        let mut m = MachineMetrics::default();
        m.record_grant(false, 10);
        m.record_grant(true, 25);
        m.record_grant(false, 7);
        assert_eq!(m.granted, 2);
        assert_eq!(m.granted_from_queue, 1);
        assert_eq!(m.peak_busy, 25);
    }

    #[test]
    fn wait_stats_track_count_mean_and_max() {
        let mut w = WaitStats::default();
        assert_eq!(w.mean_seconds(), 0.0);
        w.record(2.0, None);
        w.record(6.0, None);
        w.record(1.0, None);
        // Clock skew can only produce non-negative waits.
        w.record(-3.0, None);
        assert_eq!(w.count, 4);
        assert!((w.mean_seconds() - 9.0 / 4.0).abs() < 1e-12);
        assert_eq!(w.max_seconds, 6.0);
        let summary = w.to_summary_value();
        assert_eq!(summary.get("count").and_then(Value::as_u64), Some(4));
        assert_eq!(
            summary.get("max_seconds").and_then(Value::as_f64),
            Some(6.0)
        );
        assert!(
            (summary.get("mean_seconds").and_then(Value::as_f64).unwrap() - 2.25).abs() < 1e-12
        );
        assert!(summary.get("slowdown_p50").is_some());
        // And the embedded form serialises with the machine counters.
        let m = MachineMetrics {
            wait: w,
            ..MachineMetrics::default()
        };
        let v = m.to_value();
        assert_eq!(
            v.get("wait")
                .and_then(|w| w.get("count"))
                .and_then(Value::as_u64),
            Some(4)
        );
    }

    #[test]
    fn bounded_slowdown_percentiles_are_nearest_rank() {
        let mut w = WaitStats::default();
        assert_eq!(w.slowdown_percentile(0.5), 1.0, "empty = no-wait slowdown");
        // Ten waits of 10, 20, ..., 100 s on a 10-s estimate: bounded
        // slowdowns 2, 3, ..., 11.
        for i in 1..=10 {
            w.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(w.slowdown_percentile(0.50), 6.0);
        assert_eq!(w.slowdown_percentile(0.90), 10.0);
        assert_eq!(w.slowdown_percentile(0.99), 11.0);
        assert_eq!(w.slowdown_percentile(1.00), 11.0);
        let summary = w.to_summary_value();
        assert_eq!(
            summary.get("slowdown_p90").and_then(Value::as_f64),
            Some(10.0)
        );
        // The τ floor: a 1-second estimate is anchored at τ = 10 s, so a
        // 90-second wait reads as slowdown 10, not 91.
        let mut short = WaitStats::default();
        short.record(90.0, Some(1.0));
        assert_eq!(short.slowdown_percentile(0.5), 10.0);
    }

    #[test]
    fn reservoir_stays_bounded_and_pins_percentile_accuracy() {
        // 100k waits of 10·i seconds on 10-second estimates: bounded
        // slowdowns 2, 3, ..., 100_001 — a known uniform ladder whose
        // true q-quantile is q·100_000 + 1.
        let n = 100_000u64;
        let mut w = WaitStats::default();
        for i in 1..=n {
            w.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(w.count, n);
        assert_eq!(
            w.slowdowns.len(),
            SLOWDOWN_RESERVOIR_CAPACITY,
            "reservoir must cap memory regardless of stream length"
        );
        assert_eq!(w.slowdowns.seen(), n);
        // Sampling error of the nearest-rank estimator on a 4096-sample
        // uniform reservoir: σ(q) = √(q(1−q)/4096) percentile points —
        // 0.8 pp at p50, 0.16 pp at p99. 5σ bounds keep the test
        // deterministic-tight without assuming anything about the
        // SplitMix64 stream beyond uniformity.
        for (q, sigma_bound) in [(0.50, 0.04), (0.90, 0.024), (0.99, 0.008)] {
            let truth = q * n as f64 + 1.0;
            let got = w.slowdown_percentile(q);
            let err = (got - truth).abs() / n as f64;
            assert!(
                err < sigma_bound,
                "p{} estimate {got} strays {err:.4} (bound {sigma_bound}) from {truth}",
                (q * 100.0) as u32
            );
        }
        // Determinism: the same stream rebuilds the same reservoir.
        let mut again = WaitStats::default();
        for i in 1..=n {
            again.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(again.slowdowns.samples(), w.slowdowns.samples());
    }

    #[test]
    fn service_snapshot_reflects_counters() {
        let s = ServiceMetrics::default();
        ServiceMetrics::bump(&s.requests);
        ServiceMetrics::bump(&s.requests);
        ServiceMetrics::bump(&s.errors);
        let snap = s.snapshot();
        assert_eq!(snap.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(snap.get("errors").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("connections").and_then(Value::as_u64), Some(0));
    }
}
