//! Operation counters for the daemon and for each registered machine.

use serde::{Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of bucket slots in a [`LogLinearHistogram`]. 512 covers the
/// full 64-bit tick range (the highest reachable index is 495) with a
/// fixed footprint of one 4 KiB page per histogram.
pub const LOG_LINEAR_SLOTS: usize = 512;

/// A fixed-footprint log-linear histogram in the HdrHistogram family:
/// values are converted to integer *ticks* (`value × scale`, truncated)
/// and bucketed with 8 linear sub-buckets per power-of-two octave
/// (precision `K = 3`), giving a worst-case relative bucket width of
/// 12.5% across the whole range. Ticks below 16 get exact unit-width
/// buckets, so small counts are never smeared.
///
/// Bucketing is pure integer arithmetic on the tick value — no floats,
/// no platform-dependent rounding — which makes bucket boundaries
/// deterministic across runs and machines (pinned by a test). Recording
/// touches one array slot plus four scalars: cheap enough to live under
/// a shard lock on the grant path.
#[derive(Debug, Clone, PartialEq)]
pub struct LogLinearHistogram {
    /// One count per bucket; index per [`LogLinearHistogram::bucket_index`].
    counts: Vec<u64>,
    /// Total recorded values.
    count: u64,
    /// Sum of raw (unscaled) values, for exact means.
    sum: f64,
    /// Smallest raw value recorded (0 until the first record).
    min: f64,
    /// Largest raw value recorded (0 until the first record).
    max: f64,
    /// Ticks per unit: recorded values are multiplied by this before
    /// bucketing. 1000 (the default) buckets seconds at millisecond
    /// resolution; 1 buckets already-integral microsecond latencies.
    scale: f64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::with_scale(1000.0)
    }
}

impl LogLinearHistogram {
    /// An empty histogram bucketing at `scale` ticks per unit.
    pub fn with_scale(scale: f64) -> Self {
        LogLinearHistogram {
            counts: vec![0; LOG_LINEAR_SLOTS],
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            scale,
        }
    }

    /// The bucket index of a tick value: ticks below 16 index
    /// themselves (exact unit buckets); above, the top three bits below
    /// the most significant bit pick one of 8 linear sub-buckets within
    /// the value's octave. Monotone in `ticks`, and every boundary is a
    /// small integer times a power of two.
    pub fn bucket_index(ticks: u64) -> usize {
        if ticks < 16 {
            return ticks as usize;
        }
        let msb = 63 - ticks.leading_zeros() as usize; // >= 4 here
        let idx = ((msb - 3) << 3) + 8 + ((ticks >> (msb - 3)) & 7) as usize;
        idx.min(LOG_LINEAR_SLOTS - 1)
    }

    /// The smallest tick value mapping to bucket `index` (the inverse of
    /// [`LogLinearHistogram::bucket_index`] on boundaries).
    pub fn bucket_lower(index: usize) -> u64 {
        if index < 16 {
            index as u64
        } else {
            (8 + (index as u64 & 7)) << ((index >> 3) - 1)
        }
    }

    /// One past the largest tick value mapping to bucket `index`
    /// (`u64::MAX` for the unbounded top bucket).
    pub fn bucket_upper(index: usize) -> u64 {
        if index + 1 >= LOG_LINEAR_SLOTS {
            return u64::MAX;
        }
        let next = index + 1;
        if next < 16 {
            next as u64
        } else {
            // Computed in u128: the top slots' bounds exceed u64 and must
            // saturate, not wrap (`checked_shl` only guards the shift
            // amount, not the shifted-out bits).
            let shifted = (8 + (next as u128 & 7)) << ((next >> 3) - 1);
            if shifted > u64::MAX as u128 {
                u64::MAX
            } else {
                shifted as u64
            }
        }
    }

    /// Records one value (negative, NaN and infinite inputs clamp to 0 —
    /// a latency can only be missing, never negative).
    pub fn record(&mut self, value: f64) {
        let value = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        let ticks = (value * self.scale) as u64;
        self.counts[Self::bucket_index(ticks)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of the raw values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest raw value recorded (0 when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest raw value recorded (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Mean of the raw values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The ticks-per-unit scale this histogram buckets at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Folds `other`'s counts into `self`. Both histograms must share a
    /// scale — merging across scales would mix incompatible tick spaces.
    pub fn merge(&mut self, other: &LogLinearHistogram) {
        debug_assert_eq!(
            self.scale.to_bits(),
            other.scale.to_bits(),
            "merging histograms with different scales"
        );
        if other.count == 0 {
            return;
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Nearest-rank `q`-quantile estimate in raw units: the midpoint of
    /// the bucket holding the rank, clamped into the observed
    /// `[min, max]` so exact extremes are never overshot. 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = Self::bucket_lower(i) as f64;
                let hi = Self::bucket_upper(i);
                let mid = if hi == u64::MAX {
                    lo
                } else {
                    (lo + hi as f64) / 2.0
                };
                return (mid / self.scale).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(lower_tick, upper_tick, count)`, in
    /// ascending order — the sparse view serialization and the
    /// Prometheus exposition are built from.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lower(i), Self::bucket_upper(i), c))
    }

    /// Appends a Prometheus-style text exposition of this histogram to
    /// `out`: cumulative `_bucket{le="…"}` lines at each occupied bucket's
    /// upper bound (in raw units), closed by `le="+Inf"`, plus `_sum` and
    /// `_count`. `labels` is the extra label list (may be empty), without
    /// braces, e.g. `machine="default",stage="parse"`.
    pub fn prometheus_into(&self, name: &str, labels: &str, out: &mut String) {
        use std::fmt::Write;
        let sep = if labels.is_empty() { "" } else { "," };
        let plain = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        let mut cumulative = 0u64;
        for (_, hi, count) in self.nonzero_buckets() {
            cumulative += count;
            if hi == u64::MAX {
                continue; // folded into +Inf below
            }
            let le = hi as f64 / self.scale;
            let _ = writeln!(
                out,
                "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
            self.count
        );
        let _ = writeln!(out, "{name}_sum{plain} {}", self.sum);
        let _ = writeln!(out, "{name}_count{plain} {}", self.count);
    }
}

impl Serialize for LogLinearHistogram {
    /// Sparse JSON view: summary scalars plus `[lower, upper, count]`
    /// triples (bucket bounds in raw units) for occupied buckets only —
    /// an empty histogram costs a handful of bytes, not 512 zeros.
    fn to_value(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert("count".into(), self.count.to_value());
        m.insert("sum".into(), self.sum.to_value());
        m.insert("min".into(), self.min.to_value());
        m.insert("max".into(), self.max.to_value());
        m.insert("scale".into(), self.scale.to_value());
        let buckets: Vec<Value> = self
            .nonzero_buckets()
            .map(|(lo, hi, count)| {
                Value::Array(vec![
                    (lo as f64 / self.scale).to_value(),
                    if hi == u64::MAX {
                        Value::Null
                    } else {
                        (hi as f64 / self.scale).to_value()
                    },
                    count.to_value(),
                ])
            })
            .collect();
        m.insert("buckets".into(), Value::Array(buckets));
        Value::Object(m)
    }
}

/// Number of one-second slots in a [`WindowRing`]: one minute of
/// history, mergeable into any trailing view up to 60 s.
pub const WINDOW_SLOTS: usize = 60;

/// A ring of per-second [`LogLinearHistogram`] windows: the "now" view
/// the since-boot histograms cannot give. Each slot aggregates one
/// epoch second and is lazily reset when its second comes around again,
/// so recording stays O(1) with no background sweeper; reads merge the
/// trailing `span` seconds into one histogram. Stamps are plain epoch
/// seconds supplied by the caller — under a virtual clock (the replay
/// harness) the output is fully deterministic.
#[derive(Debug, Clone)]
pub struct WindowRing {
    /// `(second, histogram)` per slot; the stamp disambiguates the
    /// minute the slot belongs to (`u64::MAX` = never written).
    slots: Vec<(u64, LogLinearHistogram)>,
    scale: f64,
}

impl Default for WindowRing {
    fn default() -> Self {
        WindowRing::with_scale(1000.0)
    }
}

impl WindowRing {
    /// An empty ring whose histograms bucket at `scale` ticks per unit.
    pub fn with_scale(scale: f64) -> Self {
        WindowRing {
            slots: (0..WINDOW_SLOTS)
                .map(|_| (u64::MAX, LogLinearHistogram::with_scale(scale)))
                .collect(),
            scale,
        }
    }

    /// Records `value` into the slot for epoch second `now_sec`,
    /// resetting a slot left over from an earlier minute first.
    pub fn record(&mut self, now_sec: u64, value: f64) {
        let slot = &mut self.slots[(now_sec as usize) % WINDOW_SLOTS];
        if slot.0 != now_sec {
            slot.1 = LogLinearHistogram::with_scale(self.scale);
            slot.0 = now_sec;
        }
        slot.1.record(value);
    }

    /// The trailing `span_secs` seconds ending at `now_sec` (inclusive),
    /// merged into one histogram. Spans are clamped to the ring's one
    /// minute of history; slots from other minutes are skipped.
    pub fn merged(&self, now_sec: u64, span_secs: u64) -> LogLinearHistogram {
        let mut out = LogLinearHistogram::with_scale(self.scale);
        let span = span_secs.min(WINDOW_SLOTS as u64).max(1);
        for back in 0..span {
            let Some(sec) = now_sec.checked_sub(back) else {
                break;
            };
            let slot = &self.slots[(sec as usize) % WINDOW_SLOTS];
            if slot.0 == sec {
                out.merge(&slot.1);
            }
        }
        out
    }
}

/// Wait-time statistics of one admission queue: how long requests sat in
/// the queue between enqueue and grant, in machine-clock seconds.
/// Cancelled and rejected requests are not counted — these are *grant*
/// waits, the quantity the scheduling policies compete on.
#[derive(Debug, Clone, Default, Serialize)]
pub struct WaitStats {
    /// Requests granted from the queue.
    pub count: u64,
    /// Sum of their waits, in seconds.
    pub total_seconds: f64,
    /// The longest single wait, in seconds.
    pub max_seconds: f64,
    /// One bounded-slowdown sample per recorded wait (see
    /// [`WaitStats::record`]), reservoir-sampled so a journaled daemon
    /// running for months keeps a bounded footprint: percentiles are
    /// exact until [`SLOWDOWN_RESERVOIR_CAPACITY`] grants, then estimated
    /// from a uniform sample of the whole stream.
    pub slowdowns: SlowdownReservoir,
    /// Full wait distribution (seconds at millisecond resolution): the
    /// shape the reservoir percentiles summarize, lossless up to bucket
    /// width and mergeable across machines.
    pub wait_histogram: LogLinearHistogram,
    /// Full bounded-slowdown distribution, same bucketing.
    pub slowdown_histogram: LogLinearHistogram,
}

/// The bounded-slowdown runtime floor, in seconds: jobs shorter than
/// this (or with no estimate at all) are treated as `τ`-second jobs so a
/// tiny job's slowdown cannot explode the percentiles (Feitelson's
/// standard fairness metric).
pub const SLOWDOWN_TAU_SECONDS: f64 = 10.0;

/// How many bounded-slowdown samples a machine retains. 4096 keeps the
/// nearest-rank p99 estimator's sampling error under ~0.2 percentile
/// points (binomial σ = √(0.99·0.01/4096)) while capping a
/// months-long daemon's per-machine stats at one page of floats.
pub const SLOWDOWN_RESERVOIR_CAPACITY: usize = 4096;

/// A fixed-capacity uniform sample of an unbounded stream (Vitter's
/// Algorithm R): the first [`SLOWDOWN_RESERVOIR_CAPACITY`] values are
/// kept verbatim; from then on the `n`-th value replaces a random slot
/// with probability `capacity / n`, which leaves every stream element
/// equally likely to be retained. The replacement randomness is a
/// deterministic SplitMix64 sequence — identical streams yield identical
/// reservoirs, so tests and recovered daemons are reproducible.
#[derive(Debug, Clone, Serialize)]
pub struct SlowdownReservoir {
    samples: Vec<f64>,
    /// Stream length so far (how many values `push` ever saw).
    seen: u64,
    /// SplitMix64 state driving the replacement choices.
    state: u64,
}

impl Default for SlowdownReservoir {
    fn default() -> Self {
        SlowdownReservoir {
            samples: Vec::new(),
            seen: 0,
            state: 0x5b3d_8c7a_91e4_f026,
        }
    }
}

impl SlowdownReservoir {
    /// Offers one stream value to the reservoir.
    pub fn push(&mut self, value: f64) {
        self.seen += 1;
        if self.samples.len() < SLOWDOWN_RESERVOIR_CAPACITY {
            self.samples.push(value);
            return;
        }
        // SplitMix64 step (public-domain constants), then a slot draw
        // uniform over the stream so far: the value survives iff its
        // draw lands inside the reservoir.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let slot = (z ^ (z >> 31)) % self.seen;
        if (slot as usize) < self.samples.len() {
            self.samples[slot as usize] = value;
        }
    }

    /// The retained samples, in reservoir order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// How many values the stream offered in total.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of retained samples (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the stream was empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// An ascending-sorted copy of the retained samples.
    fn sorted(&self) -> Vec<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(f64::total_cmp);
        sorted
    }
}

impl WaitStats {
    /// Records one queue-to-grant wait. `walltime` is the job's runtime
    /// estimate, which anchors the bounded slowdown
    /// `(wait + max(walltime, τ)) / max(walltime, τ)`; a missing
    /// estimate uses `τ` alone (pure wait-relative slowdown).
    pub fn record(&mut self, seconds: f64, walltime: Option<f64>) {
        let seconds = seconds.max(0.0);
        self.count += 1;
        self.total_seconds += seconds;
        self.max_seconds = self.max_seconds.max(seconds);
        let runtime = walltime
            .filter(|w| w.is_finite())
            .unwrap_or(SLOWDOWN_TAU_SECONDS)
            .max(SLOWDOWN_TAU_SECONDS);
        let slowdown = (seconds + runtime) / runtime;
        self.slowdowns.push(slowdown);
        self.wait_histogram.record(seconds);
        self.slowdown_histogram.record(slowdown);
    }

    /// Mean wait in seconds (0 when nothing was ever queued).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_seconds / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`, nearest-rank) of the bounded
    /// slowdowns; 1.0 — the no-wait slowdown — when nothing was queued.
    /// Exact until the reservoir fills, a uniform-sample estimate after.
    pub fn slowdown_percentile(&self, q: f64) -> f64 {
        percentile_of_sorted(&self.slowdowns.sorted(), q)
    }

    /// The summary surfaced in the `stats` response: count/mean/max wait
    /// plus the p50/p90/p99 bounded-slowdown percentiles the fairness
    /// comparisons read. One sorted copy serves all three percentiles;
    /// `slowdown_samples` reports the reservoir occupancy so dashboards
    /// can tell exact percentiles from sampled ones.
    pub fn to_summary_value(&self) -> Value {
        let sorted = self.slowdowns.sorted();
        let mut m = serde::Map::new();
        m.insert("count".into(), self.count.to_value());
        m.insert("mean_seconds".into(), self.mean_seconds().to_value());
        m.insert("max_seconds".into(), self.max_seconds.to_value());
        m.insert("slowdown_samples".into(), self.slowdowns.len().to_value());
        m.insert(
            "slowdown_p50".into(),
            percentile_of_sorted(&sorted, 0.50).to_value(),
        );
        m.insert(
            "slowdown_p90".into(),
            percentile_of_sorted(&sorted, 0.90).to_value(),
        );
        m.insert(
            "slowdown_p99".into(),
            percentile_of_sorted(&sorted, 0.99).to_value(),
        );
        m.insert("wait_histogram".into(), self.wait_histogram.to_value());
        m.insert(
            "slowdown_histogram".into(),
            self.slowdown_histogram.to_value(),
        );
        Value::Object(m)
    }
}

/// Nearest-rank `q`-quantile of an ascending-sorted sample; 1.0 (the
/// no-wait slowdown) on an empty sample.
fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 1.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Per-machine counters, updated under the machine's shard lock (plain
/// fields — no atomics needed).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MachineMetrics {
    /// Allocation requests granted immediately.
    pub granted: u64,
    /// Allocation requests granted after waiting in the admission queue.
    pub granted_from_queue: u64,
    /// Allocation requests enqueued.
    pub queued: u64,
    /// Allocation requests rejected (no capacity and `wait` not set, or
    /// oversized for the machine).
    pub rejected: u64,
    /// Jobs released.
    pub released: u64,
    /// High-water mark of busy processors.
    pub peak_busy: u64,
    /// Queue-to-grant wait times of this machine's admission queue.
    pub wait: WaitStats,
}

impl MachineMetrics {
    /// Records a grant, tracking the busy high-water mark.
    pub fn record_grant(&mut self, from_queue: bool, busy_now: usize) {
        if from_queue {
            self.granted_from_queue += 1;
        } else {
            self.granted += 1;
        }
        self.peak_busy = self.peak_busy.max(busy_now as u64);
    }
}

/// Process-wide counters, updated lock-free by server workers.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Connections accepted by the TCP server.
    pub connections: AtomicU64,
    /// Requests parsed and dispatched (any op).
    pub requests: AtomicU64,
    /// Requests answered with an error.
    pub errors: AtomicU64,
    /// Lines that failed to parse as a request.
    pub protocol_errors: AtomicU64,
    /// Pool routes where the comm-aware policy had no scored member and
    /// fell back to shortest-queue (the decision-telemetry counter; zero
    /// under every other policy).
    pub route_comm_fallbacks: AtomicU64,
}

impl ServiceMetrics {
    /// Counts one occurrence on `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time JSON snapshot.
    pub fn snapshot(&self) -> Value {
        let mut m = serde::Map::new();
        m.insert(
            "connections".into(),
            self.connections.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "requests".into(),
            self.requests.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "errors".into(),
            self.errors.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "protocol_errors".into(),
            self.protocol_errors.load(Ordering::Relaxed).to_value(),
        );
        m.insert(
            "route_comm_fallbacks".into(),
            self.route_comm_fallbacks.load(Ordering::Relaxed).to_value(),
        );
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_tracking_updates_peaks_and_sources() {
        let mut m = MachineMetrics::default();
        m.record_grant(false, 10);
        m.record_grant(true, 25);
        m.record_grant(false, 7);
        assert_eq!(m.granted, 2);
        assert_eq!(m.granted_from_queue, 1);
        assert_eq!(m.peak_busy, 25);
    }

    #[test]
    fn wait_stats_track_count_mean_and_max() {
        let mut w = WaitStats::default();
        assert_eq!(w.mean_seconds(), 0.0);
        w.record(2.0, None);
        w.record(6.0, None);
        w.record(1.0, None);
        // Clock skew can only produce non-negative waits.
        w.record(-3.0, None);
        assert_eq!(w.count, 4);
        assert!((w.mean_seconds() - 9.0 / 4.0).abs() < 1e-12);
        assert_eq!(w.max_seconds, 6.0);
        let summary = w.to_summary_value();
        assert_eq!(summary.get("count").and_then(Value::as_u64), Some(4));
        assert_eq!(
            summary.get("max_seconds").and_then(Value::as_f64),
            Some(6.0)
        );
        assert!(
            (summary.get("mean_seconds").and_then(Value::as_f64).unwrap() - 2.25).abs() < 1e-12
        );
        assert!(summary.get("slowdown_p50").is_some());
        // And the embedded form serialises with the machine counters.
        let m = MachineMetrics {
            wait: w,
            ..MachineMetrics::default()
        };
        let v = m.to_value();
        assert_eq!(
            v.get("wait")
                .and_then(|w| w.get("count"))
                .and_then(Value::as_u64),
            Some(4)
        );
    }

    #[test]
    fn bounded_slowdown_percentiles_are_nearest_rank() {
        let mut w = WaitStats::default();
        assert_eq!(w.slowdown_percentile(0.5), 1.0, "empty = no-wait slowdown");
        // Ten waits of 10, 20, ..., 100 s on a 10-s estimate: bounded
        // slowdowns 2, 3, ..., 11.
        for i in 1..=10 {
            w.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(w.slowdown_percentile(0.50), 6.0);
        assert_eq!(w.slowdown_percentile(0.90), 10.0);
        assert_eq!(w.slowdown_percentile(0.99), 11.0);
        assert_eq!(w.slowdown_percentile(1.00), 11.0);
        let summary = w.to_summary_value();
        assert_eq!(
            summary.get("slowdown_p90").and_then(Value::as_f64),
            Some(10.0)
        );
        // The τ floor: a 1-second estimate is anchored at τ = 10 s, so a
        // 90-second wait reads as slowdown 10, not 91.
        let mut short = WaitStats::default();
        short.record(90.0, Some(1.0));
        assert_eq!(short.slowdown_percentile(0.5), 10.0);
    }

    #[test]
    fn reservoir_stays_bounded_and_pins_percentile_accuracy() {
        // 100k waits of 10·i seconds on 10-second estimates: bounded
        // slowdowns 2, 3, ..., 100_001 — a known uniform ladder whose
        // true q-quantile is q·100_000 + 1.
        let n = 100_000u64;
        let mut w = WaitStats::default();
        for i in 1..=n {
            w.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(w.count, n);
        assert_eq!(
            w.slowdowns.len(),
            SLOWDOWN_RESERVOIR_CAPACITY,
            "reservoir must cap memory regardless of stream length"
        );
        assert_eq!(w.slowdowns.seen(), n);
        // Sampling error of the nearest-rank estimator on a 4096-sample
        // uniform reservoir: σ(q) = √(q(1−q)/4096) percentile points —
        // 0.8 pp at p50, 0.16 pp at p99. 5σ bounds keep the test
        // deterministic-tight without assuming anything about the
        // SplitMix64 stream beyond uniformity.
        for (q, sigma_bound) in [(0.50, 0.04), (0.90, 0.024), (0.99, 0.008)] {
            let truth = q * n as f64 + 1.0;
            let got = w.slowdown_percentile(q);
            let err = (got - truth).abs() / n as f64;
            assert!(
                err < sigma_bound,
                "p{} estimate {got} strays {err:.4} (bound {sigma_bound}) from {truth}",
                (q * 100.0) as u32
            );
        }
        // Determinism: the same stream rebuilds the same reservoir.
        let mut again = WaitStats::default();
        for i in 1..=n {
            again.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(again.slowdowns.samples(), w.slowdowns.samples());
    }

    #[test]
    fn log_linear_bucket_boundaries_are_deterministic() {
        // Exact unit buckets below 16 ticks.
        for t in 0..16u64 {
            assert_eq!(LogLinearHistogram::bucket_index(t), t as usize);
            assert_eq!(LogLinearHistogram::bucket_lower(t as usize), t);
        }
        // First log-linear octave: [16,18) share bucket 16, width 2.
        assert_eq!(LogLinearHistogram::bucket_index(16), 16);
        assert_eq!(LogLinearHistogram::bucket_index(17), 16);
        assert_eq!(LogLinearHistogram::bucket_index(18), 17);
        assert_eq!(LogLinearHistogram::bucket_lower(16), 16);
        assert_eq!(LogLinearHistogram::bucket_upper(16), 18);
        // Every bucket is self-consistent: its lower bound maps back to
        // it, its upper bound to the next (monotonicity across the full
        // index range), and the slot budget is never exceeded.
        for i in 0..LOG_LINEAR_SLOTS {
            let lo = LogLinearHistogram::bucket_lower(i);
            let hi = LogLinearHistogram::bucket_upper(i);
            if LogLinearHistogram::bucket_index(lo) != i {
                // Indices past the top of the 64-bit range saturate.
                assert!(i > LogLinearHistogram::bucket_index(u64::MAX));
                continue;
            }
            assert_eq!(LogLinearHistogram::bucket_index(lo), i, "lower of {i}");
            if hi != u64::MAX {
                assert_eq!(LogLinearHistogram::bucket_index(hi), i + 1, "upper of {i}");
                assert_eq!(LogLinearHistogram::bucket_index(hi - 1), i, "top of {i}");
            }
        }
        assert_eq!(LogLinearHistogram::bucket_index(u64::MAX), 495);
        // Relative bucket width stays under 12.5% in the log-linear range.
        for i in 17..400 {
            let lo = LogLinearHistogram::bucket_lower(i) as f64;
            let hi = LogLinearHistogram::bucket_upper(i) as f64;
            assert!((hi - lo) / lo <= 0.125 + 1e-12, "bucket {i} too wide");
        }
    }

    #[test]
    fn log_linear_histogram_records_merges_and_quantiles() {
        let mut h = LogLinearHistogram::with_scale(1000.0);
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0.0);
        for ms in 1..=1000u64 {
            h.record(ms as f64 / 1000.0); // 1ms .. 1s, uniform
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5005).abs() < 1e-9);
        assert_eq!(h.min(), 0.001);
        assert_eq!(h.max(), 1.0);
        // Quantiles land within one bucket width (≤12.5%) of truth.
        for (q, truth) in [(0.5, 0.5), (0.9, 0.9), (0.99, 0.99)] {
            let got = h.quantile(q);
            assert!(
                (got - truth).abs() / truth < 0.13,
                "q{q}: got {got}, want ~{truth}"
            );
        }
        // Merge doubles every count and keeps extremes.
        let mut other = LogLinearHistogram::with_scale(1000.0);
        other.record(5.0);
        other.merge(&h);
        assert_eq!(other.count(), 1001);
        assert_eq!(other.max(), 5.0);
        assert_eq!(other.min(), 0.001);
        // Sparse serialization round-trips the occupied buckets only.
        let v = h.to_value();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(1000));
        let buckets = match v.get("buckets") {
            Some(Value::Array(b)) => b,
            _ => panic!("buckets must be an array"),
        };
        assert!(!buckets.is_empty() && buckets.len() < LOG_LINEAR_SLOTS);
        let total: u64 = buckets
            .iter()
            .map(|b| match b {
                Value::Array(triple) => triple[2].as_u64().unwrap(),
                _ => panic!("bucket entries are [lo, hi, count] triples"),
            })
            .sum();
        assert_eq!(total, 1000, "sparse buckets must account for every record");
        // Out-of-domain inputs clamp instead of poisoning the state.
        let mut weird = LogLinearHistogram::default();
        weird.record(-4.0);
        weird.record(f64::NAN);
        weird.record(f64::INFINITY);
        assert_eq!(weird.count(), 3);
        assert_eq!(weird.max(), 0.0);
    }

    #[test]
    fn prometheus_exposition_is_cumulative_and_closed() {
        let mut h = LogLinearHistogram::with_scale(1000.0);
        h.record(0.001);
        h.record(0.001);
        h.record(0.5);
        let mut out = String::new();
        h.prometheus_into("stage_seconds", "stage=\"parse\"", &mut out);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("stage_seconds_bucket{stage=\"parse\",le=\"0.002\"} 2"));
        assert!(out.contains("le=\"+Inf\"} 3"));
        assert!(out.contains("stage_seconds_sum{stage=\"parse\"} 0.502"));
        assert!(out.contains("stage_seconds_count{stage=\"parse\"} 3"));
        // Cumulative counts never decrease.
        let mut last = 0u64;
        for line in &lines {
            if let Some((_, tail)) = line.split_once("} ") {
                if line.contains("_bucket{") {
                    let n: u64 = tail.parse().unwrap();
                    assert!(n >= last, "cumulative counts must be monotone");
                    last = n;
                }
            }
        }
        // Label-free exposition omits the empty brace pair on sum/count.
        let mut plain = String::new();
        h.prometheus_into("x", "", &mut plain);
        assert!(plain.contains("x_sum 0.502"));
        assert!(plain.contains("x_count 3"));
        assert!(plain.contains("x_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn wait_stats_carry_full_histograms() {
        let mut w = WaitStats::default();
        for i in 1..=10 {
            w.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(w.wait_histogram.count(), 10);
        assert_eq!(w.slowdown_histogram.count(), 10);
        assert_eq!(w.wait_histogram.max(), 100.0);
        assert_eq!(w.slowdown_histogram.max(), 11.0);
        let summary = w.to_summary_value();
        let wh = summary.get("wait_histogram").expect("wait_histogram");
        assert_eq!(wh.get("count").and_then(Value::as_u64), Some(10));
        let sh = summary
            .get("slowdown_histogram")
            .expect("slowdown_histogram");
        assert_eq!(sh.get("count").and_then(Value::as_u64), Some(10));
        // Determinism: identical streams build identical histograms.
        let mut again = WaitStats::default();
        for i in 1..=10 {
            again.record(10.0 * i as f64, Some(10.0));
        }
        assert_eq!(again.wait_histogram, w.wait_histogram);
        assert_eq!(again.slowdown_histogram, w.slowdown_histogram);
    }

    #[test]
    fn window_ring_merges_trailing_seconds_and_expires_old_minutes() {
        let mut ring = WindowRing::with_scale(1000.0);
        // Seconds 100..110, one value of `sec` seconds each.
        for sec in 100u64..110 {
            ring.record(sec, sec as f64);
        }
        let last_10 = ring.merged(109, 10);
        assert_eq!(last_10.count(), 10);
        assert_eq!(last_10.min(), 100.0);
        assert_eq!(last_10.max(), 109.0);
        let last_3 = ring.merged(109, 3);
        assert_eq!(last_3.count(), 3);
        assert_eq!(last_3.min(), 107.0);
        // A view anchored before the data sees nothing.
        assert!(ring.merged(99, 10).is_empty());
        // One minute later the slots are reused: the stale stamps keep
        // old-minute data out of the merge, and a write resets its slot.
        assert!(ring.merged(169, 10).is_empty());
        ring.record(160, 1.0); // same slot as second 100
        assert_eq!(ring.merged(169, 10).count(), 1);
        // A trailing minute anchored at 160 spans seconds 101..=160:
        // second 100's slot was reused by 160 so its value is gone,
        // while 101..=109 still sit inside the window.
        let whole_minute = ring.merged(160, 60);
        assert_eq!(whole_minute.count(), 10, "second 100's value must be gone");
        assert_eq!(whole_minute.min(), 1.0);
        assert_eq!(whole_minute.max(), 109.0);
        // Span 0 clamps to 1 second; oversized spans clamp to the ring.
        assert_eq!(ring.merged(160, 0).count(), 1);
        assert_eq!(ring.merged(160, 10_000).count(), 10);
    }

    #[test]
    fn service_snapshot_reflects_counters() {
        let s = ServiceMetrics::default();
        ServiceMetrics::bump(&s.requests);
        ServiceMetrics::bump(&s.requests);
        ServiceMetrics::bump(&s.errors);
        let snap = s.snapshot();
        assert_eq!(snap.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(snap.get("errors").and_then(Value::as_u64), Some(1));
        assert_eq!(snap.get("connections").and_then(Value::as_u64), Some(0));
    }
}
