//! # commalloc-service
//!
//! A long-running, multi-tenant **allocation daemon** over the allocators of
//! `commalloc-alloc`: it owns live machine state, accepts concurrent
//! allocate/release/query streams, and serves them through an in-process
//! API ([`AllocationService`]) and a newline-delimited JSON protocol over
//! TCP ([`server::Server`] / [`client::ServiceClient`]).
//!
//! ## Why a service (design rationale)
//!
//! The source paper (Leung, Bunde & Mache, IPPS 2004) evaluates allocators
//! with ProcSimity — an *offline* simulator replaying a fixed trace against
//! one machine. The allocation problem it studies is inherently *online*,
//! though: jobs arrive and depart against live machine state, and the
//! allocator must answer immediately. This crate generalises the repo's
//! offline replay engine (`commalloc::engine`) to online operation:
//!
//! * **State ownership.** A [`registry::Registry`] holds every registered
//!   machine behind **sharded locks** (machines hash to shards; requests
//!   for different machines proceed in parallel, requests for one machine
//!   serialise — exactly the consistency the occupancy invariant needs).
//! * **2-D and 3-D meshes.** A registered machine is either the paper's
//!   2-D mesh with any [`commalloc_alloc::AllocatorKind`], or a 3-D mesh
//!   allocated by one-dimensional reduction along a
//!   [`commalloc_mesh::curve3d::Curve3Order`] — the generalisation the
//!   paper points to via Alber & Niedermeier's multidimensional indexings.
//! * **Incremental hot path.** Curve allocators consult the
//!   [`commalloc_alloc::FreeIntervalIndex`] — a BTree of maximal free runs
//!   updated in O(log n) per occupy/release — instead of rescanning the
//!   occupancy bitmap per request; the 3-D path uses the same index
//!   directly as its source of truth.
//! * **Policy-driven admission.** When a machine cannot serve a request,
//!   the caller may queue it ([`admission::AdmissionQueue`]). The drain
//!   discipline is a per-machine `commalloc::scheduler::SchedulerKind`,
//!   chosen at registration and switchable at runtime (`set_scheduler`):
//!   strict FCFS with head-of-line blocking (the paper's policy and the
//!   default), first-fit backfilling, or EASY backfilling planning with
//!   client-supplied walltime estimates. The queue delegates every pick
//!   to the *same* `select_with_context` the offline engine calls, and
//!   the sim-equivalence tests pin the online grant order byte-identical
//!   to the offline simulator's for every scheduling policy.
//! * **Durability.** Every state-changing operation can be journaled to
//!   an append-only NDJSON write-ahead log ([`journal`]) behind a
//!   [`journal::JournalSink`] trait — a no-op by default, a
//!   group-commit file sink under `serve --journal` — with watermarked
//!   snapshot compaction and a crash-recovery fold
//!   ([`journal::open_journaled`]) proven byte-identical to
//!   uninterrupted runs.
//! * **Cluster routing.** Machines registered with a `pool` name become
//!   members of that pool ([`cluster::PlacementRouter`]); an `alloc`
//!   addressed to `"@pool"` is routed to a member by the pool's
//!   [`cluster::RoutingPolicy`] (round-robin, least-loaded,
//!   shortest-queue, power-of-two-choices — switchable at runtime via
//!   `set_router`). Routing is sample-then-commit through the same
//!   sharded locks, with a per-entry generation re-check instead of any
//!   global lock; driven single-threaded it is fully deterministic, and
//!   the cluster sim-equivalence tests pin the pooled service's routes
//!   and per-machine grant logs byte-identical to a pure offline router
//!   plus standalone per-machine replays.
//!
//! ## Wire protocol
//!
//! One JSON object per `\n`-terminated line in each direction
//! ([`protocol::Request`] / [`protocol::Response`]). Requests carry an
//! `"op"` discriminator:
//!
//! ```json
//! {"op":"register","machine":"m0","mesh":"16x16","allocator":"Hilbert w/BF","scheduler":"easy","pool":"grid"}
//! {"op":"alloc","machine":"m0","job":1,"size":17,"wait":true,"walltime":120.0}
//! {"op":"alloc","machine":"@grid","job":2,"size":8,"wait":true}
//! {"op":"set_scheduler","machine":"m0","scheduler":"backfill"}
//! {"op":"set_router","pool":"grid","policy":"p2c"}
//! {"op":"release","machine":"m0","job":1}
//! {"op":"poll","machine":"m0","job":2}
//! {"op":"query","machine":"m0"}
//! {"op":"query","machine":"@grid"}
//! {"op":"stats","machine":"m0"}
//! {"op":"journal_stats"}
//! {"op":"list"}
//! {"op":"ping"}
//! {"op":"batch","requests":[{"op":"ping"},{"op":"release","machine":"m0","job":1}]}
//! ```
//!
//! Responses always carry `"ok"`; successful `alloc` responses carry
//! `"status"` (`"granted"` with `"nodes"`, or `"queued"` with
//! `"position"`; routed responses add `"machine"`, the member that took
//! the job), and errors carry `"error"` with a message. The protocol
//! is deliberately line-oriented and human-typeable (`nc` works) while
//! staying machine-parseable; it needs nothing beyond the standard library
//! plus the workspace's JSON layer.
//!
//! Alongside NDJSON the same port speaks a compact **length-prefixed
//! binary framing** ([`framing`]), discriminated per frame by its first
//! byte: `0xB1` opens a binary frame, anything else is a JSON line. Both
//! framings decode to identical [`protocol::Request`] /
//! [`protocol::Response`] values; responses return in the framing the
//! request arrived in, so a single connection may mix both.
//!
//! The TCP server is std-only: a listener thread accepts connections and
//! pins each one to a **thread-per-core readiness loop** worker
//! ([`server::Server`]; nonblocking sockets driven by the `polling`
//! compat shim's epoll/poll surface). Each worker drains every complete
//! frame per readiness wakeup (pipelining) and writes responses through
//! a per-connection outbox with backpressure. The original blocking
//! thread-per-connection pool survives as [`server::BlockingServer`] —
//! the `wire_throughput` bench's baseline.
//!
//! ## Example
//!
//! ```
//! use commalloc_service::{AllocationService, AllocOutcome};
//!
//! let service = AllocationService::new();
//! service.register_2d("m0", "16x16", "Hilbert w/BF").unwrap();
//! let granted = service.allocate("m0", 1, 17, false, Some(60.0)).unwrap();
//! let AllocOutcome::Granted(nodes) = granted else { panic!("empty machine") };
//! assert_eq!(nodes.len(), 17);
//! let newly_runnable = service.release("m0", 1).unwrap();
//! assert!(newly_runnable.is_empty());
//! ```

pub mod admission;
pub mod calibration;
pub mod client;
pub mod cluster;
pub mod framing;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod replay;
pub mod score;
pub mod server;
pub mod service;
pub mod tenant;
pub mod trace;

pub use calibration::{CalibrationSample, CalibrationStore, PlacementRecord};
pub use client::{ClientAllocOutcome, ClientError, ServiceClient, TraceDump};
pub use cluster::{route_offline, ClusterMember, MachineSample, PlacementRouter, RoutingPolicy};
pub use framing::{Frame, FrameBuffer, FrameError, Framing};
pub use journal::{
    open_journaled, read_journal_dir, FileJournal, FsyncPolicy, JournalConfig, JournalError,
    JournalRecord, JournalSink, NoopJournal, RecoveryReport, SnapshotImage,
};
pub use metrics::{
    LogLinearHistogram, MachineMetrics, ServiceMetrics, SlowdownReservoir, WaitStats, WindowRing,
    LOG_LINEAR_SLOTS, SLOWDOWN_RESERVOIR_CAPACITY, SLOWDOWN_TAU_SECONDS, WINDOW_SLOTS,
};
pub use protocol::{JobRef, Request, Response};
pub use registry::{MachineSnapshot, Registry, ServiceError};
pub use replay::{replay, replay_cluster, ClusterReplayLog, ReplayGrant, ReplayJob, ReplayLog};
pub use score::ScoreBreakdown;
pub use server::{BlockingServer, Server, ServerHandle};
pub use service::{AllocOutcome, AllocationService, JobStatus};
pub use tenant::{job_cost, tenant_or_default, TenantConfig, TenantExport, TenantTable};
pub use trace::{FlightRecorder, RequestCtx, SpanEvent, Stage};
