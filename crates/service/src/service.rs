//! The in-process service API and the protocol dispatcher.
//!
//! [`AllocationService`] is a cheaply cloneable handle (an `Arc` around the
//! sharded [`Registry`] plus process-wide counters) usable directly from
//! any thread; the TCP [`crate::server::Server`] is a thin transport over
//! [`AllocationService::handle`].

use crate::calibration::CalibrationStore;
use crate::cluster::{pool_of, MachineSample, PlacementRouter, PoolJobIndex, RoutingPolicy};
use crate::journal::{
    JournalRecord, JournalSink, NoopJournal, PoolImage, SnapshotImage, TenantImage,
};
use crate::metrics::{LogLinearHistogram, ServiceMetrics, WindowRing};
use crate::protocol::{JobRef, Request, Response};
use crate::registry::{MachineEntry, MachineSnapshot, Registry, ServiceError};
use crate::tenant::{job_cost, tenant_or_default, TenantConfig, TenantTable};
use crate::trace::{FlightRecorder, RequestCtx, Stage};
use commalloc::scheduler::SchedulerKind;
use commalloc_alloc::curve_alloc::SelectionStrategy;
use commalloc_alloc::AllocatorKind;
use commalloc_mesh::curve3d::Curve3Kind;
use commalloc_mesh::{Mesh2D, Mesh3D, NodeId};
use commalloc_workload::CommPattern;
use serde::{Map, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

pub use crate::registry::{AllocOutcome, JobStatus};

/// A shareable handle to the allocation daemon's state.
#[derive(Clone)]
pub struct AllocationService {
    registry: Arc<Registry>,
    router: Arc<PlacementRouter>,
    metrics: Arc<ServiceMetrics>,
    /// Where state-changing operations are journaled (a no-op sink
    /// unless the daemon runs with `--journal`).
    journal: Arc<dyn JournalSink>,
    /// Guards snapshot capture: two workers crossing the snapshot
    /// threshold together must not both rotate and install (the second
    /// install could prune a segment the first one still counts on).
    snapshotting: Arc<AtomicBool>,
    /// Orders concurrent `set_router` flips so the journal append
    /// happens in policy-apply order without holding the pool-table
    /// lock across a (possibly fsyncing) append.
    router_flips: Arc<Mutex<()>>,
    /// The flight recorder behind the `trace` / `set_trace` / `metrics`
    /// ops. Always present; recording is off until toggled, and the
    /// disabled path costs one relaxed atomic load per wire request.
    recorder: Arc<FlightRecorder>,
    /// Per-pool route-latency aggregation (cumulative + trailing
    /// 60-second window, labeled with the pool's routing policy), fed
    /// by traced routed allocs. BTreeMap: exports iterate in pool-name
    /// order, so the exposition is deterministic.
    pool_windows: Arc<Mutex<BTreeMap<String, PoolWindow>>>,
    /// The pool-scoped job index: `(pool, job id) -> owning members`,
    /// maintained on every grant/queue/release of a pool member so
    /// `@pool`-addressed release/poll resolve a bare id to its owner
    /// without touching any per-machine lock.
    job_index: Arc<PoolJobIndex>,
}

/// One pool's route-latency aggregation: the since-boot histogram, the
/// 60×1 s window ring, and the routing policy of its most recent route
/// (the label the Prometheus exposition carries).
#[derive(Debug)]
struct PoolWindow {
    policy: &'static str,
    cumulative: LogLinearHistogram,
    window: WindowRing,
}

impl PoolWindow {
    fn new() -> PoolWindow {
        PoolWindow {
            policy: "round-robin",
            // Micros arrive pre-integral: scale 1 keeps bucketing exact.
            cumulative: LogLinearHistogram::with_scale(1.0),
            window: WindowRing::with_scale(1.0),
        }
    }
}

impl Default for AllocationService {
    fn default() -> Self {
        AllocationService {
            registry: Arc::new(Registry::default()),
            router: Arc::new(PlacementRouter::default()),
            metrics: Arc::new(ServiceMetrics::default()),
            journal: Arc::new(NoopJournal),
            snapshotting: Arc::new(AtomicBool::new(false)),
            router_flips: Arc::new(Mutex::new(())),
            recorder: Arc::new(FlightRecorder::new()),
            pool_windows: Arc::new(Mutex::new(BTreeMap::new())),
            job_index: Arc::new(PoolJobIndex::default()),
        }
    }
}

/// Largest machine the service will register: caps the memory one
/// network request can force (bitmaps, curve orders) and keeps 3-D node
/// arithmetic far from `u32` overflow.
pub const MAX_MACHINE_NODES: u64 = 1 << 20;

/// How many times a routing decision re-samples after finding its target
/// moved between sample and commit before committing anyway.
pub const ROUTE_STALE_RETRIES: usize = 4;

/// Parses `"16x16"` / `"4x4x4"` into dimensions, enforcing
/// [`MAX_MACHINE_NODES`].
fn parse_dims(spec: &str) -> Result<Vec<u16>, ServiceError> {
    let dims: Option<Vec<u16>> = spec
        .split(['x', 'X'])
        .map(|part| part.trim().parse::<u16>().ok().filter(|&d| d > 0))
        .collect();
    match dims {
        Some(dims) if dims.len() == 2 || dims.len() == 3 => {
            let nodes: u64 = dims.iter().map(|&d| d as u64).product();
            if nodes > MAX_MACHINE_NODES {
                return Err(ServiceError::InvalidSpec(format!(
                    "mesh {spec:?} has {nodes} nodes, above the {MAX_MACHINE_NODES}-node limit"
                )));
            }
            Ok(dims)
        }
        _ => Err(ServiceError::InvalidSpec(format!(
            "mesh {spec:?} (expected WxH or WxHxD with positive sizes)"
        ))),
    }
}

/// Parses a selection-strategy spec (`"BF"`, `"FF"`, `"free list"`,
/// `"SS"`, case-insensitive).
fn parse_strategy(spec: &str) -> Result<SelectionStrategy, ServiceError> {
    let all = [
        SelectionStrategy::FreeList,
        SelectionStrategy::FirstFit,
        SelectionStrategy::BestFit,
        SelectionStrategy::SumOfSquares,
    ];
    all.into_iter()
        .find(|s| s.short_name().eq_ignore_ascii_case(spec.trim()))
        .ok_or_else(|| {
            ServiceError::InvalidSpec(format!(
                "strategy {spec:?} (expected one of: free list, FF, BF, SS)"
            ))
        })
}

/// Parses a scheduler spec (`"fcfs"`, `"backfill"`, `"easy"`,
/// `"conservative"` or a full [`SchedulerKind`] name, case-insensitive).
fn parse_scheduler(spec: &str) -> Result<SchedulerKind, ServiceError> {
    SchedulerKind::parse(spec).ok_or_else(|| {
        ServiceError::InvalidSpec(format!(
            "scheduler {spec:?} (expected one of: fcfs, backfill, easy, conservative)"
        ))
    })
}

/// Validates a tenant name: non-empty, no pool sigil, no `/` (tenant
/// names travel inside job refs' flat namespace-free fields never, but
/// a `/` would still read ambiguously in logs and CLI output).
fn validate_tenant_name(tenant: &str) -> Result<(), ServiceError> {
    if tenant.is_empty() || tenant.starts_with('@') || tenant.contains('/') {
        return Err(ServiceError::InvalidSpec(format!(
            "tenant name {tenant:?} (must be non-empty, carry no '@' sigil and no '/')"
        )));
    }
    Ok(())
}

/// Parses a 3-D curve spec (`"Hilbert-3d"`, `"snake-3d"`, ...).
fn parse_curve3(spec: &str) -> Result<Curve3Kind, ServiceError> {
    Curve3Kind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(spec.trim()))
        .ok_or_else(|| {
            ServiceError::InvalidSpec(format!(
                "3-D curve {spec:?} (expected one of: {})",
                Curve3Kind::all().map(|k| k.name()).join(", ")
            ))
        })
}

/// Renders one committed routing decision as its wire object: the pool
/// and policy, every eligible member's load figures (and predicted
/// contention, when the member scored the job), the winner, and whether
/// the comm-aware policy fell back to its shortest-queue path.
#[allow(clippy::too_many_arguments)]
fn decision_record(
    pool: &str,
    policy: RoutingPolicy,
    job: u64,
    eligible: &[MachineSample],
    winner: &str,
    attempt: usize,
    fallback: bool,
    start_micros: u64,
    end_micros: u64,
) -> Value {
    let mut m = Map::new();
    m.insert("pool".into(), pool.to_value());
    m.insert("policy".into(), policy.name().to_value());
    m.insert("job".into(), job.to_value());
    m.insert("ts_micros".into(), start_micros.to_value());
    m.insert(
        "dur_micros".into(),
        end_micros.saturating_sub(start_micros).to_value(),
    );
    m.insert("stale_retries".into(), (attempt as u64).to_value());
    m.insert("winner".into(), winner.to_value());
    if fallback {
        m.insert("comm_fallback".into(), true.to_value());
    }
    let members: Vec<Value> = eligible
        .iter()
        .map(|s| {
            let mut e = Map::new();
            e.insert("machine".into(), s.name.to_value());
            e.insert("free".into(), s.free.to_value());
            e.insert("queue_len".into(), s.queue_len.to_value());
            if let Some(c) = s.contention {
                e.insert("score".into(), c.to_value());
            }
            Value::Object(e)
        })
        .collect();
    m.insert("members".into(), Value::Array(members));
    Value::Object(m)
}

impl AllocationService {
    /// A fresh service with the default shard count and no machines.
    pub fn new() -> Self {
        AllocationService::default()
    }

    /// A fresh service with an explicit lock-shard count.
    pub fn with_shards(shards: usize) -> Self {
        AllocationService {
            registry: Arc::new(Registry::with_shards(shards)),
            ..AllocationService::default()
        }
    }

    /// Attaches a journal sink (consuming the handle — attach before
    /// cloning it out to workers). Machines already registered — the
    /// recovery path rebuilds state *before* attaching the real sink so
    /// replayed effects are not re-journaled — start composing records
    /// from here on.
    pub fn with_journal(self, journal: Arc<dyn JournalSink>) -> Self {
        let service = AllocationService { journal, ..self };
        if service.journal.durable() {
            for name in service.registry.list() {
                let _ = service.registry.with_entry(&name, |entry| {
                    entry.enable_journaling();
                    Ok(())
                });
            }
        }
        service
    }

    /// The attached journal sink.
    pub fn journal(&self) -> &Arc<dyn JournalSink> {
        &self.journal
    }

    /// The flight recorder (the TCP server mints request contexts from
    /// it; the CLI toggles it via `serve --trace`).
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The placement calibration store (shared by every machine entry;
    /// toggled by `set_trace`'s `calibration` rider or `serve
    /// --calibration`, queried live by the `calibration` op).
    pub fn calibration(&self) -> &Arc<CalibrationStore> {
        self.registry.calibration()
    }

    /// Appends the outbox of `entry` to the journal — called while the
    /// entry's shard lock is still held, so per-machine journal order
    /// equals mutation order (the invariant recovery folds over). A
    /// traced request gets a `journal_append` span per record, and a
    /// `fsync_wait` span for the slice of it spent blocked on the disk
    /// (`--fsync every`; group commit never blocks the append).
    fn flush_outbox(&self, entry: &mut MachineEntry, ctx: &RequestCtx<'_>) {
        for record in entry.take_outbox() {
            let start = ctx.now_micros();
            let (seq, fsync_wait) = self.journal.append_timed(&record);
            let end = ctx.now_micros();
            ctx.span(Stage::JournalAppend, 0, 0, start, end);
            if fsync_wait != 0 {
                ctx.span(Stage::FsyncWait, 0, 0, end.saturating_sub(fsync_wait), end);
            }
            entry.note_journal_seq(seq);
        }
    }

    /// The cluster-layer pool router (membership and routing policies).
    pub fn router(&self) -> &PlacementRouter {
        &self.router
    }

    /// The process-wide counters (shared with the TCP server).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The tenant table: configuration, quota ledger and fair-share
    /// keys (shared with every machine entry and the TCP server).
    pub fn tenants(&self) -> &Arc<TenantTable> {
        self.registry.tenants()
    }

    /// The pool-scoped job index (`@pool` bare-id resolution).
    pub fn job_index(&self) -> &Arc<PoolJobIndex> {
        &self.job_index
    }

    /// Registers a machine from string specs. Two dimensions select the
    /// 2-D path (`allocator` names an [`AllocatorKind`], default
    /// `"Hilbert w/BF"`); three dimensions select the 3-D curve path
    /// (`allocator` names a [`Curve3Kind`], default Hilbert, with
    /// `strategy` defaulting to Best Fit). `scheduler` picks the
    /// admission policy (default FCFS, the paper's discipline).
    pub fn register(
        &self,
        machine: &str,
        mesh: &str,
        allocator: Option<&str>,
        strategy: Option<&str>,
        scheduler: Option<&str>,
    ) -> Result<(), ServiceError> {
        self.register_in_pool(machine, mesh, allocator, strategy, scheduler, None)
    }

    /// Like [`AllocationService::register`], additionally joining the
    /// machine to cluster pool `pool` (created round-robin on first use).
    /// Pool membership is taken only after the machine registers
    /// successfully, so a failed registration never leaves a dangling
    /// member behind.
    pub fn register_in_pool(
        &self,
        machine: &str,
        mesh: &str,
        allocator: Option<&str>,
        strategy: Option<&str>,
        scheduler: Option<&str>,
        pool: Option<&str>,
    ) -> Result<(), ServiceError> {
        self.register_inner(machine, mesh, allocator, strategy, scheduler, pool, true)
    }

    /// The registration body; `journal: false` is the recovery path,
    /// which rebuilds machines from records without re-journaling them.
    #[allow(clippy::too_many_arguments)]
    fn register_inner(
        &self,
        machine: &str,
        mesh: &str,
        allocator: Option<&str>,
        strategy: Option<&str>,
        scheduler: Option<&str>,
        pool: Option<&str>,
        journal: bool,
    ) -> Result<(), ServiceError> {
        if machine.is_empty() {
            return Err(ServiceError::InvalidSpec(
                "machine name must be non-empty".to_string(),
            ));
        }
        if machine.starts_with('@') {
            return Err(ServiceError::InvalidSpec(format!(
                "machine name {machine:?} must not start with '@' (the pool sigil)"
            )));
        }
        if let Some(pool) = pool {
            if pool.is_empty() || pool.starts_with('@') {
                return Err(ServiceError::InvalidSpec(format!(
                    "pool name {pool:?} must be non-empty and carry no '@' sigil"
                )));
            }
        }
        let scheduler_spec = scheduler;
        let scheduler = match scheduler {
            None => SchedulerKind::Fcfs,
            Some(spec) => parse_scheduler(spec)?,
        };
        let dims = parse_dims(mesh)?;
        let entry = match dims.as_slice() {
            [w, h] => {
                let kind = match allocator {
                    None => AllocatorKind::HilbertBestFit,
                    Some(spec) => AllocatorKind::parse(spec)
                        .ok_or_else(|| ServiceError::InvalidSpec(format!("allocator {spec:?}")))?,
                };
                if strategy.is_some() {
                    return Err(ServiceError::InvalidSpec(
                        "\"strategy\" applies only to 3-D machines; \
                         2-D allocators are fully named (e.g. \"Hilbert w/BF\")"
                            .to_string(),
                    ));
                }
                MachineEntry::new_2d(machine, Mesh2D::new(*w, *h), kind, scheduler)
            }
            [w, h, d] => {
                let curve = match allocator {
                    None => Curve3Kind::Hilbert,
                    Some(spec) => parse_curve3(spec)?,
                };
                let strategy = match strategy {
                    None => SelectionStrategy::BestFit,
                    Some(spec) => parse_strategy(spec)?,
                };
                MachineEntry::new_3d(machine, Mesh3D::new(*w, *h, *d), curve, strategy, scheduler)
            }
            _ => unreachable!("parse_dims yields 2 or 3 dims"),
        };
        // The registration record is appended under the new entry's shard
        // lock so no grant of this machine can be journaled ahead of it.
        // The pool join happens in there too, *before* the record: a
        // concurrent snapshot that photographs this machine at or above
        // the record's watermark then provably photographs the pool
        // table (read afterwards) with the membership in place —
        // otherwise recovery could skip the tail Register record via the
        // watermark gate and silently drop the machine from its pool.
        self.registry.register_entry(machine, entry, |entry| {
            // The flip-order lock is held from the pool join to the end
            // of the append: a concurrent `set_router` on this (possibly
            // brand-new) pool cannot journal its flip ahead of the
            // Register record that creates the pool, so recovery never
            // replays a SetRouter against a pool that does not exist yet.
            let _pool_order = pool.map(|pool| {
                let ordered = self
                    .router_flips
                    .lock()
                    .expect("router flip order poisoned");
                self.router.add_member(pool, machine);
                ordered
            });
            if self.journal.durable() {
                entry.enable_journaling();
                if journal {
                    let record = JournalRecord::Register {
                        machine: machine.to_string(),
                        mesh: mesh.to_string(),
                        allocator: allocator.map(str::to_string),
                        strategy: strategy.map(str::to_string),
                        scheduler: scheduler_spec.map(str::to_string),
                        pool: pool.map(str::to_string),
                    };
                    entry.note_journal_seq(self.journal.append(&record));
                }
            }
        })?;
        Ok(())
    }

    /// Registers a 2-D machine under FCFS (convenience wrapper over
    /// [`AllocationService::register`]).
    pub fn register_2d(
        &self,
        machine: &str,
        mesh: &str,
        allocator: &str,
    ) -> Result<(), ServiceError> {
        self.register(machine, mesh, Some(allocator), None, None)
    }

    /// Allocates `size` processors for `job` on `machine`. `walltime` is
    /// the client's runtime estimate in seconds (used by EASY
    /// backfilling; pass `None` when unknown).
    pub fn allocate(
        &self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
    ) -> Result<AllocOutcome, ServiceError> {
        self.allocate_traced(
            machine,
            job,
            size,
            wait,
            walltime,
            None,
            None,
            &RequestCtx::inert(),
        )
    }

    /// [`AllocationService::allocate`] for a job that declared a
    /// communication pattern: the machine scores its candidate
    /// placements by predicted contention and commits the best one.
    pub fn allocate_patterned(
        &self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
    ) -> Result<AllocOutcome, ServiceError> {
        self.allocate_traced(
            machine,
            job,
            size,
            wait,
            walltime,
            pattern,
            None,
            &RequestCtx::inert(),
        )
    }

    /// Maps a quota check onto the typed admission error. The
    /// commitment is taken here, *before* the machine lock; the
    /// caller settles it against the outcome (refund on reject/error,
    /// keep on grant/queue — released when the job settles).
    fn admit_quota(&self, tenant: Option<&str>, cost: f64) -> Result<(), ServiceError> {
        self.registry
            .tenants()
            .admit(tenant, cost)
            .map_err(|denied| ServiceError::QuotaExceeded {
                tenant: tenant_or_default(tenant).to_string(),
                usage: denied.usage,
                limit: denied.limit,
            })
    }

    /// Settles one alloc attempt's admission commitment against its
    /// outcome and maintains the pool job index: grants and queued
    /// jobs of pool members become resolvable by bare id; rejected or
    /// failed attempts refund their commitment.
    fn finish_admission(
        &self,
        machine: &str,
        job: u64,
        tenant: Option<&str>,
        cost: f64,
        result: Result<AllocOutcome, ServiceError>,
    ) -> Result<AllocOutcome, ServiceError> {
        match &result {
            Ok(AllocOutcome::Granted(_)) | Ok(AllocOutcome::Queued(_)) => {
                if let Some(pool) = self.router.pool_of_member(machine) {
                    self.job_index.insert(&pool, job, machine);
                }
            }
            Ok(AllocOutcome::Rejected(_)) | Err(_) => {
                self.registry.tenants().refund(tenant, cost);
            }
        }
        result
    }

    /// [`AllocationService::allocate`] with a tenant attribution and a
    /// tracing context (the wire path; in-process callers use the
    /// untraced wrappers, which bill the default tenant).
    #[allow(clippy::too_many_arguments)]
    pub fn allocate_traced(
        &self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
        tenant: Option<&str>,
        ctx: &RequestCtx<'_>,
    ) -> Result<AllocOutcome, ServiceError> {
        let ctx = ctx.with_machine(machine);
        let cost = job_cost(size, walltime);
        self.admit_quota(tenant, cost)?;
        let result = self.registry.with_entry(machine, |entry| {
            let outcome = entry.allocate_placed(
                job,
                size,
                wait,
                walltime,
                pattern,
                "direct",
                tenant.map(str::to_string),
                &ctx,
            );
            self.flush_outbox(entry, &ctx);
            outcome
        });
        self.finish_admission(machine, job, tenant, cost, result)
    }

    /// The routing-relevant sample of `machine`, captured under its
    /// shard lock (the router's *sample* step; public so offline routing
    /// harnesses see exactly what the router sees).
    pub fn sample(&self, machine: &str) -> Result<MachineSample, ServiceError> {
        self.registry
            .with_entry(machine, |entry| Ok(entry.sample()))
    }

    /// [`AllocationService::sample`] scored for one specific request:
    /// when `pattern` is declared, the sample's `contention` field
    /// carries the machine's best predicted contention for the job (see
    /// [`MachineEntry::sample_for`]). The comm-aware routing policy and
    /// the offline router both sample through this path, which is what
    /// keeps their decisions identical.
    pub fn sample_for(
        &self,
        machine: &str,
        job: u64,
        size: usize,
        pattern: Option<CommPattern>,
    ) -> Result<MachineSample, ServiceError> {
        self.registry
            .with_entry(machine, |entry| Ok(entry.sample_for(job, size, pattern)))
    }

    /// Routes an allocation across pool `pool` (no `@` sigil): samples
    /// every member under its own shard lock, lets the pool's
    /// [`RoutingPolicy`] pick a target among the members large enough for
    /// the request, and commits on the target alone — re-checking the
    /// target's modification generation first, so a machine that moved
    /// between sample and commit triggers a resample instead of a commit
    /// against stale load data. After [`ROUTE_STALE_RETRIES`] stale
    /// rounds the commit proceeds regardless (a stale sample can only
    /// cost placement quality, never soundness). Returns the chosen
    /// machine together with the outcome.
    pub fn route(
        &self,
        pool: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
    ) -> Result<(String, AllocOutcome), ServiceError> {
        self.route_traced(
            pool,
            job,
            size,
            wait,
            walltime,
            pattern,
            None,
            &RequestCtx::inert(),
        )
    }

    /// [`AllocationService::route`] with a tenant attribution and a
    /// tracing context: the whole sample-pick-commit loop is timed as
    /// one `route` span (its `code` counts the stale-sample retries),
    /// bound to the member that took the job. A routed id already live
    /// anywhere in the pool is refused up front as the typed duplicate
    /// it would otherwise become in the pool index.
    #[allow(clippy::too_many_arguments)]
    pub fn route_traced(
        &self,
        pool: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
        tenant: Option<&str>,
        ctx: &RequestCtx<'_>,
    ) -> Result<(String, AllocOutcome), ServiceError> {
        if let Some(owner) = self.job_index.owners(pool, job).first() {
            return Err(ServiceError::DuplicateJob {
                machine: owner.clone(),
                job_id: job,
            });
        }
        let cost = job_cost(size, walltime);
        self.admit_quota(tenant, cost)?;
        let result = self.route_inner(pool, job, size, wait, walltime, pattern, tenant, ctx);
        match &result {
            Ok((target, AllocOutcome::Granted(_))) | Ok((target, AllocOutcome::Queued(_))) => {
                self.job_index.insert(pool, job, target);
            }
            Ok((_, AllocOutcome::Rejected(_))) | Err(_) => {
                self.registry.tenants().refund(tenant, cost);
            }
        }
        result
    }

    /// The routing loop body (sample, pick, generation-checked commit).
    #[allow(clippy::too_many_arguments)]
    fn route_inner(
        &self,
        pool: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
        pattern: Option<CommPattern>,
        tenant: Option<&str>,
        ctx: &RequestCtx<'_>,
    ) -> Result<(String, AllocOutcome), ServiceError> {
        let route_start = ctx.now_micros();
        for attempt in 0..=ROUTE_STALE_RETRIES {
            let view = self.router.view(pool)?;
            let policy = view.policy;
            let mut eligible: Vec<MachineSample> = Vec::with_capacity(view.members.len());
            for name in &view.members {
                let sample = self.sample_for(name, job, size, pattern)?;
                if size <= sample.nodes {
                    eligible.push(sample);
                }
            }
            if eligible.is_empty() {
                return Err(ServiceError::InvalidRequest(format!(
                    "no machine in pool {pool:?} is large enough for {size} processors"
                )));
            }
            let seq = view.seq.fetch_add(1, Ordering::Relaxed);
            let chosen = &eligible[policy.pick(&eligible, seq)];
            // Comm-aware falls back to shortest-queue when no sample
            // scored; detect that from the samples alone so `pick` stays
            // byte-identical to the offline router.
            let fallback = policy == RoutingPolicy::CommAware
                && eligible.iter().all(|s| s.contention.is_none());
            let expected_generation = chosen.generation;
            let target = chosen.name.clone();
            let mctx = ctx.with_machine(&target);
            let committed = self.registry.with_entry(&target, |entry| {
                if attempt < ROUTE_STALE_RETRIES && entry.generation() != expected_generation {
                    return Ok(None); // the sample went stale: re-route
                }
                mctx.span(
                    Stage::Route,
                    job,
                    attempt as u32,
                    route_start,
                    mctx.now_micros(),
                );
                let outcome = entry
                    .allocate_placed(
                        job,
                        size,
                        wait,
                        walltime,
                        pattern,
                        policy.name(),
                        tenant.map(str::to_string),
                        &mctx,
                    )
                    .map(Some);
                self.flush_outbox(entry, &mctx);
                outcome
            })?;
            if let Some(outcome) = committed {
                if fallback {
                    ServiceMetrics::bump(&self.metrics.route_comm_fallbacks);
                }
                if mctx.active() {
                    let route_end = mctx.now_micros();
                    self.note_routed(pool, policy, route_start, route_end);
                    self.recorder.record_decision(decision_record(
                        pool,
                        policy,
                        job,
                        &eligible,
                        &target,
                        attempt,
                        fallback,
                        route_start,
                        route_end,
                    ));
                }
                return Ok((target, outcome));
            }
        }
        unreachable!("the final routing attempt commits unconditionally")
    }

    /// Files one committed route's latency into the pool's cumulative
    /// histogram and trailing window (traced requests only — untraced
    /// routes pay nothing here).
    fn note_routed(&self, pool: &str, policy: RoutingPolicy, start_micros: u64, end_micros: u64) {
        let mut pools = self.pool_windows.lock().expect("pool windows poisoned");
        let slot = pools
            .entry(pool.to_string())
            .or_insert_with(PoolWindow::new);
        slot.policy = policy.name();
        let dur = end_micros.saturating_sub(start_micros) as f64;
        slot.cumulative.record(dur);
        slot.window.record(end_micros / 1_000_000, dur);
    }

    /// Switches the routing policy of pool `pool` at runtime, returning
    /// the now-active policy.
    pub fn set_router(&self, pool: &str, policy: &str) -> Result<RoutingPolicy, ServiceError> {
        let parsed = RoutingPolicy::parse(policy).ok_or_else(|| {
            ServiceError::InvalidSpec(format!(
                "routing policy {policy:?} (expected one of: {})",
                RoutingPolicy::all().map(|p| p.name()).join(", ")
            ))
        })?;
        // The apply + append pair runs under `router_flips`, so for
        // concurrent flips of the same pool journal order equals apply
        // order — recovery replays in append order and must resurrect
        // the policy that actually won, not merely *a* last writer. The
        // mutex (not the pool-table write lock) holds across the append
        // because the append can fsync under `--fsync every`, and the
        // pool table must not be read-blocked behind the disk — routing
        // samples it on every pooled request.
        let _ordered = self
            .router_flips
            .lock()
            .expect("router flip order poisoned");
        self.router.set_policy(pool, parsed)?;
        if self.journal.durable() {
            self.journal.append(&JournalRecord::SetRouter {
                pool: pool.to_string(),
                policy: parsed.name().to_string(),
            });
        }
        Ok(parsed)
    }

    /// Point-in-time summary of pool `pool` (no `@` sigil): the active
    /// routing policy, cluster-wide totals, and every member's
    /// [`MachineSnapshot`] in sorted name order — deterministic across
    /// registry shard counts.
    pub fn pool_snapshot(&self, pool: &str) -> Result<Value, ServiceError> {
        let members = self.router.members(pool)?;
        let policy = self.router.policy(pool)?;
        let mut machines = Vec::with_capacity(members.len());
        let (mut nodes, mut free, mut queue_len, mut live_jobs) = (0usize, 0usize, 0usize, 0usize);
        for name in &members {
            let snap = self.query(name)?;
            nodes += snap.nodes;
            free += snap.free;
            queue_len += snap.queue_len;
            live_jobs += snap.live_jobs;
            machines.push(snap.to_value());
        }
        let mut m = Map::new();
        m.insert("pool".into(), pool.to_value());
        m.insert("router".into(), policy.name().to_value());
        m.insert("nodes".into(), nodes.to_value());
        m.insert("free".into(), free.to_value());
        m.insert("busy".into(), (nodes - free).to_value());
        m.insert("queue_len".into(), queue_len.to_value());
        m.insert("live_jobs".into(), live_jobs.to_value());
        m.insert("machines".into(), Value::Array(machines));
        Ok(Value::Object(m))
    }

    /// Switches the scheduling policy of `machine` at runtime, returning
    /// the now-active kind and any jobs the re-drain granted.
    #[allow(clippy::type_complexity)]
    pub fn set_scheduler(
        &self,
        machine: &str,
        scheduler: &str,
    ) -> Result<(SchedulerKind, Vec<(u64, Vec<NodeId>)>), ServiceError> {
        self.set_scheduler_traced(machine, scheduler, &RequestCtx::inert())
    }

    /// [`AllocationService::set_scheduler`] with a tracing context
    /// (grants admitted by the re-drain trace as the requests that
    /// enqueued them).
    #[allow(clippy::type_complexity)]
    pub fn set_scheduler_traced(
        &self,
        machine: &str,
        scheduler: &str,
        ctx: &RequestCtx<'_>,
    ) -> Result<(SchedulerKind, Vec<(u64, Vec<NodeId>)>), ServiceError> {
        let kind = parse_scheduler(scheduler)?;
        let ctx = ctx.with_machine(machine);
        self.registry.with_entry(machine, |entry| {
            let granted = entry.set_scheduler_traced(kind, &ctx);
            self.flush_outbox(entry, &ctx);
            Ok((kind, granted))
        })
    }

    /// Binds a tenant name into existence (the `hello` op's state
    /// effect; the per-connection binding itself lives in the server).
    pub fn hello(&self, tenant: &str) -> Result<(), ServiceError> {
        validate_tenant_name(tenant)?;
        self.registry.tenants().touch(tenant);
        Ok(())
    }

    /// Creates or reconfigures a tenant. Omitted fields keep their
    /// current values (the defaults for a new tenant); a quota or cap
    /// of `0` clears it back to unlimited. The *resulting* absolute
    /// configuration is journaled, so replay is last-writer-wins
    /// without needing the merge inputs.
    pub fn set_tenant(
        &self,
        tenant: &str,
        weight: Option<f64>,
        quota: Option<f64>,
        max_in_flight: Option<u64>,
    ) -> Result<TenantConfig, ServiceError> {
        validate_tenant_name(tenant)?;
        if let Some(w) = weight {
            if !w.is_finite() || w <= 0.0 {
                return Err(ServiceError::InvalidSpec(format!(
                    "tenant weight {w} (must be finite and positive)"
                )));
            }
        }
        if let Some(q) = quota {
            if !q.is_finite() || q < 0.0 {
                return Err(ServiceError::InvalidSpec(format!(
                    "tenant quota {q} (must be finite and non-negative; 0 clears it)"
                )));
            }
        }
        let table = self.registry.tenants();
        let current = table.config_of(Some(tenant));
        let config = TenantConfig {
            weight: weight.unwrap_or(current.weight),
            quota_node_seconds: match quota {
                None => current.quota_node_seconds,
                Some(0.0) => None,
                Some(q) => Some(q),
            },
            max_in_flight: match max_in_flight {
                None => current.max_in_flight,
                Some(0) => None,
                Some(cap) => Some(cap),
            },
        };
        table.configure(tenant, config.clone());
        if self.journal.durable() {
            self.journal.append(&JournalRecord::SetTenant {
                tenant: tenant.to_string(),
                weight: config.weight,
                quota: config.quota_node_seconds,
                max_in_flight: config.max_in_flight,
            });
        }
        Ok(config)
    }

    /// Toggles the weighted fair-share admission layer of `machine`,
    /// returning jobs the re-drain granted.
    #[allow(clippy::type_complexity)]
    pub fn set_fair_share(
        &self,
        machine: &str,
        enabled: bool,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        self.set_fair_share_traced(machine, enabled, &RequestCtx::inert())
    }

    /// [`AllocationService::set_fair_share`] with a tracing context.
    #[allow(clippy::type_complexity)]
    pub fn set_fair_share_traced(
        &self,
        machine: &str,
        enabled: bool,
        ctx: &RequestCtx<'_>,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        let ctx = ctx.with_machine(machine);
        self.registry.with_entry(machine, |entry| {
            let granted = entry.set_fair_share_traced(enabled, &ctx);
            self.flush_outbox(entry, &ctx);
            Ok(granted)
        })
    }

    /// The `tenants` op's body: one object per tenant (sorted by
    /// name) carrying the configuration and the live ledger figures.
    pub fn tenants_value(&self) -> Value {
        let mut out = Map::new();
        for row in self.registry.tenants().export() {
            let mut e = Map::new();
            e.insert("weight".into(), Value::Float(row.config.weight));
            if let Some(q) = row.config.quota_node_seconds {
                e.insert("quota_node_seconds".into(), Value::Float(q));
            }
            if let Some(cap) = row.config.max_in_flight {
                e.insert("max_in_flight".into(), Value::UInt(cap));
            }
            e.insert(
                "outstanding_node_seconds".into(),
                Value::Float(row.outstanding_node_seconds),
            );
            e.insert(
                "consumed_node_seconds".into(),
                Value::Float(row.consumed_node_seconds),
            );
            e.insert("admitted".into(), Value::UInt(row.admitted));
            e.insert("denied".into(), Value::UInt(row.denied));
            e.insert("queued".into(), Value::UInt(row.queued));
            e.insert("in_flight".into(), Value::UInt(row.in_flight));
            e.insert(
                "backpressure_pauses".into(),
                Value::UInt(row.backpressure_pauses),
            );
            if row.waits > 0 {
                e.insert(
                    "mean_weighted_wait".into(),
                    Value::Float(row.weighted_wait_sum / row.waits as f64),
                );
            }
            out.insert(row.tenant, Value::Object(e));
        }
        Value::Object(out)
    }

    /// Switches `machine` to virtual time and sets its clock to `t`
    /// seconds (deterministic replay and test harnesses; live daemons
    /// stay on wall time). Monotonic: earlier stamps are clamped.
    /// Addressing a pool (`"@pool"`) advances every member clock — the
    /// cluster replay harness keeps a pool on one logical clock this way.
    pub fn set_time(&self, machine: &str, t: f64) -> Result<(), ServiceError> {
        if let Some(pool) = pool_of(machine) {
            for member in self.router.members(pool)? {
                self.set_time(&member, t)?;
            }
            return Ok(());
        }
        self.registry.with_entry(machine, |entry| {
            entry.set_time(t);
            Ok(())
        })
    }

    /// Releases (or cancels) `job`, returning jobs granted from the queue.
    pub fn release(
        &self,
        machine: &str,
        job: u64,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        self.release_traced(machine, job, &RequestCtx::inert())
    }

    /// [`AllocationService::release`] with a tracing context (the wire
    /// path; in-process callers use the untraced wrapper).
    pub fn release_traced(
        &self,
        machine: &str,
        job: u64,
        ctx: &RequestCtx<'_>,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        let ctx = ctx.with_machine(machine);
        let granted = self.registry.with_entry(machine, |entry| {
            let granted = entry.release_traced(job, &ctx);
            self.flush_outbox(entry, &ctx);
            granted
        })?;
        if let Some(pool) = self.router.pool_of_member(machine) {
            self.job_index.remove(&pool, job, machine);
        }
        Ok(granted)
    }

    /// Resolves a `(machine address, job ref)` pair to the owning
    /// member. The rules, by address form:
    ///
    /// * `Some("name")` + bare ref → the named machine, directly.
    /// * `Some("name")` + qualified ref → the ref's machine must match
    ///   the address (a mismatch is a typed [`ServiceError::InvalidRequest`]).
    /// * `Some("@pool")` + bare ref → the pool job index resolves the
    ///   id; zero owners is [`ServiceError::UnknownJob`], two or more
    ///   the typed [`ServiceError::AmbiguousJob`] collision.
    /// * `Some("@pool")` + qualified ref → the ref's machine must be a
    ///   member of the pool (and a pooled ref must name that pool).
    /// * `None` → the ref must be qualified; a pooled ref additionally
    ///   verifies the machine's pool membership.
    pub fn resolve_job(&self, machine: Option<&str>, job: &JobRef) -> Result<String, ServiceError> {
        let member_of = |pool: &str, member: &str| match self.router.pool_of_member(member) {
            Some(p) if p == pool => Ok(()),
            _ => Err(ServiceError::InvalidRequest(format!(
                "machine {member:?} is not a member of pool {pool:?}"
            ))),
        };
        match machine {
            Some(addr) => match pool_of(addr) {
                Some(pool) => match job {
                    JobRef::Bare(id) => self.job_index.resolve(pool, *id),
                    JobRef::Member { machine, .. } => {
                        member_of(pool, machine)?;
                        Ok(machine.clone())
                    }
                    JobRef::Pooled {
                        pool: ref_pool,
                        machine,
                        ..
                    } => {
                        if ref_pool != pool {
                            return Err(ServiceError::InvalidRequest(format!(
                                "job ref names pool {ref_pool:?} but the request addresses {pool:?}"
                            )));
                        }
                        member_of(pool, machine)?;
                        Ok(machine.clone())
                    }
                },
                None => match job.machine() {
                    None => Ok(addr.to_string()),
                    Some(named) if named == addr => {
                        if let Some(ref_pool) = job.pool() {
                            member_of(ref_pool, named)?;
                        }
                        Ok(addr.to_string())
                    }
                    Some(named) => Err(ServiceError::InvalidRequest(format!(
                        "job ref names machine {named:?} but the request addresses {addr:?}"
                    ))),
                },
            },
            None => match job {
                JobRef::Bare(id) => Err(ServiceError::InvalidRequest(format!(
                    "bare job id {id} needs a machine or \"@pool\" address \
                     (or use a qualified \"machine/id\" ref)"
                ))),
                JobRef::Member { machine, .. } => Ok(machine.clone()),
                JobRef::Pooled { pool, machine, .. } => {
                    member_of(pool, machine)?;
                    Ok(machine.clone())
                }
            },
        }
    }

    /// Releases a job by [`JobRef`], resolving `@pool` addresses and
    /// qualified refs through [`AllocationService::resolve_job`].
    /// Returns the member the job resolved to alongside the grants.
    #[allow(clippy::type_complexity)]
    pub fn release_ref(
        &self,
        machine: Option<&str>,
        job: &JobRef,
    ) -> Result<(String, Vec<(u64, Vec<NodeId>)>), ServiceError> {
        let target = self.resolve_job(machine, job)?;
        let granted = self.release_traced(&target, job.id(), &RequestCtx::inert())?;
        Ok((target, granted))
    }

    /// Polls a job by [`JobRef`]; addressing matches
    /// [`AllocationService::release_ref`].
    pub fn poll_ref(
        &self,
        machine: Option<&str>,
        job: &JobRef,
    ) -> Result<(String, JobStatus), ServiceError> {
        let target = self.resolve_job(machine, job)?;
        let status = self.poll(&target, job.id())?;
        Ok((target, status))
    }

    /// Where `job` currently stands on `machine`.
    pub fn poll(&self, machine: &str, job: u64) -> Result<JobStatus, ServiceError> {
        self.registry
            .with_entry(machine, |entry| Ok(entry.poll(job)))
    }

    /// The journal-snapshot image of `machine` — its full durable state
    /// (config, clock, running jobs in grant order, queue). Public so
    /// recovery-equivalence harnesses can compare a recovered machine
    /// byte-for-byte against an uninterrupted one.
    pub fn machine_image(
        &self,
        machine: &str,
    ) -> Result<crate::journal::MachineImage, ServiceError> {
        self.registry
            .with_entry(machine, |entry| Ok(entry.capture_image()))
    }

    /// Occupancy snapshot of `machine`.
    pub fn query(&self, machine: &str) -> Result<MachineSnapshot, ServiceError> {
        self.registry
            .with_entry(machine, |entry| Ok(entry.snapshot()))
    }

    /// Counter snapshot of `machine` combined with server totals.
    pub fn stats(&self, machine: &str) -> Result<Value, ServiceError> {
        let (snapshot, machine_metrics) = self.registry.with_entry(machine, |entry| {
            Ok((entry.snapshot(), entry.metrics.clone()))
        })?;
        let mut m = Map::new();
        m.insert("machine".into(), snapshot.to_value());
        // Plain counters, minus the raw wait accumulator: the wait data
        // is surfaced once, as the count/mean/max summary below, so no
        // two dashboards read the same quantity from different shapes.
        let mut counters = Map::new();
        if let Some(full) = machine_metrics.to_value().as_object() {
            for (key, value) in full.iter().filter(|(key, _)| *key != "wait") {
                counters.insert(key.clone(), value.clone());
            }
        }
        m.insert("counters".into(), Value::Object(counters));
        // The queue wait-time summary (count/mean/max) the scheduling
        // policies compete on, precomputed so dashboards need no math.
        m.insert("wait".into(), machine_metrics.wait.to_summary_value());
        m.insert("server".into(), self.metrics.snapshot());
        // Durability at a glance: whether ops are journaled, and which
        // recovery epoch this incarnation runs under (how many restarts
        // rebuilt state from the journal). Full counters: journal_stats.
        let mut journal = Map::new();
        journal.insert("enabled".into(), Value::Bool(self.journal.durable()));
        journal.insert("epoch".into(), Value::UInt(self.journal.epoch()));
        m.insert("journal".into(), Value::Object(journal));
        // Request-pipeline stage latencies from the flight recorder
        // (process-wide, microsecond ticks; populated while tracing is
        // enabled). Sparse: an idle recorder costs a few bytes per stage.
        m.insert("stages".into(), self.stage_histograms_value());
        Ok(Value::Object(m))
    }

    /// Decodes a validated wire window spec (`"10s"` / `"60s"`) into its
    /// span in seconds; `None` = cumulative.
    fn window_secs(window: Option<&str>) -> Option<u64> {
        match window {
            Some("10s") => Some(10),
            Some("60s") => Some(60),
            _ => None,
        }
    }

    /// The per-stage latency histograms — cumulative, or restricted to
    /// the trailing `span` seconds — indexed by stage discriminant.
    fn stage_histograms_for(&self, span: Option<u64>) -> [LogLinearHistogram; Stage::HISTOGRAMMED] {
        match span {
            None => self.recorder.stage_histograms(),
            Some(span) => self
                .recorder
                .stage_windows(self.recorder.now_micros() / 1_000_000, span),
        }
    }

    /// The per-stage latency histograms as a JSON object keyed by stage
    /// name (shared by `stats` and `metrics`).
    fn stage_histograms_value(&self) -> Value {
        self.stage_histograms_value_for(None)
    }

    /// [`AllocationService::stage_histograms_value`] over a trailing
    /// window.
    fn stage_histograms_value_for(&self, span: Option<u64>) -> Value {
        let histograms = self.stage_histograms_for(span);
        let mut stages = Map::new();
        for (stage, histogram) in Stage::histogrammed().iter().zip(&histograms) {
            stages.insert(stage.name().into(), histogram.to_value());
        }
        Value::Object(stages)
    }

    /// The per-pool route-latency section: one entry per pool (name
    /// order) carrying the policy label and the cumulative or windowed
    /// histogram.
    fn pools_value(&self, span: Option<u64>) -> Value {
        let now_sec = self.recorder.now_micros() / 1_000_000;
        let pools = self.pool_windows.lock().expect("pool windows poisoned");
        let mut out = Map::new();
        for (pool, slot) in pools.iter() {
            let mut e = Map::new();
            e.insert("policy".into(), slot.policy.to_value());
            let histogram = match span {
                None => slot.cumulative.clone(),
                Some(span) => slot.window.merged(now_sec, span),
            };
            e.insert("route_latency_micros".into(), histogram.to_value());
            out.insert(pool.clone(), Value::Object(e));
        }
        Value::Object(out)
    }

    /// The `metrics` op's JSON body: process-wide counters, recorder
    /// state, the stage-latency histograms and the per-pool routing
    /// section (cumulative by default).
    pub fn metrics_value(&self) -> Value {
        self.metrics_value_windowed(None)
    }

    /// [`AllocationService::metrics_value`] restricted to a trailing
    /// window (`"10s"` / `"60s"`; `None` = since boot).
    pub fn metrics_value_windowed(&self, window: Option<&str>) -> Value {
        let span = Self::window_secs(window);
        let mut m = Map::new();
        m.insert("server".into(), self.metrics.snapshot());
        let mut tracing = Map::new();
        tracing.insert("enabled".into(), Value::Bool(self.recorder.enabled()));
        tracing.insert(
            "dropped_spans_total".into(),
            self.recorder.dropped_total().to_value(),
        );
        tracing.insert(
            "calibration".into(),
            Value::Bool(self.registry.calibration().enabled()),
        );
        m.insert("tracing".into(), Value::Object(tracing));
        if let Some(window) = window {
            m.insert("window".into(), window.to_value());
        }
        m.insert("stages".into(), self.stage_histograms_value_for(span));
        m.insert("pools".into(), self.pools_value(span));
        m.insert("tenants".into(), self.tenants_value());
        Value::Object(m)
    }

    /// The `metrics` op's Prometheus text exposition: the process
    /// counters as `commalloc_*` counters, the recorder toggle and
    /// journal recovery epoch as gauges, the lifetime span-drop total,
    /// one `commalloc_stage_latency_micros` histogram per pipeline
    /// stage, and one pool/policy-labeled
    /// `commalloc_pool_route_latency_micros` histogram per pool.
    pub fn prometheus_text(&self) -> String {
        self.prometheus_text_windowed(None)
    }

    /// [`AllocationService::prometheus_text`] with the stage and pool
    /// histograms restricted to a trailing window (counters and gauges
    /// stay cumulative — Prometheus rates them itself).
    pub fn prometheus_text_windowed(&self, window: Option<&str>) -> String {
        use std::fmt::Write;
        let span = Self::window_secs(window);
        let mut out = String::new();
        if let Value::Object(counters) = self.metrics.snapshot() {
            for (key, value) in counters.iter() {
                if let Some(n) = value.as_u64() {
                    let _ = writeln!(out, "# TYPE commalloc_{key} counter");
                    let _ = writeln!(out, "commalloc_{key} {n}");
                }
            }
        }
        let _ = writeln!(out, "# TYPE commalloc_dropped_spans_total counter");
        let _ = writeln!(
            out,
            "commalloc_dropped_spans_total {}",
            self.recorder.dropped_total()
        );
        let _ = writeln!(out, "# TYPE commalloc_recovery_epoch gauge");
        let _ = writeln!(out, "commalloc_recovery_epoch {}", self.journal.epoch());
        let _ = writeln!(out, "# TYPE commalloc_trace_enabled gauge");
        let _ = writeln!(
            out,
            "commalloc_trace_enabled {}",
            u8::from(self.recorder.enabled())
        );
        let _ = writeln!(out, "# TYPE commalloc_calibration_enabled gauge");
        let _ = writeln!(
            out,
            "commalloc_calibration_enabled {}",
            u8::from(self.registry.calibration().enabled())
        );
        let _ = writeln!(out, "# TYPE commalloc_stage_latency_micros histogram");
        let histograms = self.stage_histograms_for(span);
        for (stage, histogram) in Stage::histogrammed().iter().zip(&histograms) {
            histogram.prometheus_into(
                "commalloc_stage_latency_micros",
                &format!("stage=\"{}\"", stage.name()),
                &mut out,
            );
        }
        let now_sec = self.recorder.now_micros() / 1_000_000;
        let pools = self.pool_windows.lock().expect("pool windows poisoned");
        if !pools.is_empty() {
            let _ = writeln!(out, "# TYPE commalloc_pool_route_latency_micros histogram");
            for (pool, slot) in pools.iter() {
                let histogram = match span {
                    None => slot.cumulative.clone(),
                    Some(span) => slot.window.merged(now_sec, span),
                };
                histogram.prometheus_into(
                    "commalloc_pool_route_latency_micros",
                    &format!("pool=\"{pool}\",policy=\"{}\"", slot.policy),
                    &mut out,
                );
            }
        }
        let rows = self.registry.tenants().export();
        if !rows.is_empty() {
            type TenantSeries = (&'static str, fn(&crate::tenant::TenantExport) -> String);
            let counters: [TenantSeries; 7] = [
                ("commalloc_tenant_admitted_total", |r| {
                    r.admitted.to_string()
                }),
                ("commalloc_tenant_denied_total", |r| r.denied.to_string()),
                ("commalloc_tenant_queued", |r| r.queued.to_string()),
                ("commalloc_tenant_in_flight", |r| r.in_flight.to_string()),
                ("commalloc_tenant_backpressure_pauses_total", |r| {
                    r.backpressure_pauses.to_string()
                }),
                ("commalloc_tenant_outstanding_node_seconds", |r| {
                    format!("{}", r.outstanding_node_seconds)
                }),
                ("commalloc_tenant_consumed_node_seconds_total", |r| {
                    format!("{}", r.consumed_node_seconds)
                }),
            ];
            for (name, figure) in counters {
                let kind = if name.ends_with("_total") {
                    "counter"
                } else {
                    "gauge"
                };
                let _ = writeln!(out, "# TYPE {name} {kind}");
                for row in &rows {
                    let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", row.tenant, figure(row));
                }
            }
        }
        out
    }

    /// Names of all registered machines, sorted.
    pub fn list(&self) -> Vec<String> {
        self.registry.list()
    }

    /// Verifies the occupancy invariant of `machine` (test/ops helper).
    pub fn check_invariants(&self, machine: &str) -> Result<(), ServiceError> {
        self.registry.with_entry(machine, |entry| {
            entry
                .check_invariants()
                .map_err(ServiceError::InvalidRequest)
        })
    }

    /// Photographs the whole service for a journal snapshot: every
    /// machine under its own shard lock (name order, so images are
    /// deterministic) plus the pool table. `covers` is the WAL segment
    /// index the sink closed when rotation began.
    pub fn capture_snapshot(&self, covers: u64) -> JournalRecord {
        let mut machines = Vec::new();
        for name in self.list() {
            if let Ok(image) = self
                .registry
                .with_entry(&name, |entry| Ok(entry.capture_image()))
            {
                machines.push(image);
            }
        }
        let mut pools = Vec::new();
        for pool in self.router.pool_names() {
            if let (Ok(members), Ok(policy)) =
                (self.router.members(&pool), self.router.policy(&pool))
            {
                pools.push(PoolImage {
                    pool,
                    members,
                    policy: policy.name().to_string(),
                });
            }
        }
        let tenants = self
            .registry
            .tenants()
            .export()
            .into_iter()
            .map(|row| TenantImage {
                tenant: row.tenant,
                weight: row.config.weight,
                quota: row.config.quota_node_seconds,
                max_in_flight: row.config.max_in_flight,
                consumed: row.consumed_node_seconds,
            })
            .collect();
        JournalRecord::Snapshot(SnapshotImage {
            epoch: self.journal.epoch(),
            covers,
            machines,
            pools,
            tenants,
        })
    }

    /// Rotates the WAL, captures a snapshot and durably installs it
    /// (pruning the covered segments). Concurrency-safe: appends
    /// continue throughout (the per-machine watermark protocol makes
    /// the concurrent capture exact), but only one capture runs at a
    /// time.
    pub fn install_journal_snapshot(&self) -> std::io::Result<()> {
        if self
            .snapshotting
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return Ok(()); // another worker is already capturing
        }
        let covers = self.journal.begin_snapshot();
        let snapshot = self.capture_snapshot(covers);
        let result = self.journal.install_snapshot(&snapshot);
        self.snapshotting.store(false, Ordering::SeqCst);
        result
    }

    /// Recovery: folds one journal record into the state, through the
    /// non-journaling restore paths (replayed effects must not be
    /// re-appended). Grants re-occupy the exact recorded processors;
    /// releases and policy switches do **not** re-drain, because the
    /// grants a live drain produced replay as their own records.
    pub fn apply_journal_record(&self, record: &JournalRecord) -> Result<(), ServiceError> {
        let restore =
            |machine: &str, f: &mut dyn FnMut(&mut MachineEntry) -> Result<(), String>| {
                self.registry.with_entry(machine, |entry| {
                    f(entry).map_err(ServiceError::InvalidRequest)
                })
            };
        match record {
            JournalRecord::Register {
                machine,
                mesh,
                allocator,
                strategy,
                scheduler,
                pool,
            } => self.register_inner(
                machine,
                mesh,
                allocator.as_deref(),
                strategy.as_deref(),
                scheduler.as_deref(),
                pool.as_deref(),
                false,
            ),
            JournalRecord::Grant {
                machine,
                job,
                nodes,
                walltime,
                start,
                pattern,
                tenant,
            } => {
                restore(machine, &mut |entry| {
                    entry.restore_grant(
                        *job,
                        nodes.clone(),
                        *walltime,
                        *start,
                        *pattern,
                        tenant.clone(),
                    )
                })?;
                self.index_restored(machine, *job);
                Ok(())
            }
            JournalRecord::Queue {
                machine,
                job,
                size,
                walltime,
                enqueued_at,
                pattern,
                tenant,
            } => {
                restore(machine, &mut |entry| {
                    entry.restore_queue(
                        *job,
                        *size,
                        *walltime,
                        *enqueued_at,
                        *pattern,
                        tenant.clone(),
                    )
                })?;
                self.index_restored(machine, *job);
                Ok(())
            }
            JournalRecord::Release { machine, job } => {
                restore(machine, &mut |entry| entry.restore_release(*job))?;
                self.unindex_restored(machine, *job);
                Ok(())
            }
            JournalRecord::Cancel { machine, job } => {
                restore(machine, &mut |entry| entry.restore_cancel(*job))?;
                self.unindex_restored(machine, *job);
                Ok(())
            }
            JournalRecord::SetTenant {
                tenant,
                weight,
                quota,
                max_in_flight,
            } => {
                self.registry.tenants().configure(
                    tenant,
                    TenantConfig {
                        weight: *weight,
                        quota_node_seconds: *quota,
                        max_in_flight: *max_in_flight,
                    },
                );
                Ok(())
            }
            JournalRecord::SetFairShare { machine, enabled } => restore(machine, &mut |entry| {
                entry.restore_fair_share(*enabled);
                Ok(())
            }),
            JournalRecord::SetScheduler { machine, scheduler } => {
                let kind = parse_scheduler(scheduler)?;
                restore(machine, &mut |entry| {
                    entry.restore_scheduler(kind);
                    Ok(())
                })
            }
            JournalRecord::SetRouter { pool, policy } => {
                let parsed = RoutingPolicy::parse(policy).ok_or_else(|| {
                    ServiceError::InvalidSpec(format!("routing policy {policy:?}"))
                })?;
                self.router.set_policy(pool, parsed)
            }
            JournalRecord::Snapshot(_) => Err(ServiceError::InvalidRequest(
                "snapshot records live in the snapshot file, not the WAL tail".to_string(),
            )),
        }
    }

    /// Recovery: a replayed grant/queue of a pool member re-enters the
    /// pool job index (pool membership replays first — Register records
    /// precede grants of their machine in the journal).
    fn index_restored(&self, machine: &str, job: u64) {
        if let Some(pool) = self.router.pool_of_member(machine) {
            self.job_index.insert(&pool, job, machine);
        }
    }

    /// Recovery: a replayed release/cancel leaves the pool job index.
    fn unindex_restored(&self, machine: &str, job: u64) {
        if let Some(pool) = self.router.pool_of_member(machine) {
            self.job_index.remove(&pool, job, machine);
        }
    }

    /// Recovery: recomputes the tenant ledger's live gauges
    /// (outstanding node-second commitments, queued counts) exactly
    /// from the restored machines — the final recovery step, after the
    /// snapshot and the journal tail have both folded in. Configs and
    /// consumed totals restore from records; the live gauges are
    /// derived state and are rebuilt rather than replayed.
    pub fn rebuild_tenant_gauges(&self) {
        let mut outstanding: std::collections::HashMap<String, f64> = Default::default();
        let mut queued: std::collections::HashMap<String, u64> = Default::default();
        for name in self.list() {
            let Ok(image) = self
                .registry
                .with_entry(&name, |entry| Ok(entry.capture_image()))
            else {
                continue;
            };
            for r in &image.running {
                let tenant = tenant_or_default(r.tenant.as_deref()).to_string();
                *outstanding.entry(tenant).or_default() += job_cost(r.nodes.len(), r.walltime);
            }
            for q in &image.queue {
                let tenant = tenant_or_default(q.tenant.as_deref()).to_string();
                *outstanding.entry(tenant.clone()).or_default() += job_cost(q.size, q.walltime);
                *queued.entry(tenant).or_default() += 1;
            }
        }
        let table = self.registry.tenants();
        table.reset_outstanding(&outstanding);
        table.reset_queued(&queued);
    }

    /// Recovery: rebuilds the registry and pool table from a snapshot
    /// image. Returns the per-machine journal watermarks the tail fold
    /// gates on.
    pub fn apply_snapshot(
        &self,
        image: &SnapshotImage,
    ) -> Result<std::collections::HashMap<String, u64>, ServiceError> {
        let mut watermarks = std::collections::HashMap::new();
        for m in &image.machines {
            self.register_inner(
                &m.machine,
                &m.mesh,
                Some(&m.allocator),
                m.strategy.as_deref(),
                Some(&m.scheduler),
                None,
                false,
            )?;
            self.registry.with_entry(&m.machine, |entry| {
                entry.restore_clock(m.clock);
                entry.note_journal_seq(m.seq);
                entry.restore_fair_share(m.fair_share);
                for r in &m.running {
                    entry
                        .restore_grant(
                            r.job,
                            r.nodes.clone(),
                            r.walltime,
                            r.start,
                            r.pattern,
                            r.tenant.clone(),
                        )
                        .map_err(ServiceError::InvalidRequest)?;
                }
                for q in &m.queue {
                    entry
                        .restore_queue(
                            q.job,
                            q.size,
                            q.walltime,
                            q.enqueued_at,
                            q.pattern,
                            q.tenant.clone(),
                        )
                        .map_err(ServiceError::InvalidRequest)?;
                }
                Ok(())
            })?;
            watermarks.insert(m.machine.clone(), m.seq);
        }
        for t in &image.tenants {
            self.registry.tenants().restore(
                &t.tenant,
                TenantConfig {
                    weight: t.weight,
                    quota_node_seconds: t.quota,
                    max_in_flight: t.max_in_flight,
                },
                t.consumed,
            );
        }
        for p in &image.pools {
            // The machine list and the pool table are photographed under
            // different locks, so a machine registering mid-capture can
            // appear as a pool member without a machine image. Its
            // Register record (which carries the pool) replays from the
            // tail when it was durable; when it was not, the member must
            // not be resurrected — a ghost member fails every route to
            // the pool with UnknownMachine.
            let mut created = false;
            for member in &p.members {
                if watermarks.contains_key(member) {
                    self.router.add_member(&p.pool, member);
                    created = true;
                }
            }
            if created {
                let policy = RoutingPolicy::parse(&p.policy).ok_or_else(|| {
                    ServiceError::InvalidSpec(format!("routing policy {:?}", p.policy))
                })?;
                self.router.set_policy(&p.pool, policy)?;
            }
            // No surviving member: the pool replays entirely from tail
            // records (or was lost with its only registration).
        }
        // Pool membership is in place now: index every restored job of
        // a pool member so `@pool` bare-id resolution survives the
        // restart (tail records maintain the index incrementally).
        for m in &image.machines {
            if let Some(pool) = self.router.pool_of_member(&m.machine) {
                for r in &m.running {
                    self.job_index.insert(&pool, r.job, &m.machine);
                }
                for q in &m.queue {
                    self.job_index.insert(&pool, q.job, &m.machine);
                }
            }
        }
        Ok(watermarks)
    }

    /// The `journal_stats` response body: the sink's operational
    /// counters, or `{"enabled": false}` when journaling is off.
    pub fn journal_stats(&self) -> Value {
        match self.journal.stats_value() {
            Some(Value::Object(mut m)) => {
                m.insert("enabled".into(), Value::Bool(true));
                Value::Object(m)
            }
            _ => {
                let mut m = Map::new();
                m.insert("enabled".into(), Value::Bool(false));
                Value::Object(m)
            }
        }
    }

    /// Dispatches one protocol request to the state layer — the single
    /// entry point shared by the TCP server, tests and the loadgen
    /// driver. Untraced: in-process callers pay nothing for the flight
    /// recorder; the TCP server mints a context and calls
    /// [`AllocationService::handle_traced`] instead.
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_traced(request, &RequestCtx::inert())
    }

    /// [`AllocationService::handle`] with a tracing context: spans
    /// emitted along the way (route, queue, allocator probe, grant/deny,
    /// journal append, fsync wait) carry the context's request ID.
    pub fn handle_traced(&self, request: &Request, ctx: &RequestCtx<'_>) -> Response {
        // A batch is an envelope, not an operation: each member counts
        // as its own request below, the envelope itself is free.
        if let Request::Batch(requests) = request {
            return Response::Batch(
                requests
                    .iter()
                    .map(|member| match member {
                        Request::Batch(_) => Response::Error {
                            message: "batches do not nest".to_string(),
                            code: None,
                            detail: None,
                        },
                        other => self.handle_traced(other, ctx),
                    })
                    .collect(),
            );
        }
        let result = match request {
            Request::Batch(_) => unreachable!("batches are handled above"),
            Request::Register {
                machine,
                mesh,
                allocator,
                strategy,
                scheduler,
                pool,
            } => self
                .register_in_pool(
                    machine,
                    mesh,
                    allocator.as_deref(),
                    strategy.as_deref(),
                    scheduler.as_deref(),
                    pool.as_deref(),
                )
                .map(|()| Response::Registered {
                    machine: machine.clone(),
                }),
            Request::Alloc {
                machine,
                job,
                size,
                wait,
                walltime,
                pattern,
                tenant,
            } => match pool_of(machine) {
                Some(pool) => self
                    .route_traced(
                        pool,
                        *job,
                        *size,
                        *wait,
                        *walltime,
                        *pattern,
                        tenant.as_deref(),
                        ctx,
                    )
                    .map(|(target, outcome)| match outcome {
                        AllocOutcome::Granted(nodes) => Response::Granted {
                            job: *job,
                            nodes,
                            machine: Some(target),
                        },
                        AllocOutcome::Queued(position) => Response::Queued {
                            job: *job,
                            position,
                            machine: Some(target),
                        },
                        AllocOutcome::Rejected(reason) => Response::Rejected {
                            job: *job,
                            reason,
                            machine: Some(target),
                        },
                    }),
                None => self
                    .allocate_traced(
                        machine,
                        *job,
                        *size,
                        *wait,
                        *walltime,
                        *pattern,
                        tenant.as_deref(),
                        ctx,
                    )
                    .map(|outcome| match outcome {
                        AllocOutcome::Granted(nodes) => Response::Granted {
                            job: *job,
                            nodes,
                            machine: None,
                        },
                        AllocOutcome::Queued(position) => Response::Queued {
                            job: *job,
                            position,
                            machine: None,
                        },
                        AllocOutcome::Rejected(reason) => Response::Rejected {
                            job: *job,
                            reason,
                            machine: None,
                        },
                    }),
            },
            Request::SetRouter { pool, policy } => {
                self.set_router(pool, policy)
                    .map(|active| Response::RouterSet {
                        pool: pool.clone(),
                        policy: active.name().to_string(),
                    })
            }
            Request::SetScheduler { machine, scheduler } => self
                .set_scheduler_traced(machine, scheduler, ctx)
                .map(|(kind, granted)| Response::SchedulerSet {
                    machine: machine.clone(),
                    scheduler: kind.name().to_string(),
                    granted,
                }),
            Request::Release { machine, job } => {
                // The resolved member travels back exactly when the
                // request used the new addressing (a pool address or a
                // qualified ref) — plain `machine + bare id` answers
                // keep their pre-refactor bytes.
                let qualified = machine.as_deref().is_none_or(|m| m.starts_with('@'))
                    || job.machine().is_some();
                self.resolve_job(machine.as_deref(), job)
                    .and_then(|target| {
                        let granted = self.release_traced(&target, job.id(), ctx)?;
                        Ok(Response::Released {
                            job: job.id(),
                            granted,
                            machine: qualified.then_some(target),
                        })
                    })
            }
            Request::Poll { machine, job } => {
                let qualified = machine.as_deref().is_none_or(|m| m.starts_with('@'))
                    || job.machine().is_some();
                self.resolve_job(machine.as_deref(), job)
                    .and_then(|target| {
                        let job = job.id();
                        self.registry.with_entry(&target, |entry| {
                            Ok(match entry.poll(job) {
                                JobStatus::Running(nodes) => Response::Running {
                                    job,
                                    nodes,
                                    machine: qualified.then(|| target.clone()),
                                },
                                JobStatus::Queued(position) => {
                                    // Same lock hold as the poll itself, so the
                                    // outlook describes the position just reported.
                                    let outlook = entry.queue_outlook(job);
                                    Response::Waiting {
                                        job,
                                        position,
                                        reserved_start: outlook
                                            .as_ref()
                                            .and_then(|o| o.reserved_start),
                                        explain: outlook
                                            .and_then(|o| o.explain)
                                            .map(|reason| crate::trace::reason_to_value(&reason)),
                                        machine: qualified.then(|| target.clone()),
                                    }
                                }
                                JobStatus::Unknown => Response::Unknown { job },
                            })
                        })
                    })
            }
            Request::Hello { tenant } => self.hello(tenant).map(|()| Response::Hello {
                tenant: tenant.clone(),
            }),
            Request::SetTenant {
                tenant,
                weight,
                quota,
                max_in_flight,
            } => self
                .set_tenant(tenant, *weight, *quota, *max_in_flight)
                .map(|config| Response::TenantSet {
                    tenant: tenant.clone(),
                    weight: config.weight,
                    quota: config.quota_node_seconds,
                    max_in_flight: config.max_in_flight,
                }),
            Request::Tenants => Ok(Response::Tenants(self.tenants_value())),
            Request::SetFairShare { machine, enabled } => self
                .set_fair_share_traced(machine, *enabled, ctx)
                .map(|granted| Response::FairShareSet {
                    machine: machine.clone(),
                    enabled: *enabled,
                    granted,
                }),
            Request::Query { machine } => match pool_of(machine) {
                Some(pool) => self.pool_snapshot(pool).map(Response::Snapshot),
                None => self
                    .query(machine)
                    .map(|snapshot| Response::Snapshot(snapshot.to_value())),
            },
            Request::Stats { machine } => self.stats(machine).map(Response::Stats),
            Request::JournalStats => Ok(Response::JournalStats(self.journal_stats())),
            Request::SetTrace {
                enabled,
                calibration,
            } => {
                self.recorder.set_enabled(*enabled);
                if let Some(calibration) = calibration {
                    self.registry.calibration().set_enabled(*calibration);
                }
                Ok(Response::TraceSet { enabled: *enabled })
            }
            Request::Trace { limit, clear } => {
                let (events, dropped) = self.recorder.drain(*limit, *clear);
                Ok(Response::Trace {
                    events: events
                        .iter()
                        .map(|event| self.recorder.event_to_value(event))
                        .collect(),
                    dropped,
                    enabled: self.recorder.enabled(),
                    decisions: self.recorder.decisions(*limit, *clear),
                })
            }
            Request::Metrics { format, window } => Ok(Response::Metrics {
                format: format.clone(),
                metrics: if format == "prometheus" {
                    Value::Str(self.prometheus_text_windowed(window.as_deref()))
                } else {
                    self.metrics_value_windowed(window.as_deref())
                },
            }),
            Request::Calibration => Ok(Response::Calibration(
                self.registry.calibration().to_value(),
            )),
            Request::List => Ok(Response::Machines(self.list())),
            Request::Ping => Ok(Response::Pong),
        };
        ServiceMetrics::bump(&self.metrics.requests);
        // Compaction rides the request path: once enough records
        // accumulated, whichever worker notices captures the snapshot
        // (appends from the other workers continue meanwhile).
        if self.journal.snapshot_due() {
            if let Err(e) = self.install_journal_snapshot() {
                eprintln!("commalloc-service: journal snapshot failed: {e}");
            }
        }
        result.unwrap_or_else(|err| {
            ServiceMetrics::bump(&self.metrics.errors);
            error_response(&err)
        })
    }
}

/// Renders a service error as its wire shape. Every error carries a
/// message; the errors clients are expected to branch on (quota
/// denials, pool-index collisions) additionally carry a
/// machine-readable `code` and a structured `detail`.
pub fn error_response(err: &ServiceError) -> Response {
    let (code, detail) = match err {
        ServiceError::QuotaExceeded {
            tenant,
            usage,
            limit,
        } => {
            let mut d = Map::new();
            d.insert("tenant".into(), tenant.to_value());
            d.insert("usage".into(), Value::Float(*usage));
            d.insert("limit".into(), Value::Float(*limit));
            (Some("quota_exceeded".to_string()), Some(Value::Object(d)))
        }
        ServiceError::AmbiguousJob {
            pool,
            job_id,
            machines,
        } => {
            let mut d = Map::new();
            d.insert("pool".into(), pool.to_value());
            d.insert("job".into(), Value::UInt(*job_id));
            d.insert(
                "machines".into(),
                Value::Array(machines.iter().map(|m| m.to_value()).collect()),
            );
            (Some("ambiguous_job".to_string()), Some(Value::Object(d)))
        }
        _ => (None, None),
    };
    Response::Error {
        message: err.to_string(),
        code,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_dispatches_on_dimension_count() {
        let service = AllocationService::new();
        service.register("flat", "16x22", None, None, None).unwrap();
        service
            .register("cube", "4x4x4", Some("snake-3d"), Some("FF"), Some("easy"))
            .unwrap();
        assert_eq!(service.list(), vec!["cube".to_string(), "flat".to_string()]);
        let flat = service.query("flat").unwrap();
        assert_eq!(flat.dims, "16x22");
        assert_eq!(flat.allocator, "Hilbert w/BF");
        assert_eq!(flat.scheduler, "FCFS");
        let cube = service.query("cube").unwrap();
        assert_eq!(cube.dims, "4x4x4");
        assert_eq!(cube.allocator, "snake-3d w/FF");
        assert_eq!(cube.scheduler, "EASY backfill");
    }

    #[test]
    fn bad_specs_are_invalid_spec_errors() {
        let service = AllocationService::new();
        for (mesh, allocator, strategy, scheduler) in [
            ("16", None, None, None),
            ("0x4", None, None, None),
            ("4x4x4x4", None, None, None),
            ("16x16", Some("nonsense"), None, None),
            ("16x16", None, Some("BF"), None), // strategy is 3-D-only
            ("4x4x4", Some("not-a-curve"), None, None),
            ("4x4x4", None, Some("ZZ"), None),
            ("16x16", None, None, Some("round-robin")),
            ("2048x2048", None, None, None), // 4M nodes, above the cap
            ("65535x65535x4", None, None, None), // would overflow u32 node ids
        ] {
            let got = service.register("m", mesh, allocator, strategy, scheduler);
            assert!(
                matches!(got, Err(ServiceError::InvalidSpec(_))),
                "{mesh:?}/{allocator:?}/{strategy:?}/{scheduler:?} gave {got:?}"
            );
        }
    }

    #[test]
    fn set_scheduler_dispatches_and_reports_grants() {
        let service = AllocationService::new();
        service.register("m0", "4x4", None, None, None).unwrap();
        service.allocate("m0", 1, 15, false, None).unwrap();
        service.allocate("m0", 2, 8, true, None).unwrap();
        service.allocate("m0", 3, 1, true, None).unwrap();
        // Unknown policy and unknown machine are errors.
        assert!(matches!(
            service.set_scheduler("m0", "round-robin"),
            Err(ServiceError::InvalidSpec(_))
        ));
        assert!(matches!(
            service.set_scheduler("nope", "easy"),
            Err(ServiceError::UnknownMachine(_))
        ));
        // Switching to backfill over the protocol admits job 3.
        let response = service.handle(&Request::SetScheduler {
            machine: "m0".into(),
            scheduler: "backfill".into(),
        });
        let Response::SchedulerSet {
            machine,
            scheduler,
            granted,
        } = response
        else {
            panic!("expected SchedulerSet, got {response:?}");
        };
        assert_eq!(machine, "m0");
        assert_eq!(scheduler, "first-fit backfill");
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].0, 3);
        assert_eq!(service.query("m0").unwrap().scheduler, "first-fit backfill");
        service.check_invariants("m0").unwrap();
    }

    #[test]
    fn poisoned_walltimes_get_typed_errors_not_grants() {
        // The regression the walltime boundary rule exists for: a
        // client-supplied NaN used to flow through
        // `walltime.unwrap_or(INFINITY)` into the reservation min/compare
        // logic, where NaN ordering silently corrupts shadow times. Every
        // non-finite or non-positive estimate must come back as a typed
        // error — never a grant.
        let service = AllocationService::new();
        service
            .register("m0", "16x16", None, None, Some("conservative"))
            .unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -30.0] {
            let response = service.handle(&Request::Alloc {
                machine: "m0".into(),
                job: 7,
                size: 4,
                wait: true,
                walltime: Some(bad),
                pattern: None,
                tenant: None,
            });
            assert!(
                matches!(response, Response::Error { .. }),
                "walltime {bad} gave {response:?}"
            );
        }
        // Nothing leaked into the machine: no grant, no queue entry.
        assert!(matches!(service.poll("m0", 7), Ok(JobStatus::Unknown)));
        let snap = service.query("m0").unwrap();
        assert_eq!(snap.busy, 0);
        assert_eq!(snap.queue_len, 0);
        // And the journal-recovery fold refuses a corrupt record rather
        // than resurrecting the poisoned estimate.
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(service
                .apply_journal_record(&JournalRecord::Queue {
                    machine: "m0".into(),
                    job: 8,
                    size: 4,
                    walltime: Some(bad),
                    enqueued_at: 0.0,
                    pattern: None,
                    tenant: None,
                })
                .is_err());
        }
    }

    #[test]
    fn pool_routing_round_trips_through_handle() {
        let service = AllocationService::new();
        for (name, mesh) in [("m0", "8x8"), ("m1", "4x4")] {
            service
                .register_in_pool(name, mesh, None, None, None, Some("grid"))
                .unwrap();
        }
        // Round-robin: the first route (seq 0) lands on m0, the next on m1.
        let response = service.handle(&Request::Alloc {
            machine: "@grid".into(),
            job: 1,
            size: 4,
            wait: false,
            walltime: None,
            pattern: None,
            tenant: None,
        });
        let Response::Granted {
            machine: Some(target),
            ref nodes,
            ..
        } = response
        else {
            panic!("expected a routed grant, got {response:?}");
        };
        assert_eq!(target, "m0");
        assert_eq!(nodes.len(), 4);
        let (target, outcome) = service.route("grid", 2, 4, false, None, None).unwrap();
        assert_eq!(target, "m1");
        assert!(matches!(outcome, AllocOutcome::Granted(_)));
        // A 40-processor job fits only m0 (64 nodes): eligibility filters
        // m1 (16 nodes) out before the pick.
        let (target, _) = service.route("grid", 3, 40, false, None, None).unwrap();
        assert_eq!(target, "m0");
        // Nothing in the pool fits 100 processors.
        assert!(matches!(
            service.route("grid", 4, 100, false, None, None),
            Err(ServiceError::InvalidRequest(_))
        ));
        assert!(matches!(
            service.route("nope", 5, 1, false, None, None),
            Err(ServiceError::UnknownPool(_))
        ));
        // Policy switch over the protocol, with alias expansion.
        assert_eq!(
            service.handle(&Request::SetRouter {
                pool: "grid".into(),
                policy: "ll".into(),
            }),
            Response::RouterSet {
                pool: "grid".into(),
                policy: "least-loaded".into(),
            }
        );
        assert!(matches!(
            service.set_router("grid", "hash-ring"),
            Err(ServiceError::InvalidSpec(_))
        ));
        // Query with the sigil returns the pool snapshot: totals plus the
        // member snapshots in sorted name order.
        let response = service.handle(&Request::Query {
            machine: "@grid".into(),
        });
        let Response::Snapshot(snap) = response else {
            panic!("expected a snapshot, got {response:?}");
        };
        assert_eq!(
            snap.get("router").and_then(Value::as_str),
            Some("least-loaded")
        );
        assert_eq!(snap.get("nodes").and_then(Value::as_u64), Some(80));
        assert_eq!(snap.get("busy").and_then(Value::as_u64), Some(48));
        let members = snap.get("machines").and_then(Value::as_array).unwrap();
        let names: Vec<&str> = members
            .iter()
            .map(|m| m.get("machine").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(names, vec!["m0", "m1"]);
        for machine in ["m0", "m1"] {
            service.check_invariants(machine).unwrap();
        }
    }

    #[test]
    fn machine_and_pool_names_reject_the_sigil() {
        let service = AllocationService::new();
        assert!(matches!(
            service.register("@m", "4x4", None, None, None),
            Err(ServiceError::InvalidSpec(_))
        ));
        assert!(matches!(
            service.register_in_pool("m", "4x4", None, None, None, Some("@p")),
            Err(ServiceError::InvalidSpec(_))
        ));
        assert!(matches!(
            service.register_in_pool("m", "4x4", None, None, None, Some("")),
            Err(ServiceError::InvalidSpec(_))
        ));
        // A failed registration joins no pool.
        assert!(service
            .register_in_pool("m", "not-a-mesh", None, None, None, Some("p"))
            .is_err());
        assert!(matches!(
            service.router().members("p"),
            Err(ServiceError::UnknownPool(_))
        ));
    }

    #[test]
    fn batches_fan_out_and_keep_request_order() {
        let service = AllocationService::new();
        service.register("m0", "4x4", None, None, None).unwrap();
        let response = service.handle(&Request::Batch(vec![
            Request::Ping,
            Request::Alloc {
                machine: "m0".into(),
                job: 1,
                size: 4,
                wait: false,
                walltime: None,
                pattern: None,
                tenant: None,
            },
            Request::Release {
                machine: Some("m0".into()),
                job: JobRef::Bare(1),
            },
            Request::Alloc {
                machine: "m0".into(),
                job: 2,
                size: 999,
                wait: false,
                walltime: None,
                pattern: None,
                tenant: None,
            },
            Request::Batch(vec![Request::Ping]),
        ]));
        let Response::Batch(responses) = response else {
            panic!("expected a batch, got {response:?}");
        };
        assert_eq!(responses.len(), 5);
        assert_eq!(responses[0], Response::Pong);
        assert!(matches!(responses[1], Response::Granted { job: 1, .. }));
        assert!(matches!(responses[2], Response::Released { job: 1, .. }));
        // A member error answers that slot only; the rest still ran.
        assert!(matches!(responses[3], Response::Error { .. }));
        assert!(matches!(responses[4], Response::Error { .. }), "no nesting");
        service.check_invariants("m0").unwrap();
    }

    #[test]
    fn handle_maps_outcomes_onto_protocol_responses() {
        let service = AllocationService::new();
        let register = Request::Register {
            machine: "m0".into(),
            mesh: "4x4".into(),
            allocator: None,
            strategy: None,
            scheduler: None,
            pool: None,
        };
        assert_eq!(
            service.handle(&register),
            Response::Registered {
                machine: "m0".into()
            }
        );
        // Re-registering is a protocol error.
        assert!(matches!(service.handle(&register), Response::Error { .. }));
        let grant = service.handle(&Request::Alloc {
            machine: "m0".into(),
            job: 1,
            size: 16,
            wait: false,
            walltime: None,
            pattern: None,
            tenant: None,
        });
        let Response::Granted {
            job: 1,
            nodes,
            machine: None,
        } = grant
        else {
            panic!("expected grant, got {grant:?}");
        };
        assert_eq!(nodes.len(), 16);
        // Machine is full: non-wait rejects, wait queues.
        assert!(matches!(
            service.handle(&Request::Alloc {
                machine: "m0".into(),
                job: 2,
                size: 1,
                wait: false,
                walltime: None,
                pattern: None,
                tenant: None,
            }),
            Response::Rejected { job: 2, .. }
        ));
        assert_eq!(
            service.handle(&Request::Alloc {
                machine: "m0".into(),
                job: 3,
                size: 2,
                wait: true,
                walltime: None,
                pattern: None,
                tenant: None,
            }),
            Response::Queued {
                job: 3,
                position: 1,
                machine: None
            }
        );
        let waiting = service.handle(&Request::Poll {
            machine: Some("m0".into()),
            job: JobRef::Bare(3),
        });
        let Response::Waiting {
            job: 3,
            position: 1,
            reserved_start: None, // FCFS promises no start times
            explain: Some(explain),
            machine: None,
        } = waiting
        else {
            panic!("expected waiting with an explanation, got {waiting:?}");
        };
        // The machine is full: the head is blocked on capacity.
        assert_eq!(
            explain.get("reason").and_then(Value::as_str),
            Some("insufficient_free")
        );
        assert_eq!(explain.get("needed").and_then(Value::as_u64), Some(2));
        // Releasing the full job admits the queued one.
        let released = service.handle(&Request::Release {
            machine: Some("m0".into()),
            job: JobRef::Bare(1),
        });
        let Response::Released {
            job: 1,
            granted,
            machine: None,
        } = released
        else {
            panic!("expected release, got {released:?}");
        };
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].0, 3);
        assert_eq!(granted[0].1.len(), 2);
        service.check_invariants("m0").unwrap();
        let stats = service.handle(&Request::Stats {
            machine: "m0".into(),
        });
        let Response::Stats(stats) = stats else {
            panic!("expected stats, got {stats:?}");
        };
        let counters = stats.get("counters").expect("counters present");
        assert_eq!(counters.get("granted").and_then(Value::as_u64), Some(1));
        assert_eq!(
            counters.get("granted_from_queue").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(counters.get("rejected").and_then(Value::as_u64), Some(1));
    }
}
