//! The in-process service API and the protocol dispatcher.
//!
//! [`AllocationService`] is a cheaply cloneable handle (an `Arc` around the
//! sharded [`Registry`] plus process-wide counters) usable directly from
//! any thread; the TCP [`crate::server::Server`] is a thin transport over
//! [`AllocationService::handle`].

use crate::metrics::ServiceMetrics;
use crate::protocol::{Request, Response};
use crate::registry::{MachineSnapshot, Registry, ServiceError};
use commalloc::scheduler::SchedulerKind;
use commalloc_alloc::curve_alloc::SelectionStrategy;
use commalloc_alloc::AllocatorKind;
use commalloc_mesh::curve3d::Curve3Kind;
use commalloc_mesh::{Mesh2D, Mesh3D, NodeId};
use serde::{Map, Serialize, Value};
use std::sync::Arc;

pub use crate::registry::{AllocOutcome, JobStatus};

/// A shareable handle to the allocation daemon's state.
#[derive(Clone, Default)]
pub struct AllocationService {
    registry: Arc<Registry>,
    metrics: Arc<ServiceMetrics>,
}

/// Largest machine the service will register: caps the memory one
/// network request can force (bitmaps, curve orders) and keeps 3-D node
/// arithmetic far from `u32` overflow.
pub const MAX_MACHINE_NODES: u64 = 1 << 20;

/// Parses `"16x16"` / `"4x4x4"` into dimensions, enforcing
/// [`MAX_MACHINE_NODES`].
fn parse_dims(spec: &str) -> Result<Vec<u16>, ServiceError> {
    let dims: Option<Vec<u16>> = spec
        .split(['x', 'X'])
        .map(|part| part.trim().parse::<u16>().ok().filter(|&d| d > 0))
        .collect();
    match dims {
        Some(dims) if dims.len() == 2 || dims.len() == 3 => {
            let nodes: u64 = dims.iter().map(|&d| d as u64).product();
            if nodes > MAX_MACHINE_NODES {
                return Err(ServiceError::InvalidSpec(format!(
                    "mesh {spec:?} has {nodes} nodes, above the {MAX_MACHINE_NODES}-node limit"
                )));
            }
            Ok(dims)
        }
        _ => Err(ServiceError::InvalidSpec(format!(
            "mesh {spec:?} (expected WxH or WxHxD with positive sizes)"
        ))),
    }
}

/// Parses a selection-strategy spec (`"BF"`, `"FF"`, `"free list"`,
/// `"SS"`, case-insensitive).
fn parse_strategy(spec: &str) -> Result<SelectionStrategy, ServiceError> {
    let all = [
        SelectionStrategy::FreeList,
        SelectionStrategy::FirstFit,
        SelectionStrategy::BestFit,
        SelectionStrategy::SumOfSquares,
    ];
    all.into_iter()
        .find(|s| s.short_name().eq_ignore_ascii_case(spec.trim()))
        .ok_or_else(|| {
            ServiceError::InvalidSpec(format!(
                "strategy {spec:?} (expected one of: free list, FF, BF, SS)"
            ))
        })
}

/// Parses a scheduler spec (`"fcfs"`, `"backfill"`, `"easy"` or a full
/// [`SchedulerKind`] name, case-insensitive).
fn parse_scheduler(spec: &str) -> Result<SchedulerKind, ServiceError> {
    SchedulerKind::parse(spec).ok_or_else(|| {
        ServiceError::InvalidSpec(format!(
            "scheduler {spec:?} (expected one of: fcfs, backfill, easy)"
        ))
    })
}

/// Parses a 3-D curve spec (`"Hilbert-3d"`, `"snake-3d"`, ...).
fn parse_curve3(spec: &str) -> Result<Curve3Kind, ServiceError> {
    Curve3Kind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(spec.trim()))
        .ok_or_else(|| {
            ServiceError::InvalidSpec(format!(
                "3-D curve {spec:?} (expected one of: {})",
                Curve3Kind::all().map(|k| k.name()).join(", ")
            ))
        })
}

impl AllocationService {
    /// A fresh service with the default shard count and no machines.
    pub fn new() -> Self {
        AllocationService::default()
    }

    /// A fresh service with an explicit lock-shard count.
    pub fn with_shards(shards: usize) -> Self {
        AllocationService {
            registry: Arc::new(Registry::with_shards(shards)),
            metrics: Arc::new(ServiceMetrics::default()),
        }
    }

    /// The process-wide counters (shared with the TCP server).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// Registers a machine from string specs. Two dimensions select the
    /// 2-D path (`allocator` names an [`AllocatorKind`], default
    /// `"Hilbert w/BF"`); three dimensions select the 3-D curve path
    /// (`allocator` names a [`Curve3Kind`], default Hilbert, with
    /// `strategy` defaulting to Best Fit). `scheduler` picks the
    /// admission policy (default FCFS, the paper's discipline).
    pub fn register(
        &self,
        machine: &str,
        mesh: &str,
        allocator: Option<&str>,
        strategy: Option<&str>,
        scheduler: Option<&str>,
    ) -> Result<(), ServiceError> {
        if machine.is_empty() {
            return Err(ServiceError::InvalidSpec(
                "machine name must be non-empty".to_string(),
            ));
        }
        let scheduler = match scheduler {
            None => SchedulerKind::Fcfs,
            Some(spec) => parse_scheduler(spec)?,
        };
        let dims = parse_dims(mesh)?;
        match dims.as_slice() {
            [w, h] => {
                let kind = match allocator {
                    None => AllocatorKind::HilbertBestFit,
                    Some(spec) => AllocatorKind::parse(spec)
                        .ok_or_else(|| ServiceError::InvalidSpec(format!("allocator {spec:?}")))?,
                };
                if strategy.is_some() {
                    return Err(ServiceError::InvalidSpec(
                        "\"strategy\" applies only to 3-D machines; \
                         2-D allocators are fully named (e.g. \"Hilbert w/BF\")"
                            .to_string(),
                    ));
                }
                self.registry
                    .register_2d(machine, Mesh2D::new(*w, *h), kind, scheduler)
            }
            [w, h, d] => {
                let curve = match allocator {
                    None => Curve3Kind::Hilbert,
                    Some(spec) => parse_curve3(spec)?,
                };
                let strategy = match strategy {
                    None => SelectionStrategy::BestFit,
                    Some(spec) => parse_strategy(spec)?,
                };
                self.registry.register_3d(
                    machine,
                    Mesh3D::new(*w, *h, *d),
                    curve,
                    strategy,
                    scheduler,
                )
            }
            _ => unreachable!("parse_dims yields 2 or 3 dims"),
        }
    }

    /// Registers a 2-D machine under FCFS (convenience wrapper over
    /// [`AllocationService::register`]).
    pub fn register_2d(
        &self,
        machine: &str,
        mesh: &str,
        allocator: &str,
    ) -> Result<(), ServiceError> {
        self.register(machine, mesh, Some(allocator), None, None)
    }

    /// Allocates `size` processors for `job` on `machine`. `walltime` is
    /// the client's runtime estimate in seconds (used by EASY
    /// backfilling; pass `None` when unknown).
    pub fn allocate(
        &self,
        machine: &str,
        job: u64,
        size: usize,
        wait: bool,
        walltime: Option<f64>,
    ) -> Result<AllocOutcome, ServiceError> {
        self.registry
            .with_entry(machine, |entry| entry.allocate(job, size, wait, walltime))
    }

    /// Switches the scheduling policy of `machine` at runtime, returning
    /// the now-active kind and any jobs the re-drain granted.
    #[allow(clippy::type_complexity)]
    pub fn set_scheduler(
        &self,
        machine: &str,
        scheduler: &str,
    ) -> Result<(SchedulerKind, Vec<(u64, Vec<NodeId>)>), ServiceError> {
        let kind = parse_scheduler(scheduler)?;
        self.registry
            .with_entry(machine, |entry| Ok((kind, entry.set_scheduler(kind))))
    }

    /// Switches `machine` to virtual time and sets its clock to `t`
    /// seconds (deterministic replay and test harnesses; live daemons
    /// stay on wall time). Monotonic: earlier stamps are clamped.
    pub fn set_time(&self, machine: &str, t: f64) -> Result<(), ServiceError> {
        self.registry.with_entry(machine, |entry| {
            entry.set_time(t);
            Ok(())
        })
    }

    /// Releases (or cancels) `job`, returning jobs granted from the queue.
    pub fn release(
        &self,
        machine: &str,
        job: u64,
    ) -> Result<Vec<(u64, Vec<NodeId>)>, ServiceError> {
        self.registry
            .with_entry(machine, |entry| entry.release(job))
    }

    /// Where `job` currently stands on `machine`.
    pub fn poll(&self, machine: &str, job: u64) -> Result<JobStatus, ServiceError> {
        self.registry
            .with_entry(machine, |entry| Ok(entry.poll(job)))
    }

    /// Occupancy snapshot of `machine`.
    pub fn query(&self, machine: &str) -> Result<MachineSnapshot, ServiceError> {
        self.registry
            .with_entry(machine, |entry| Ok(entry.snapshot()))
    }

    /// Counter snapshot of `machine` combined with server totals.
    pub fn stats(&self, machine: &str) -> Result<Value, ServiceError> {
        let (snapshot, machine_metrics) = self.registry.with_entry(machine, |entry| {
            Ok((entry.snapshot(), entry.metrics.clone()))
        })?;
        let mut m = Map::new();
        m.insert("machine".into(), snapshot.to_value());
        // Plain counters, minus the raw wait accumulator: the wait data
        // is surfaced once, as the count/mean/max summary below, so no
        // two dashboards read the same quantity from different shapes.
        let mut counters = Map::new();
        if let Some(full) = machine_metrics.to_value().as_object() {
            for (key, value) in full.iter().filter(|(key, _)| *key != "wait") {
                counters.insert(key.clone(), value.clone());
            }
        }
        m.insert("counters".into(), Value::Object(counters));
        // The queue wait-time summary (count/mean/max) the scheduling
        // policies compete on, precomputed so dashboards need no math.
        m.insert("wait".into(), machine_metrics.wait.to_summary_value());
        m.insert("server".into(), self.metrics.snapshot());
        Ok(Value::Object(m))
    }

    /// Names of all registered machines, sorted.
    pub fn list(&self) -> Vec<String> {
        self.registry.list()
    }

    /// Verifies the occupancy invariant of `machine` (test/ops helper).
    pub fn check_invariants(&self, machine: &str) -> Result<(), ServiceError> {
        self.registry.with_entry(machine, |entry| {
            entry
                .check_invariants()
                .map_err(ServiceError::InvalidRequest)
        })
    }

    /// Dispatches one protocol request to the state layer — the single
    /// entry point shared by the TCP server, tests and the loadgen driver.
    pub fn handle(&self, request: &Request) -> Response {
        let result = match request {
            Request::Register {
                machine,
                mesh,
                allocator,
                strategy,
                scheduler,
            } => self
                .register(
                    machine,
                    mesh,
                    allocator.as_deref(),
                    strategy.as_deref(),
                    scheduler.as_deref(),
                )
                .map(|()| Response::Registered {
                    machine: machine.clone(),
                }),
            Request::Alloc {
                machine,
                job,
                size,
                wait,
                walltime,
            } => {
                self.allocate(machine, *job, *size, *wait, *walltime)
                    .map(|outcome| match outcome {
                        AllocOutcome::Granted(nodes) => Response::Granted { job: *job, nodes },
                        AllocOutcome::Queued(position) => Response::Queued {
                            job: *job,
                            position,
                        },
                        AllocOutcome::Rejected(reason) => Response::Rejected { job: *job, reason },
                    })
            }
            Request::SetScheduler { machine, scheduler } => self
                .set_scheduler(machine, scheduler)
                .map(|(kind, granted)| Response::SchedulerSet {
                    machine: machine.clone(),
                    scheduler: kind.name().to_string(),
                    granted,
                }),
            Request::Release { machine, job } => self
                .release(machine, *job)
                .map(|granted| Response::Released { job: *job, granted }),
            Request::Poll { machine, job } => self.poll(machine, *job).map(|status| match status {
                JobStatus::Running(nodes) => Response::Running { job: *job, nodes },
                JobStatus::Queued(position) => Response::Waiting {
                    job: *job,
                    position,
                },
                JobStatus::Unknown => Response::Unknown { job: *job },
            }),
            Request::Query { machine } => self
                .query(machine)
                .map(|snapshot| Response::Snapshot(snapshot.to_value())),
            Request::Stats { machine } => self.stats(machine).map(Response::Stats),
            Request::List => Ok(Response::Machines(self.list())),
            Request::Ping => Ok(Response::Pong),
        };
        ServiceMetrics::bump(&self.metrics.requests);
        result.unwrap_or_else(|err| {
            ServiceMetrics::bump(&self.metrics.errors);
            Response::Error {
                message: err.to_string(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_dispatches_on_dimension_count() {
        let service = AllocationService::new();
        service.register("flat", "16x22", None, None, None).unwrap();
        service
            .register("cube", "4x4x4", Some("snake-3d"), Some("FF"), Some("easy"))
            .unwrap();
        assert_eq!(service.list(), vec!["cube".to_string(), "flat".to_string()]);
        let flat = service.query("flat").unwrap();
        assert_eq!(flat.dims, "16x22");
        assert_eq!(flat.allocator, "Hilbert w/BF");
        assert_eq!(flat.scheduler, "FCFS");
        let cube = service.query("cube").unwrap();
        assert_eq!(cube.dims, "4x4x4");
        assert_eq!(cube.allocator, "snake-3d w/FF");
        assert_eq!(cube.scheduler, "EASY backfill");
    }

    #[test]
    fn bad_specs_are_invalid_spec_errors() {
        let service = AllocationService::new();
        for (mesh, allocator, strategy, scheduler) in [
            ("16", None, None, None),
            ("0x4", None, None, None),
            ("4x4x4x4", None, None, None),
            ("16x16", Some("nonsense"), None, None),
            ("16x16", None, Some("BF"), None), // strategy is 3-D-only
            ("4x4x4", Some("not-a-curve"), None, None),
            ("4x4x4", None, Some("ZZ"), None),
            ("16x16", None, None, Some("round-robin")),
            ("2048x2048", None, None, None), // 4M nodes, above the cap
            ("65535x65535x4", None, None, None), // would overflow u32 node ids
        ] {
            let got = service.register("m", mesh, allocator, strategy, scheduler);
            assert!(
                matches!(got, Err(ServiceError::InvalidSpec(_))),
                "{mesh:?}/{allocator:?}/{strategy:?}/{scheduler:?} gave {got:?}"
            );
        }
    }

    #[test]
    fn set_scheduler_dispatches_and_reports_grants() {
        let service = AllocationService::new();
        service.register("m0", "4x4", None, None, None).unwrap();
        service.allocate("m0", 1, 15, false, None).unwrap();
        service.allocate("m0", 2, 8, true, None).unwrap();
        service.allocate("m0", 3, 1, true, None).unwrap();
        // Unknown policy and unknown machine are errors.
        assert!(matches!(
            service.set_scheduler("m0", "round-robin"),
            Err(ServiceError::InvalidSpec(_))
        ));
        assert!(matches!(
            service.set_scheduler("nope", "easy"),
            Err(ServiceError::UnknownMachine(_))
        ));
        // Switching to backfill over the protocol admits job 3.
        let response = service.handle(&Request::SetScheduler {
            machine: "m0".into(),
            scheduler: "backfill".into(),
        });
        let Response::SchedulerSet {
            machine,
            scheduler,
            granted,
        } = response
        else {
            panic!("expected SchedulerSet, got {response:?}");
        };
        assert_eq!(machine, "m0");
        assert_eq!(scheduler, "first-fit backfill");
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].0, 3);
        assert_eq!(service.query("m0").unwrap().scheduler, "first-fit backfill");
        service.check_invariants("m0").unwrap();
    }

    #[test]
    fn handle_maps_outcomes_onto_protocol_responses() {
        let service = AllocationService::new();
        let register = Request::Register {
            machine: "m0".into(),
            mesh: "4x4".into(),
            allocator: None,
            strategy: None,
            scheduler: None,
        };
        assert_eq!(
            service.handle(&register),
            Response::Registered {
                machine: "m0".into()
            }
        );
        // Re-registering is a protocol error.
        assert!(matches!(service.handle(&register), Response::Error { .. }));
        let grant = service.handle(&Request::Alloc {
            machine: "m0".into(),
            job: 1,
            size: 16,
            wait: false,
            walltime: None,
        });
        let Response::Granted { job: 1, nodes } = grant else {
            panic!("expected grant, got {grant:?}");
        };
        assert_eq!(nodes.len(), 16);
        // Machine is full: non-wait rejects, wait queues.
        assert!(matches!(
            service.handle(&Request::Alloc {
                machine: "m0".into(),
                job: 2,
                size: 1,
                wait: false,
                walltime: None,
            }),
            Response::Rejected { job: 2, .. }
        ));
        assert_eq!(
            service.handle(&Request::Alloc {
                machine: "m0".into(),
                job: 3,
                size: 2,
                wait: true,
                walltime: None,
            }),
            Response::Queued {
                job: 3,
                position: 1
            }
        );
        assert_eq!(
            service.handle(&Request::Poll {
                machine: "m0".into(),
                job: 3
            }),
            Response::Waiting {
                job: 3,
                position: 1
            }
        );
        // Releasing the full job admits the queued one.
        let released = service.handle(&Request::Release {
            machine: "m0".into(),
            job: 1,
        });
        let Response::Released { job: 1, granted } = released else {
            panic!("expected release, got {released:?}");
        };
        assert_eq!(granted.len(), 1);
        assert_eq!(granted[0].0, 3);
        assert_eq!(granted[0].1.len(), 2);
        service.check_invariants("m0").unwrap();
        let stats = service.handle(&Request::Stats {
            machine: "m0".into(),
        });
        let Response::Stats(stats) = stats else {
            panic!("expected stats, got {stats:?}");
        };
        let counters = stats.get("counters").expect("counters present");
        assert_eq!(counters.get("granted").and_then(Value::as_u64), Some(1));
        assert_eq!(
            counters.get("granted_from_queue").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(counters.get("rejected").and_then(Value::as_u64), Some(1));
    }
}
