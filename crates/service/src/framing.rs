//! Wire framing: NDJSON lines and a compact length-prefixed binary frame.
//!
//! The service speaks two framings on the same port, discriminated per
//! frame by the first byte:
//!
//! * **NDJSON** — any byte other than [`MAGIC`] starts a JSON line
//!   terminated by `\n`. This is the original, `nc`-able framing and
//!   remains the default.
//! * **Binary** — a [`MAGIC`] byte (`0xB1`, never valid as the first
//!   byte of UTF-8 JSON text) followed by a little-endian `u32` payload
//!   length and a tagged binary encoding of the same
//!   [`Value`](serde::Value) tree the JSON framing carries. No escaping,
//!   no float formatting, no UTF-8 scanning on the hot path.
//!
//! Both framings decode to identical `Value` trees — the binary decoder
//! normalises unsigned integers that fit `i64` to `Value::Int`, exactly
//! as the JSON parser does — so `Request`/`Response` round-trips are
//! byte-identical regardless of framing (proven by the
//! `framing_equivalence` proptest).
//!
//! ## Binary payload encoding
//!
//! One tag byte, then a fixed layout per kind (all integers little
//! endian):
//!
//! | tag | kind | layout after the tag |
//! |-----|------|----------------------|
//! | `0x00` | null | — |
//! | `0x01` | false | — |
//! | `0x02` | true | — |
//! | `0x03` | int | `i64` |
//! | `0x04` | uint | `u64` (only emitted when the value exceeds `i64::MAX`) |
//! | `0x05` | float | `f64` bits |
//! | `0x06` | string | `u32` byte length, UTF-8 bytes |
//! | `0x07` | array | `u32` element count, then each element |
//! | `0x08` | object | `u32` entry count, then per entry: `u32` key length, key bytes, value |

use serde::Value;
use std::fmt;

/// First byte of every binary frame. `0xB1` is not a valid UTF-8 leading
/// byte, so it can never collide with the first byte of an NDJSON line.
pub const MAGIC: u8 = 0xB1;

/// Upper bound on a binary frame payload. A declared length above this is
/// unrecoverable desync (there is no way to find the next frame boundary),
/// so the connection is closed.
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Nesting depth cap for the binary decoder (defends the stack against
/// adversarial `[[[[…]]]]` payloads; protocol values are a few levels deep).
const MAX_DEPTH: usize = 128;

/// Which framing a connection endpoint speaks (per frame on the server,
/// fixed per client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// Newline-delimited JSON — human-readable, `nc`-able, the default.
    Ndjson,
    /// Length-prefixed tagged binary — compact, no parse/format cost.
    Binary,
}

impl Framing {
    /// Parses a CLI flag value (`"ndjson"` / `"binary"`).
    pub fn parse(flag: &str) -> Option<Framing> {
        match flag {
            "ndjson" => Some(Framing::Ndjson),
            "binary" => Some(Framing::Binary),
            _ => None,
        }
    }

    /// The flag spelling of this framing.
    pub fn as_str(&self) -> &'static str {
        match self {
            Framing::Ndjson => "ndjson",
            Framing::Binary => "binary",
        }
    }
}

impl fmt::Display for Framing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors from the binary codec and the frame splitter.
///
/// Only [`FrameError::Oversized`] and [`FrameError::Torn`] are fatal to a
/// connection (stream desync / truncation); payload-level errors leave the
/// stream aligned on the next frame boundary, so the server answers them
/// with a `Response::Error` and keeps the connection open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// The stream ended mid-frame (torn final frame).
    Torn(usize),
    /// Unknown tag byte in a binary payload.
    BadTag(u8),
    /// Payload declared more content than it contains.
    Truncated,
    /// Payload contained bytes past the root value.
    TrailingBytes(usize),
    /// A string or object key was not valid UTF-8.
    BadUtf8,
    /// Value nesting exceeded the decoder's depth cap.
    TooDeep,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN} byte cap")
            }
            FrameError::Torn(buffered) => {
                write!(f, "stream ended mid-frame with {buffered} bytes buffered")
            }
            FrameError::BadTag(tag) => write!(f, "unknown binary value tag 0x{tag:02x}"),
            FrameError::Truncated => f.write_str("binary payload ended mid-value"),
            FrameError::TrailingBytes(extra) => {
                write!(f, "{extra} trailing bytes after the binary value")
            }
            FrameError::BadUtf8 => f.write_str("binary string is not valid UTF-8"),
            FrameError::TooDeep => f.write_str("binary value nesting too deep"),
        }
    }
}

impl std::error::Error for FrameError {}

// ---------------------------------------------------------------------------
// Binary value codec.
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_UINT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// Appends the binary encoding of `value` to `out`.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) -> Result<(), FrameError> {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            // Mirror the JSON parser's normal form: integers that fit i64
            // are Int there, so emit the tag the decoder would hand back.
            if let Ok(i) = i64::try_from(*u) {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            } else {
                out.push(TAG_UINT);
                out.extend_from_slice(&u.to_le_bytes());
            }
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_len(s.len(), out)?;
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            encode_len(items.len(), out)?;
            for item in items {
                encode_value(item, out)?;
            }
        }
        Value::Object(map) => {
            out.push(TAG_OBJECT);
            encode_len(map.len(), out)?;
            for (key, entry) in map.iter() {
                encode_len(key.len(), out)?;
                out.extend_from_slice(key.as_bytes());
                encode_value(entry, out)?;
            }
        }
    }
    Ok(())
}

fn encode_len(len: usize, out: &mut Vec<u8>) -> Result<(), FrameError> {
    let len = u32::try_from(len).map_err(|_| FrameError::Oversized(usize::MAX))?;
    out.extend_from_slice(&len.to_le_bytes());
    Ok(())
}

/// Decodes a complete binary payload into a `Value`, rejecting trailing
/// bytes. Unsigned integers that fit `i64` come back as `Value::Int`,
/// matching the JSON parser's normal form.
pub fn decode_value(bytes: &[u8]) -> Result<Value, FrameError> {
    let mut pos = 0usize;
    let value = decode_at(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(FrameError::TrailingBytes(bytes.len() - pos));
    }
    Ok(value)
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], FrameError> {
    let end = pos.checked_add(n).ok_or(FrameError::Truncated)?;
    if end > bytes.len() {
        return Err(FrameError::Truncated);
    }
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, FrameError> {
    let raw = take(bytes, pos, 4)?;
    Ok(u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]))
}

fn take_str(bytes: &[u8], pos: &mut usize) -> Result<String, FrameError> {
    let len = take_u32(bytes, pos)? as usize;
    let raw = take(bytes, pos, len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| FrameError::BadUtf8)
}

fn decode_at(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, FrameError> {
    if depth > MAX_DEPTH {
        return Err(FrameError::TooDeep);
    }
    let tag = take(bytes, pos, 1)?[0];
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => {
            let raw = take(bytes, pos, 8)?;
            Ok(Value::Int(i64::from_le_bytes(raw.try_into().unwrap())))
        }
        TAG_UINT => {
            let raw = take(bytes, pos, 8)?;
            let u = u64::from_le_bytes(raw.try_into().unwrap());
            // Normalise to the JSON parser's form so both framings decode
            // to identical Value trees.
            Ok(match i64::try_from(u) {
                Ok(i) => Value::Int(i),
                Err(_) => Value::UInt(u),
            })
        }
        TAG_FLOAT => {
            let raw = take(bytes, pos, 8)?;
            Ok(Value::Float(f64::from_le_bytes(raw.try_into().unwrap())))
        }
        TAG_STR => Ok(Value::Str(take_str(bytes, pos)?)),
        TAG_ARRAY => {
            let count = take_u32(bytes, pos)? as usize;
            // No up-front reservation from the declared count: a hostile
            // header cannot force a huge allocation, decode just runs out.
            let mut items = Vec::new();
            for _ in 0..count {
                items.push(decode_at(bytes, pos, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let count = take_u32(bytes, pos)? as usize;
            let mut map = serde::Map::new();
            for _ in 0..count {
                let key = take_str(bytes, pos)?;
                let entry = decode_at(bytes, pos, depth + 1)?;
                map.insert(key, entry);
            }
            Ok(Value::Object(map))
        }
        other => Err(FrameError::BadTag(other)),
    }
}

/// Encodes `value` as a complete binary frame (magic + length + payload).
pub fn encode_frame(value: &Value) -> Result<Vec<u8>, FrameError> {
    let mut out = Vec::with_capacity(64);
    encode_frame_into(value, &mut out)?;
    Ok(out)
}

/// Appends a complete binary frame to `out` without an intermediate
/// allocation; on error `out` is restored to its original length.
pub fn encode_frame_into(value: &Value, out: &mut Vec<u8>) -> Result<(), FrameError> {
    let base = out.len();
    out.push(MAGIC);
    out.extend_from_slice(&[0u8; 4]);
    let result = encode_value(value, out).and_then(|()| {
        let len = out.len() - base - 5;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        out[base + 1..base + 5].copy_from_slice(&(len as u32).to_le_bytes());
        Ok(())
    });
    if result.is_err() {
        out.truncate(base);
    }
    result
}

// ---------------------------------------------------------------------------
// Incremental frame splitting.
// ---------------------------------------------------------------------------

/// One complete frame extracted from the stream. The payload is raw: an
/// unterminated JSON line (no `\n`) or an undecoded binary payload —
/// payload-level parse errors are the caller's to answer (with an error
/// response), keeping the stream itself aligned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Which framing the frame arrived in (responses go back the same way).
    pub framing: Framing,
    /// Line bytes (NDJSON, newline stripped) or binary payload bytes.
    pub payload: Vec<u8>,
}

/// Incremental splitter for a mixed NDJSON/binary byte stream.
///
/// Feed reads with [`FrameBuffer::extend`], pull complete frames with
/// [`FrameBuffer::next_frame`] until it returns `Ok(None)` (more bytes
/// needed), and call [`FrameBuffer::finish`] at EOF to reject a torn
/// final frame. Handles frames split across arbitrarily many reads and
/// any number of pipelined frames per read.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim the consumed prefix before growing, so a long-lived
        // pipelined connection doesn't accrete its whole history.
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame, `Ok(None)` when more bytes are
    /// needed. `Err` means the stream is unrecoverably desynced (declared
    /// binary length over [`MAX_FRAME_LEN`]) and must be closed.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let data = &self.buf[self.pos..];
        let Some(&first) = data.first() else {
            return Ok(None);
        };
        if first == MAGIC {
            if data.len() < 5 {
                return Ok(None);
            }
            let len = u32::from_le_bytes([data[1], data[2], data[3], data[4]]) as usize;
            if len > MAX_FRAME_LEN {
                return Err(FrameError::Oversized(len));
            }
            if data.len() < 5 + len {
                return Ok(None);
            }
            let payload = data[5..5 + len].to_vec();
            self.pos += 5 + len;
            Ok(Some(Frame {
                framing: Framing::Binary,
                payload,
            }))
        } else {
            match data.iter().position(|&b| b == b'\n') {
                Some(end) => {
                    let mut line = &data[..end];
                    if line.last() == Some(&b'\r') {
                        line = &line[..line.len() - 1];
                    }
                    let payload = line.to_vec();
                    self.pos += end + 1;
                    Ok(Some(Frame {
                        framing: Framing::Ndjson,
                        payload,
                    }))
                }
                None => Ok(None),
            }
        }
    }

    /// EOF check: a cleanly closed stream has no partial frame buffered.
    pub fn finish(&self) -> Result<(), FrameError> {
        match self.pending() {
            0 => Ok(()),
            torn => Err(FrameError::Torn(torn)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(text: &str) -> Value {
        serde_json::from_str(text).expect("test JSON")
    }

    fn frame(value: &Value) -> Vec<u8> {
        encode_frame(value).expect("encode")
    }

    #[test]
    fn binary_codec_round_trips_a_nested_value() {
        let value = v(concat!(
            r#"{"op":"alloc","size":32,"walltime":60.5,"nodes":[0,1,2],"#,
            r#""pattern":null,"wait":true,"names":["a\"b\\c","tab\there",""]}"#,
        ));
        let mut payload = Vec::new();
        encode_value(&value, &mut payload).unwrap();
        assert_eq!(decode_value(&payload).unwrap(), value);
    }

    #[test]
    fn uint_normalisation_matches_the_json_parser() {
        // In-range u64s come back as Int (the JSON parser's normal form);
        // out-of-range ones stay UInt — in both directions.
        let mut payload = Vec::new();
        encode_value(&Value::UInt(7), &mut payload).unwrap();
        assert_eq!(decode_value(&payload).unwrap(), Value::Int(7));

        payload.clear();
        encode_value(&Value::UInt(u64::MAX), &mut payload).unwrap();
        assert_eq!(decode_value(&payload).unwrap(), Value::UInt(u64::MAX));

        // Raw UInt tag carrying an i64-ranged value also normalises.
        let mut raw = vec![super::TAG_UINT];
        raw.extend_from_slice(&9u64.to_le_bytes());
        assert_eq!(decode_value(&raw).unwrap(), Value::Int(9));
    }

    #[test]
    fn payload_errors_are_reported() {
        assert_eq!(decode_value(&[0xff]), Err(FrameError::BadTag(0xff)));
        assert_eq!(
            decode_value(&[super::TAG_INT, 1, 2]),
            Err(FrameError::Truncated)
        );
        assert_eq!(
            decode_value(&[super::TAG_NULL, super::TAG_NULL]),
            Err(FrameError::TrailingBytes(1))
        );
        let mut bad_str = vec![super::TAG_STR];
        bad_str.extend_from_slice(&2u32.to_le_bytes());
        bad_str.extend_from_slice(&[0xc3, 0x28]);
        assert_eq!(decode_value(&bad_str), Err(FrameError::BadUtf8));

        // Hostile array count larger than the payload runs out, it does
        // not allocate.
        let mut hostile = vec![super::TAG_ARRAY];
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_value(&hostile), Err(FrameError::Truncated));

        let mut deep = Vec::new();
        for _ in 0..200 {
            deep.push(super::TAG_ARRAY);
            deep.extend_from_slice(&1u32.to_le_bytes());
        }
        deep.push(super::TAG_NULL);
        assert_eq!(decode_value(&deep), Err(FrameError::TooDeep));
    }

    #[test]
    fn splitter_handles_frames_split_across_reads() {
        let value = v(r#"{"op":"ping"}"#);
        let bytes = frame(&value);
        let mut buffer = FrameBuffer::new();
        // One byte at a time: no frame until the very last byte.
        for chunk in &bytes[..bytes.len() - 1] {
            buffer.extend(std::slice::from_ref(chunk));
            assert_eq!(buffer.next_frame().unwrap(), None);
        }
        buffer.extend(&bytes[bytes.len() - 1..]);
        let got = buffer.next_frame().unwrap().expect("frame");
        assert_eq!(got.framing, Framing::Binary);
        assert_eq!(decode_value(&got.payload).unwrap(), value);
        buffer.finish().unwrap();
    }

    #[test]
    fn splitter_drains_multiple_pipelined_frames_per_read() {
        let ping = v(r#"{"op":"ping"}"#);
        let list = v(r#"{"op":"list"}"#);
        let mut stream = Vec::new();
        stream.extend_from_slice(&frame(&ping));
        stream.extend_from_slice(b"{\"op\":\"list\"}\r\n");
        stream.extend_from_slice(&frame(&list));
        stream.extend_from_slice(b"{\"op\":\"ping\"}\n");

        let mut buffer = FrameBuffer::new();
        buffer.extend(&stream);
        let frames: Vec<Frame> = std::iter::from_fn(|| buffer.next_frame().unwrap()).collect();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[0].framing, Framing::Binary);
        assert_eq!(decode_value(&frames[0].payload).unwrap(), ping);
        assert_eq!(frames[1].framing, Framing::Ndjson);
        assert_eq!(frames[1].payload, b"{\"op\":\"list\"}");
        assert_eq!(frames[2].framing, Framing::Binary);
        assert_eq!(decode_value(&frames[2].payload).unwrap(), list);
        assert_eq!(frames[3].framing, Framing::Ndjson);
        assert_eq!(frames[3].payload, b"{\"op\":\"ping\"}");
        buffer.finish().unwrap();
    }

    #[test]
    fn torn_final_frames_are_rejected_at_eof() {
        // Torn binary frame: header promises more than ever arrives.
        let bytes = frame(&v(r#"{"op":"ping"}"#));
        let mut buffer = FrameBuffer::new();
        buffer.extend(&bytes[..bytes.len() - 3]);
        assert_eq!(buffer.next_frame().unwrap(), None);
        assert_eq!(buffer.finish(), Err(FrameError::Torn(bytes.len() - 3)));

        // Torn NDJSON line: no trailing newline before EOF.
        let mut buffer = FrameBuffer::new();
        buffer.extend(b"{\"op\":\"ping\"}");
        assert_eq!(buffer.next_frame().unwrap(), None);
        assert_eq!(buffer.finish(), Err(FrameError::Torn(13)));
    }

    #[test]
    fn oversized_declared_length_is_fatal() {
        let mut bytes = vec![MAGIC];
        bytes.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut buffer = FrameBuffer::new();
        buffer.extend(&bytes);
        assert_eq!(
            buffer.next_frame(),
            Err(FrameError::Oversized(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn consumed_prefix_is_reclaimed() {
        let bytes = frame(&v(r#"{"op":"ping"}"#));
        let mut buffer = FrameBuffer::new();
        for _ in 0..2000 {
            buffer.extend(&bytes);
            buffer.next_frame().unwrap().expect("frame");
        }
        assert_eq!(buffer.pending(), 0);
        assert!(buffer.buf.len() < 2 * bytes.len());
    }
}
