//! The placement calibration plane: does the predicted-contention score
//! actually predict anything?
//!
//! At grant time the registry files a [`PlacementRecord`] for every
//! pattern-scored placement (the chosen candidate's [`ScoreBreakdown`],
//! how many candidates were weighed, and how long the job waited). At
//! release the record is joined with the realized outcome — how long the
//! job actually held its processors (against its walltime estimate, when
//! it gave one) and how dispersed the allocation was — and folded into a
//! per-(pattern, policy) [`CalibrationCell`]: predicted-vs-realized
//! [`LogLinearHistogram`]s plus a bounded sample of (predicted, realized)
//! pairs summarised by a deterministic Spearman rank correlation.
//!
//! The store is disabled by default; while off, the grant and release
//! paths pay exactly one relaxed atomic load each (priced, with the rest
//! of the observability plane, by the `obs_overhead` bench). All
//! aggregation is bounded: the per-machine side-table caps its live
//! records, and each cell keeps at most [`PAIR_CAP`] correlation pairs
//! (first-come, deterministic under replay).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use serde::{Map, Serialize, Value};

use crate::metrics::LogLinearHistogram;
use crate::score::ScoreBreakdown;

/// Cap on live (granted, not yet released) placement records per
/// machine. A machine can hold at most one running job per processor,
/// so this is far above any real concurrency; it bounds the table if
/// releases are somehow lost.
pub(crate) const PLACEMENT_CAP: usize = 4096;

/// Cap on (predicted, realized) correlation pairs kept per cell.
const PAIR_CAP: usize = 2048;

/// What the registry knew about a placement at grant time. Filed into
/// the per-machine side-table, keyed by job id, and joined at release.
#[derive(Debug, Clone, Copy)]
pub struct PlacementRecord {
    /// Canonical name of the job's declared communication pattern.
    pub pattern: &'static str,
    /// Label of the path that placed the job here: a routing-policy
    /// name for pool-routed jobs, `"direct"` otherwise.
    pub policy: &'static str,
    /// The chosen candidate's score, per component.
    pub predicted: ScoreBreakdown,
    /// How many candidate placements were scored before choosing.
    pub candidates: usize,
    /// Seconds the job waited in the admission queue before the grant.
    pub queue_wait: f64,
    /// Machine-clock time of the grant.
    pub granted_at: f64,
    /// The job's walltime estimate, when it gave one.
    pub walltime: Option<f64>,
}

/// A grant-time record joined with its realized outcome at release.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationSample {
    /// The grant-time record.
    pub record: PlacementRecord,
    /// Seconds the job actually held its processors.
    pub held: f64,
    /// Realized dispersal of the allocation at release, in the same
    /// unit as the predicted dispersal term (mesh diameters paid for
    /// extra connected components).
    pub realized_dispersal: f64,
}

/// Per-(pattern, policy) aggregation of joined samples.
#[derive(Debug)]
pub struct CalibrationCell {
    joined: u64,
    candidates_sum: u64,
    predicted: LogLinearHistogram,
    realized_held: LogLinearHistogram,
    held_ratio: LogLinearHistogram,
    queue_wait: LogLinearHistogram,
    realized_dispersal: LogLinearHistogram,
    /// Bounded (predicted total, realized held) sample for the rank
    /// correlation; first [`PAIR_CAP`] joins win (deterministic).
    pairs: Vec<(f64, f64)>,
}

impl CalibrationCell {
    fn new() -> Self {
        CalibrationCell {
            joined: 0,
            candidates_sum: 0,
            predicted: LogLinearHistogram::default(),
            realized_held: LogLinearHistogram::default(),
            held_ratio: LogLinearHistogram::default(),
            queue_wait: LogLinearHistogram::default(),
            realized_dispersal: LogLinearHistogram::default(),
            pairs: Vec::new(),
        }
    }

    fn absorb(&mut self, sample: &CalibrationSample) {
        self.joined += 1;
        self.candidates_sum += sample.record.candidates as u64;
        self.predicted.record(sample.record.predicted.total());
        self.realized_held.record(sample.held);
        if let Some(w) = sample.record.walltime {
            // w is validated finite-positive at every boundary.
            self.held_ratio.record(sample.held / w);
        }
        self.queue_wait.record(sample.record.queue_wait);
        self.realized_dispersal.record(sample.realized_dispersal);
        if self.pairs.len() < PAIR_CAP {
            self.pairs
                .push((sample.record.predicted.total(), sample.held));
        }
    }

    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("joined".into(), Value::UInt(self.joined));
        m.insert(
            "candidates_mean".into(),
            Value::Float(if self.joined == 0 {
                0.0
            } else {
                self.candidates_sum as f64 / self.joined as f64
            }),
        );
        match spearman(&self.pairs) {
            Some(rho) => m.insert("rank_correlation".into(), Value::Float(rho)),
            None => m.insert("rank_correlation".into(), Value::Null),
        };
        m.insert(
            "correlation_pairs".into(),
            Value::UInt(self.pairs.len() as u64),
        );
        m.insert("predicted".into(), self.predicted.to_value());
        m.insert("realized_held".into(), self.realized_held.to_value());
        m.insert("held_ratio".into(), self.held_ratio.to_value());
        m.insert("queue_wait".into(), self.queue_wait.to_value());
        m.insert(
            "realized_dispersal".into(),
            self.realized_dispersal.to_value(),
        );
        Value::Object(m)
    }
}

/// The live calibration store: toggled alongside the flight recorder,
/// queried by the `calibration` wire op.
#[derive(Debug)]
pub struct CalibrationStore {
    enabled: AtomicBool,
    /// `BTreeMap` so the exported cell order is deterministic.
    cells: Mutex<BTreeMap<(&'static str, &'static str), CalibrationCell>>,
}

impl Default for CalibrationStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CalibrationStore {
    /// A disabled store with no cells.
    pub fn new() -> Self {
        CalibrationStore {
            enabled: AtomicBool::new(false),
            cells: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether grant/release paths should record. One relaxed load —
    /// the entire disabled-path cost.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggles recording. Existing cells are kept (re-enabling resumes
    /// aggregation rather than forgetting history).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Folds one joined sample into its (pattern, policy) cell.
    pub fn record(&self, sample: &CalibrationSample) {
        let mut cells = self.cells.lock().expect("calibration lock poisoned");
        cells
            .entry((sample.record.pattern, sample.record.policy))
            .or_insert_with(CalibrationCell::new)
            .absorb(sample);
    }

    /// Total joined records across all cells.
    pub fn joined_total(&self) -> u64 {
        let cells = self.cells.lock().expect("calibration lock poisoned");
        cells.values().map(|c| c.joined).sum()
    }

    /// The queryable export: enabled flag, total join count, and one
    /// entry per (pattern, policy) cell in deterministic order.
    pub fn to_value(&self) -> Value {
        let cells = self.cells.lock().expect("calibration lock poisoned");
        let mut m = Map::new();
        m.insert("enabled".into(), Value::Bool(self.enabled()));
        m.insert(
            "joined".into(),
            Value::UInt(cells.values().map(|c| c.joined).sum()),
        );
        let rendered: Vec<Value> = cells
            .iter()
            .map(|(&(pattern, policy), cell)| {
                let mut entry = Map::new();
                entry.insert("pattern".into(), Value::Str(pattern.to_string()));
                entry.insert("policy".into(), Value::Str(policy.to_string()));
                entry.insert("calibration".into(), cell.to_value());
                Value::Object(entry)
            })
            .collect();
        m.insert("cells".into(), Value::Array(rendered));
        Value::Object(m)
    }
}

/// Average ranks (1-based; ties share the mean of their rank span),
/// ordered by `total_cmp` — fully deterministic, NaN-safe.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..values.len()).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; values.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation of the (predicted, realized) pairs:
/// Pearson correlation of the average ranks. `None` when fewer than two
/// pairs exist or either side is constant (the correlation is then
/// undefined, not zero).
pub(crate) fn spearman(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let rx = average_ranks(&xs);
    let ry = average_ranks(&ys);
    let n = pairs.len() as f64;
    let mx = rx.iter().sum::<f64>() / n;
    let my = ry.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..pairs.len() {
        let dx = rx[i] - mx;
        let dy = ry[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &'static str, predicted: f64, held: f64) -> CalibrationSample {
        CalibrationSample {
            record: PlacementRecord {
                pattern,
                policy: "direct",
                predicted: ScoreBreakdown {
                    network: predicted,
                    locality: 0.0,
                    dispersal: 0.0,
                },
                candidates: 4,
                queue_wait: 0.5,
                granted_at: 0.0,
                walltime: Some(10.0),
            },
            held: held.max(0.0),
            realized_dispersal: 0.0,
        }
    }

    #[test]
    fn spearman_is_exact_on_monotone_and_reversed_data() {
        let up: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert_eq!(spearman(&up), Some(1.0));
        let down: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert_eq!(spearman(&down), Some(-1.0));
        assert_eq!(spearman(&[]), None);
        assert_eq!(spearman(&[(1.0, 2.0)]), None);
        // A constant side has no defined correlation.
        assert_eq!(spearman(&[(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]), None);
    }

    #[test]
    fn spearman_averages_tied_ranks() {
        // Ties on x: (1,1) (1,2) (2,3) — x ranks 1.5, 1.5, 3.
        let rho = spearman(&[(1.0, 1.0), (1.0, 2.0), (2.0, 3.0)]).unwrap();
        assert!((rho - 0.866_025_403_784_438_6).abs() < 1e-12, "rho={rho}");
    }

    #[test]
    fn store_joins_into_pattern_policy_cells_in_order() {
        let store = CalibrationStore::new();
        assert!(!store.enabled());
        store.set_enabled(true);
        for i in 0..5u64 {
            store.record(&sample("ring", i as f64, (i * 2) as f64));
        }
        store.record(&sample("all-to-all", 3.0, 1.0));
        assert_eq!(store.joined_total(), 6);
        let v = store.to_value();
        assert_eq!(v.get("joined").and_then(Value::as_u64), Some(6));
        let cells = v.get("cells").and_then(Value::as_array).unwrap();
        assert_eq!(cells.len(), 2);
        // BTreeMap order: "all-to-all" < "ring".
        assert_eq!(
            cells[0].get("pattern").and_then(Value::as_str),
            Some("all-to-all")
        );
        let ring = cells[1].get("calibration").unwrap();
        assert_eq!(ring.get("joined").and_then(Value::as_u64), Some(5));
        // Perfectly monotone predicted→held in the ring cell.
        assert_eq!(
            ring.get("rank_correlation").and_then(Value::as_f64),
            Some(1.0)
        );
    }
}
