//! Policy-driven admission queue for requests that cannot be served
//! immediately.
//!
//! PR 1 kept the paper's discipline — strict first-come first-served with
//! head-of-line blocking — as the *only* admission policy. The offline
//! simulator (`commalloc::scheduler`) already models two backfilling
//! extensions, so the queue is now parameterised by
//! [`SchedulerKind`]:
//!
//! * **FCFS** — grants from the head only, stopping at the first request
//!   the machine cannot satisfy (the paper's policy, and the default);
//! * **first-fit backfill** — any queued request that fits may start,
//!   scanned in queue order on every release;
//! * **EASY backfill** — the head holds a reservation at the *shadow
//!   time* (the earliest instant enough processors will have been
//!   released, predicted from running-job walltime estimates); later
//!   requests start only if they fit now **and** cannot delay that
//!   reservation.
//! * **conservative backfill** — *every* queued request holds a
//!   reservation in a shared `ReservationTable`, assigned in queue
//!   order; a request starts only if doing so cannot delay the
//!   reservation of any request ahead of it. Fairer deep into the
//!   queue than EASY, at the cost of fewer backfill opportunities.
//!
//! The queue does not decide on its own: it renders itself as the
//! `&[QueuedJob]` slice the scheduler policies consume and delegates the
//! pick to [`SchedulerKind::select_with_context`] — the *same* function
//! the offline engine calls, which is what makes the online/offline
//! sim-equivalence harness (see `tests/sim_equivalence.rs`) byte-exact.
//! Requests without a walltime estimate are modelled as running forever
//! (`estimate = ∞`), which makes EASY strictly conservative about them.

use commalloc::scheduler::{QueuedJob, RunningSnapshot, SchedulerKind};
use commalloc_workload::CommPattern;
use std::collections::VecDeque;

/// A queued allocation request.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRequest {
    /// The job to allocate for.
    pub job_id: u64,
    /// Number of processors requested.
    pub size: usize,
    /// The client's runtime estimate in seconds, if it supplied one.
    /// EASY backfilling treats a missing estimate as "runs forever".
    pub walltime: Option<f64>,
    /// The communication pattern the client declared, if any. A declared
    /// pattern lets the allocator score candidate placements by predicted
    /// contention when the grant finally happens.
    pub pattern: Option<CommPattern>,
    /// Machine-clock time at which the request entered the queue (drives
    /// the wait-time metrics and doubles as the arrival stamp the
    /// scheduler policies see).
    pub enqueued_at: f64,
    /// Flight-recorder request ID of the wire request that enqueued this
    /// job (0 when untraced): a later grant-from-queue attaches its
    /// trace events to the *enqueuing* request, not the request whose
    /// release happened to trigger the drain.
    pub trace_request: u64,
    /// Recorder-epoch timestamp (µs) of the enqueue, closing the `queue`
    /// span when the job is granted (0 when untraced).
    pub enqueued_micros: u64,
    /// Placement provenance for the calibration plane: the routing
    /// policy that sent the request to this machine, or `"direct"` for
    /// unrouted requests (and recovered queue records, whose placing
    /// path was not journaled).
    pub placed_by: &'static str,
    /// Tenant the job is attributed to (`None` = the default tenant).
    /// Feeds the weighted fair-share drain order and the per-tenant
    /// quota settlement when the job is cancelled.
    pub tenant: Option<String>,
    /// Queue-local arrival sequence, assigned at enqueue. The
    /// tie-breaker of the fair-share reorder: requests with equal
    /// fair-share keys (in particular, *all* requests of a single
    /// tenant) stay in strict arrival order, which is what reduces
    /// fair-share to plain FCFS order for untenanted traffic.
    pub arrival_seq: u64,
}

impl PendingRequest {
    /// The runtime estimate the scheduler policies consume: the client's
    /// walltime, or infinity when it gave none.
    pub fn estimate(&self) -> f64 {
        self.walltime.unwrap_or(f64::INFINITY)
    }

    /// The scheduler-facing view of this request — the single place the
    /// `PendingRequest` → [`QueuedJob`] mapping lives (used by both
    /// [`AdmissionQueue::select`] and the registry's drain loop).
    pub fn as_queued(&self) -> QueuedJob {
        QueuedJob {
            job_id: self.job_id,
            size: self.size,
            arrival: self.enqueued_at,
            estimate: self.estimate(),
        }
    }
}

/// An admission queue whose drain discipline is a [`SchedulerKind`],
/// switchable at runtime.
#[derive(Debug)]
pub struct AdmissionQueue {
    kind: SchedulerKind,
    queue: VecDeque<PendingRequest>,
    /// Monotonic enqueue counter; stamps every request's
    /// `arrival_seq`.
    arrivals: u64,
}

impl Default for AdmissionQueue {
    fn default() -> Self {
        AdmissionQueue::new(SchedulerKind::Fcfs)
    }
}

impl AdmissionQueue {
    /// An empty queue drained under `kind`.
    pub fn new(kind: SchedulerKind) -> Self {
        AdmissionQueue {
            kind,
            queue: VecDeque::new(),
            arrivals: 0,
        }
    }

    /// The active scheduling policy.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Switches the scheduling policy. Queued requests keep their order;
    /// the caller should re-drain afterwards (a switch to a backfilling
    /// policy may immediately admit requests FCFS was blocking).
    pub fn set_kind(&mut self, kind: SchedulerKind) {
        self.kind = kind;
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when `job_id` is waiting.
    pub fn contains(&self, job_id: u64) -> bool {
        self.queue.iter().any(|p| p.job_id == job_id)
    }

    /// Appends a request (stamping its arrival sequence) and returns
    /// its 1-based queue position.
    pub fn enqueue(&mut self, mut request: PendingRequest) -> usize {
        request.arrival_seq = self.arrivals;
        self.arrivals += 1;
        self.queue.push_back(request);
        self.queue.len()
    }

    /// Re-orders the pending queue by weighted fair-share key: a
    /// stable sort on `(key(tenant), arrival_seq)`, where the key is
    /// the tenant's outstanding node-seconds divided by its weight
    /// (see [`crate::tenant::TenantTable::fair_key`]). Tenants holding
    /// less of the machine — or weighted more heavily — move toward
    /// the head; within a tenant (and in the degenerate single-tenant
    /// case, across the whole queue) strict arrival order is
    /// preserved, so untenanted traffic drains exactly as before.
    ///
    /// Called by the registry's drain loop when the machine's
    /// fair-share layer is enabled, *before* the scheduler policy
    /// looks at the queue: the policy still sees an ordinary ordered
    /// queue and keeps its own guarantees (conservative backfilling
    /// still hands every queued job a reservation — the no-starvation
    /// property — just in fair-share order).
    pub fn resequence(&mut self, key: impl Fn(Option<&str>) -> f64) {
        if self.queue.len() < 2 {
            return;
        }
        let mut pending: Vec<PendingRequest> = self.queue.drain(..).collect();
        // Keys are computed once per request up front so the sort sees
        // a consistent ledger snapshot.
        let mut keyed: Vec<(f64, u64)> = Vec::with_capacity(pending.len());
        for request in &pending {
            keyed.push((key(request.tenant.as_deref()), request.arrival_seq));
        }
        let mut order: Vec<usize> = (0..pending.len()).collect();
        order.sort_by(|&a, &b| {
            keyed[a]
                .0
                .total_cmp(&keyed[b].0)
                .then(keyed[a].1.cmp(&keyed[b].1))
        });
        let mut slots: Vec<Option<PendingRequest>> = pending.drain(..).map(Some).collect();
        for index in order {
            self.queue
                .push_back(slots[index].take().expect("each slot moves once"));
        }
    }

    /// The request at the head, if any.
    pub fn head(&self) -> Option<&PendingRequest> {
        self.queue.front()
    }

    /// Removes and returns the request for `job_id`, wherever it waits
    /// (used to cancel a queued job).
    pub fn remove(&mut self, job_id: u64) -> Option<PendingRequest> {
        let at = self.queue.iter().position(|p| p.job_id == job_id)?;
        self.queue.remove(at)
    }

    /// The 1-based position of `job_id`, if it waits.
    pub fn position(&self, job_id: u64) -> Option<usize> {
        self.queue
            .iter()
            .position(|p| p.job_id == job_id)
            .map(|i| i + 1)
    }

    /// Asks the active policy which queued request (0-based index) may
    /// start next, given `free` processors, the predicted completions of
    /// the running jobs, and the current machine-clock time. Returns
    /// `None` when nothing may start.
    pub fn select(&self, free: usize, running: &[RunningSnapshot], now: f64) -> Option<usize> {
        let jobs: Vec<QueuedJob> = self.queue.iter().map(PendingRequest::as_queued).collect();
        self.kind.select_with_context(&jobs, free, running, now)
    }

    /// Removes and returns the request at 0-based `index` (which must
    /// come from [`AdmissionQueue::select`]).
    pub fn take_at(&mut self, index: usize) -> PendingRequest {
        self.queue.remove(index).expect("index from select is live")
    }

    /// Reinserts a request at 0-based `index`, undoing a
    /// [`AdmissionQueue::take_at`] whose grant the allocator refused.
    pub fn put_back(&mut self, index: usize, request: PendingRequest) {
        self.queue.insert(index, request);
    }

    /// Iterates the waiting requests in queue order.
    pub fn iter(&self) -> impl Iterator<Item = &PendingRequest> {
        self.queue.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(job_id: u64, size: usize) -> PendingRequest {
        PendingRequest {
            job_id,
            size,
            walltime: None,
            pattern: None,
            enqueued_at: 0.0,
            trace_request: 0,
            enqueued_micros: 0,
            placed_by: "direct",
            tenant: None,
            arrival_seq: 0,
        }
    }

    fn timed(job_id: u64, size: usize, walltime: f64) -> PendingRequest {
        PendingRequest {
            job_id,
            size,
            walltime: Some(walltime),
            pattern: None,
            enqueued_at: 0.0,
            trace_request: 0,
            enqueued_micros: 0,
            placed_by: "direct",
            tenant: None,
            arrival_seq: 0,
        }
    }

    fn tenant_req(job_id: u64, tenant: &str) -> PendingRequest {
        PendingRequest {
            tenant: Some(tenant.to_string()),
            ..req(job_id, 1)
        }
    }

    #[test]
    fn positions_are_one_based_and_fifo() {
        let mut q = AdmissionQueue::default();
        assert_eq!(q.enqueue(req(1, 10)), 1);
        assert_eq!(q.enqueue(req(2, 5)), 2);
        assert!(q.contains(1) && q.contains(2) && !q.contains(3));
        assert_eq!(q.head(), Some(&req(1, 10)));
        assert_eq!(q.position(2), Some(2));
        assert_eq!(q.position(9), None);
    }

    #[test]
    fn fcfs_select_respects_head_of_line_blocking() {
        let mut q = AdmissionQueue::new(SchedulerKind::Fcfs);
        q.enqueue(req(1, 10));
        q.enqueue(req(2, 100)); // too big once 1 is taken
        q.enqueue(req(3, 1)); // would fit, but must wait behind job 2
        assert_eq!(q.select(20, &[], 0.0), Some(0));
        let taken = q.take_at(0);
        assert_eq!(taken.job_id, 1);
        // 10 free left: the new head (job 2) does not fit, and FCFS never
        // looks past it.
        assert_eq!(q.select(10, &[], 0.0), None);
    }

    #[test]
    fn first_fit_backfill_scans_the_whole_queue() {
        let mut q = AdmissionQueue::new(SchedulerKind::FirstFitBackfill);
        q.enqueue(req(1, 100));
        q.enqueue(req(2, 8));
        q.enqueue(req(3, 2));
        assert_eq!(q.select(10, &[], 0.0), Some(1));
        assert_eq!(q.select(4, &[], 0.0), Some(2));
        assert_eq!(q.select(1, &[], 0.0), None);
    }

    #[test]
    fn easy_treats_missing_walltimes_as_infinite() {
        let mut q = AdmissionQueue::new(SchedulerKind::EasyBackfill);
        // Head needs 10, only 4 free; the lone running job releases 6 at
        // t = 100, so the shadow time is 100 with 0 extra processors.
        q.enqueue(timed(1, 10, 50.0));
        q.enqueue(req(2, 2)); // no estimate: may run past the shadow time
        q.enqueue(timed(3, 2, 10.0)); // finishes well before it
        let running = [RunningSnapshot {
            completion: 100.0,
            size: 6,
        }];
        assert_eq!(q.select(4, &running, 0.0), Some(2));
        q.remove(3);
        assert_eq!(q.select(4, &running, 0.0), None);
    }

    #[test]
    fn put_back_restores_queue_order() {
        let mut q = AdmissionQueue::new(SchedulerKind::FirstFitBackfill);
        q.enqueue(req(1, 100));
        q.enqueue(req(2, 8));
        q.enqueue(req(3, 2));
        let taken = q.take_at(1);
        assert_eq!(q.position(3), Some(2));
        q.put_back(1, taken);
        let order: Vec<u64> = q.iter().map(|p| p.job_id).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn resequence_orders_by_key_then_arrival() {
        let mut q = AdmissionQueue::default();
        q.enqueue(tenant_req(1, "hog"));
        q.enqueue(tenant_req(2, "hog"));
        q.enqueue(tenant_req(3, "light"));
        q.enqueue(tenant_req(4, "light"));
        q.resequence(|tenant| match tenant {
            Some("hog") => 100.0,
            _ => 1.0,
        });
        let order: Vec<u64> = q.iter().map(|p| p.job_id).collect();
        assert_eq!(order, vec![3, 4, 1, 2], "light ahead, arrival kept");
    }

    #[test]
    fn resequence_with_uniform_keys_is_the_identity() {
        let mut q = AdmissionQueue::default();
        for id in 1..=5 {
            q.enqueue(req(id, 1));
        }
        q.resequence(|_| 0.0);
        let order: Vec<u64> = q.iter().map(|p| p.job_id).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn set_kind_switches_the_policy_in_place() {
        let mut q = AdmissionQueue::new(SchedulerKind::Fcfs);
        q.enqueue(req(1, 100));
        q.enqueue(req(2, 1));
        assert_eq!(q.select(10, &[], 0.0), None);
        q.set_kind(SchedulerKind::FirstFitBackfill);
        assert_eq!(q.kind(), SchedulerKind::FirstFitBackfill);
        assert_eq!(q.select(10, &[], 0.0), Some(1));
    }
}
