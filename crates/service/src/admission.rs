//! FCFS admission queue for requests that cannot be served immediately.
//!
//! The paper's scheduling discipline is strict first-come first-served:
//! a job that cannot be allocated blocks every job behind it, even when a
//! later, smaller job would fit ("head-of-line blocking"). The service
//! keeps the same discipline per machine: [`FcfsQueue::drain_grantable`]
//! grants from the head only, stopping at the first request the machine
//! cannot satisfy.

use std::collections::VecDeque;

/// A queued allocation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingRequest {
    /// The job to allocate for.
    pub job_id: u64,
    /// Number of processors requested.
    pub size: usize,
}

/// Strictly first-come first-served queue of pending requests.
#[derive(Debug, Default)]
pub struct FcfsQueue {
    queue: VecDeque<PendingRequest>,
}

impl FcfsQueue {
    /// An empty queue.
    pub fn new() -> Self {
        FcfsQueue::default()
    }

    /// Number of waiting requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing waits.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// True when `job_id` is waiting.
    pub fn contains(&self, job_id: u64) -> bool {
        self.queue.iter().any(|p| p.job_id == job_id)
    }

    /// Appends a request and returns its 1-based queue position.
    pub fn enqueue(&mut self, request: PendingRequest) -> usize {
        self.queue.push_back(request);
        self.queue.len()
    }

    /// The request at the head, if any.
    pub fn head(&self) -> Option<&PendingRequest> {
        self.queue.front()
    }

    /// Removes and returns the request for `job_id`, wherever it waits
    /// (used to cancel a queued job).
    pub fn remove(&mut self, job_id: u64) -> Option<PendingRequest> {
        let at = self.queue.iter().position(|p| p.job_id == job_id)?;
        self.queue.remove(at)
    }

    /// The 1-based position of `job_id`, if it waits.
    pub fn position(&self, job_id: u64) -> Option<usize> {
        self.queue
            .iter()
            .position(|p| p.job_id == job_id)
            .map(|i| i + 1)
    }

    /// Grants from the head while `try_grant` succeeds, preserving FCFS
    /// order: the first failure stops draining even if later requests
    /// would fit. Returns the granted requests in grant order.
    pub fn drain_grantable(
        &mut self,
        mut try_grant: impl FnMut(&PendingRequest) -> bool,
    ) -> Vec<PendingRequest> {
        let mut granted = Vec::new();
        while let Some(head) = self.queue.front() {
            if try_grant(head) {
                granted.push(self.queue.pop_front().expect("head exists"));
            } else {
                break;
            }
        }
        granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(job_id: u64, size: usize) -> PendingRequest {
        PendingRequest { job_id, size }
    }

    #[test]
    fn positions_are_one_based_and_fifo() {
        let mut q = FcfsQueue::new();
        assert_eq!(q.enqueue(req(1, 10)), 1);
        assert_eq!(q.enqueue(req(2, 5)), 2);
        assert!(q.contains(1) && q.contains(2) && !q.contains(3));
        assert_eq!(q.head(), Some(&req(1, 10)));
    }

    #[test]
    fn drain_respects_head_of_line_blocking() {
        let mut q = FcfsQueue::new();
        q.enqueue(req(1, 10));
        q.enqueue(req(2, 100)); // too big
        q.enqueue(req(3, 1)); // would fit, but must wait behind job 2
        let mut capacity = 20usize;
        let granted = q.drain_grantable(|p| {
            if p.size <= capacity {
                capacity -= p.size;
                true
            } else {
                false
            }
        });
        assert_eq!(granted, vec![req(1, 10)]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.head(), Some(&req(2, 100)));
    }

    #[test]
    fn drain_empties_the_queue_when_everything_fits() {
        let mut q = FcfsQueue::new();
        q.enqueue(req(1, 3));
        q.enqueue(req(2, 4));
        let granted = q.drain_grantable(|_| true);
        assert_eq!(granted.len(), 2);
        assert!(q.is_empty());
    }
}
